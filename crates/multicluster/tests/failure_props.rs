//! Property tests for the seeded node-failure stream: the crash/repair
//! schedule must be a **pure function of its seed** — two streams built
//! from the same spec and seed produce identical event sequences, and
//! every event respects the spec's ranges. This is what lets the
//! simulation draw failures lazily while staying bit-identical across
//! report modes and thread counts.

use multicluster::{FailureSpec, FailureStream};
use proptest::prelude::*;
use simcore::{SimDuration, SimRng, SimTime};

proptest! {
    #[test]
    fn stream_is_a_pure_function_of_its_seed(
        seed in any::<u64>(),
        n_clusters in 1u16..12,
        mtbf_s in 1u64..100_000,
        mttr_s in 1u64..10_000,
        max_nodes in 1u32..64,
    ) {
        let spec = FailureSpec::new(
            SimDuration::from_secs(mtbf_s),
            SimDuration::from_secs(mttr_s),
            max_nodes,
        );
        let draw = || {
            let mut s =
                FailureStream::new(spec.clone(), n_clusters, SimRng::seed_from_u64(seed));
            (0..64).map(|_| s.next_event()).collect::<Vec<_>>()
        };
        let a = draw();
        let b = draw();
        prop_assert_eq!(&a, &b, "same seed, same spec, different events");

        // Strict ordering and spec ranges along the way.
        let mut last = SimTime::ZERO;
        for e in &a {
            prop_assert!(e.at > last, "crash times must strictly increase");
            last = e.at;
            prop_assert!(e.cluster.0 < n_clusters, "cluster out of range");
            prop_assert!(
                e.nodes >= 1 && e.nodes <= max_nodes,
                "node count {} outside 1..={max_nodes}",
                e.nodes
            );
            prop_assert!(
                e.repair_after >= SimDuration::from_millis(1),
                "repair must be strictly after the crash"
            );
        }
    }

    /// Different seeds diverge (the stream is seeded, not constant):
    /// with 64 draws of continuous exponentials, any collision would
    /// point at a fork-labelling bug.
    #[test]
    fn different_seeds_produce_different_schedules(seed in any::<u64>()) {
        let spec = FailureSpec::new(
            SimDuration::from_secs(3600),
            SimDuration::from_secs(600),
            8,
        );
        let draw = |s: u64| {
            let mut st = FailureStream::new(spec.clone(), 5, SimRng::seed_from_u64(s));
            (0..64).map(|_| st.next_event()).collect::<Vec<_>>()
        };
        prop_assert_ne!(draw(seed), draw(seed.wrapping_add(1)));
    }
}
