//! Property-based tests for the contended-network layer:
//!
//! * **fair-share invariants** — under any topology and flow set, the
//!   max-min allocation never oversubscribes a link, gives every active
//!   flow a positive rate, and saturates at least one bottleneck link
//!   on every flow's route;
//! * **interleaving independence** — the generation-stamped reschedule
//!   protocol makes the completion trajectory identical whether stale
//!   completion events are cancelled eagerly or left in the queue to be
//!   dropped on delivery, and bytes are conserved end to end;
//! * **seq == par bit-identity with networking on** — the full stack
//!   (scheduler + staging + reconfiguration traffic) produces
//!   byte-identical reports from the sequential and the multi-threaded
//!   cell runners under random seeds and thread counts.

use appsim::workload::{SubmittedJob, WorkloadSpec};
use appsim::{AppKind, JobSpec};
use multicluster::{ClusterId, FlowNet, FlowSchedule, NetworkTopology};
use proptest::prelude::*;
use simcore::{SimDuration, SimTime};

const N_CLUSTERS: usize = 5;

/// One of the registry's topology families, all over five clusters.
fn topology(pick: usize) -> NetworkTopology {
    let ms = SimDuration::from_millis(2);
    match pick % 4 {
        0 => NetworkTopology::flat_wan(N_CLUSTERS, 1.0, ms).unwrap(),
        1 => NetworkTopology::uniform_star(N_CLUSTERS, 1.0, ms).unwrap(),
        2 => NetworkTopology::fat_tree(N_CLUSTERS, 4, 1.0, ms).unwrap(),
        _ => NetworkTopology::das3(N_CLUSTERS).unwrap(),
    }
}

/// A cross-cluster endpoint pair: `dst` is derived so it always differs
/// from `src` (local transfers never open flows).
fn endpoints(src: usize, hop: usize) -> (ClusterId, ClusterId) {
    let s = src % N_CLUSTERS;
    let d = (s + 1 + hop % (N_CLUSTERS - 1)) % N_CLUSTERS;
    (ClusterId(s as u16), ClusterId(d as u16))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Max-min fairness, pinned as three invariants over random flow
    /// sets: (1) per-link, the rates of the flows crossing it sum to at
    /// most its capacity; (2) every active flow makes progress; (3)
    /// every flow is bottlenecked — some link on its route is saturated
    /// (otherwise the allocation would not be max-min).
    #[test]
    fn fair_shares_respect_capacity_and_saturate_bottlenecks(
        pick in 0usize..4,
        flows in prop::collection::vec((0usize..N_CLUSTERS, 0usize..4, 1u32..200), 1..24),
    ) {
        let topo = topology(pick);
        let mut net = FlowNet::new(topo);
        let mut routes: Vec<(u64, Vec<multicluster::LinkId>)> = Vec::new();
        for &(src, hop, size) in &flows {
            let (s, d) = endpoints(src, hop);
            let route = net.topology().route(s, d).to_vec();
            let (id, _) = net.open(SimTime::ZERO, s, d, f64::from(size));
            routes.push((id, route));
        }
        // (1) + (2): no link oversubscribed, every flow active.
        let caps: Vec<f64> = net.topology().links().iter().map(|l| l.bandwidth_gbps).collect();
        let mut used = vec![0.0f64; caps.len()];
        for (id, route) in &routes {
            let rate = net.rate_gbps(*id).expect("flow is open");
            prop_assert!(rate > 0.0, "flow {id} starved");
            for l in route {
                used[l.index()] += rate;
            }
        }
        for (i, (&u, &c)) in used.iter().zip(&caps).enumerate() {
            prop_assert!(u <= c * (1.0 + 1e-9) + 1e-9, "link {i} oversubscribed: {u} > {c}");
        }
        // (3): each flow crosses at least one saturated link.
        for (id, route) in &routes {
            let bottlenecked = route
                .iter()
                .any(|l| used[l.index()] >= caps[l.index()] * (1.0 - 1e-6));
            prop_assert!(bottlenecked, "flow {id} has spare capacity on every link (not max-min)");
        }
    }
}

/// A queued completion event, as the engine would hold it: the schedule
/// plus a FIFO sequence number for deterministic tie-breaking.
#[derive(Debug, Clone, Copy)]
struct Queued {
    sched: FlowSchedule,
    seq: u64,
}

/// Drives a [`FlowNet`] through `opens` with a miniature stable-FIFO
/// event loop and returns the completion trajectory `(flow, time,
/// size_gb)`. With `cancel_stale` the queue drops superseded events for
/// a flow as soon as a fresh schedule arrives (eager cancellation);
/// without it every schedule ever issued is delivered and stale
/// generations are rejected by [`FlowNet::complete`]. Both disciplines
/// must yield the identical trajectory.
fn drive(
    pick: usize,
    opens: &[(u64, usize, usize, u32)],
    cancel_stale: bool,
) -> Vec<(u64, SimTime, f64)> {
    let mut net = FlowNet::new(topology(pick));
    let mut queue: Vec<Queued> = Vec::new();
    let mut seq = 0u64;
    let push = |queue: &mut Vec<Queued>, scheds: Vec<FlowSchedule>, seq: &mut u64| {
        for sched in scheds {
            if cancel_stale {
                queue.retain(|q| q.sched.flow != sched.flow);
            }
            queue.push(Queued { sched, seq: *seq });
            *seq += 1;
        }
    };
    let mut opens: Vec<_> = opens.to_vec();
    opens.sort_by_key(|o| o.0);
    let mut opens = opens.into_iter().peekable();
    let mut done = Vec::new();
    loop {
        // Earliest pending completion, FIFO on eta ties — the same
        // discipline as the simulation engine.
        let next_ev = queue
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                (a.sched.eta, a.seq)
                    .partial_cmp(&(b.sched.eta, b.seq))
                    .unwrap()
            })
            .map(|(i, q)| (i, *q));
        let next_open_at = opens.peek().map(|o| SimTime::from_secs(o.0));
        match (next_ev, next_open_at) {
            (Some((i, q)), open_at) => {
                if open_at.is_some_and(|t| t <= q.sched.eta) {
                    let (at, src, hop, size) = opens.next().unwrap();
                    let (s, d) = endpoints(src, hop);
                    let (_, scheds) = net.open(SimTime::from_secs(at), s, d, f64::from(size));
                    push(&mut queue, scheds, &mut seq);
                } else {
                    queue.remove(i);
                    if let Some((fin, scheds)) =
                        net.complete(q.sched.eta, q.sched.flow, q.sched.gen)
                    {
                        done.push((q.sched.flow, q.sched.eta, fin.size_gb));
                        push(&mut queue, scheds, &mut seq);
                    }
                }
            }
            (None, Some(_)) => {
                let (at, src, hop, size) = opens.next().unwrap();
                let (s, d) = endpoints(src, hop);
                let (_, scheds) = net.open(SimTime::from_secs(at), s, d, f64::from(size));
                push(&mut queue, scheds, &mut seq);
            }
            (None, None) => break,
        }
    }
    assert_eq!(net.active(), 0, "every flow must drain");
    done
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// The completion trajectory is a pure function of the open
    /// sequence: re-running is byte-identical, leaving stale events in
    /// the queue changes nothing (generation stamps reject them), every
    /// opened byte is delivered, and time never runs backwards.
    #[test]
    fn completion_trajectory_is_interleaving_independent(
        pick in 0usize..4,
        opens in prop::collection::vec(
            (0u64..500, 0usize..N_CLUSTERS, 0usize..4, 1u32..100),
            1..16,
        ),
    ) {
        let eager = drive(pick, &opens, true);
        let lazy = drive(pick, &opens, false);
        let again = drive(pick, &opens, true);
        prop_assert_eq!(format!("{eager:?}"), format!("{lazy:?}"),
            "stale-event delivery changed the trajectory");
        prop_assert_eq!(format!("{eager:?}"), format!("{again:?}"), "rerun diverged");
        prop_assert_eq!(eager.len(), opens.len(), "every flow completes exactly once");
        let opened: f64 = opens.iter().map(|o| f64::from(o.3)).sum();
        let delivered: f64 = eager.iter().map(|d| d.2).sum();
        prop_assert!((opened - delivered).abs() < 1e-9 * opened.max(1.0),
            "bytes not conserved: opened {opened}, delivered {delivered}");
        for w in eager.windows(2) {
            prop_assert!(w[0].1 <= w[1].1, "completions out of order: {w:?}");
        }
    }
}

fn staged_job(at_s: u64, size: u32, files: Vec<u64>) -> SubmittedJob {
    let mut spec = JobSpec::rigid(AppKind::Gadget2, size);
    spec.input_files = files;
    SubmittedJob {
        at: SimTime::from_secs(at_s),
        spec,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    /// Full-stack determinism with networking ON: the sequential and the
    /// multi-threaded cell runners produce byte-identical reports for
    /// random seeds, workloads and thread counts.
    #[test]
    fn seq_matches_par_bit_for_bit_with_networking_on(
        seed0 in 1u64..1_000_000,
        jobs in 8usize..25,
        threads in 2usize..5,
        topo_idx in 0usize..3,
    ) {
        let mut cfg = koala::config::ExperimentConfig::paper_pra("fpsma", WorkloadSpec::wm());
        cfg.workload.jobs = jobs;
        cfg.trace = Some(vec![
            staged_job(0, 4, vec![0]),
            staged_job(50, 6, vec![0, 1]),
        ]);
        cfg.network = Some(koala::config::NetworkConfig {
            topology: ["flat_wan", "das3", "fat_tree_4"][topo_idx].to_string(),
            files: vec![
                koala::config::FileSpec { size_gb: 60.0, replicas: vec![4] },
                koala::config::FileSpec { size_gb: 25.0, replicas: vec![0, 2] },
            ],
            reconfig_gb_per_proc: 0.2,
        });
        let seeds: Vec<u64> = (0..3).map(|i| seed0.wrapping_add(i * 7919)).collect();
        let seq = koala::parallel::run_seeds_sequential(&cfg, &seeds);
        let par = koala::parallel::run_seeds_with_threads(&cfg, &seeds, threads);
        prop_assert_eq!(
            format!("{seq:?}"),
            format!("{par:?}"),
            "seq and par diverged with networking on ({} threads)",
            threads
        );
    }
}
