//! Property-based tests: random allocation/release/grow/shrink/withdraw
//! sequences never violate cluster invariants.

use multicluster::{AllocId, AllocOwner, Cluster, ClusterSpec};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Allocate(u32),
    Grow(usize, u32),
    Shrink(usize, u32),
    Release(usize),
    WithdrawFree(u32),
    Restore(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..20).prop_map(Op::Allocate),
        (0usize..8, 1u32..10).prop_map(|(i, n)| Op::Grow(i, n)),
        (0usize..8, 1u32..10).prop_map(|(i, n)| Op::Shrink(i, n)),
        (0usize..8).prop_map(Op::Release),
        (1u32..30).prop_map(Op::WithdrawFree),
        (1u32..30).prop_map(Op::Restore),
    ]
}

proptest! {
    /// After any operation sequence: node states, free list and counters
    /// stay mutually consistent, and used + idle == capacity.
    #[test]
    fn invariants_hold_under_random_ops(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut c = Cluster::new(ClusterSpec::new("prop", 64, "GbE"));
        let mut live: Vec<AllocId> = Vec::new();
        let mut next_owner = 0u64;
        for op in ops {
            match op {
                Op::Allocate(n) => {
                    next_owner += 1;
                    if let Ok(id) = c.allocate(AllocOwner::Koala(next_owner), n) {
                        live.push(id);
                    }
                }
                Op::Grow(i, n) => {
                    if let Some(&id) = live.get(i) {
                        let _ = c.grow(id, n);
                    }
                }
                Op::Shrink(i, n) => {
                    if let Some(&id) = live.get(i) {
                        if c.shrink(id, n).is_ok() && c.alloc_size(id).is_none() {
                            live.remove(i);
                        }
                    }
                }
                Op::Release(i) => {
                    if i < live.len() {
                        let id = live.remove(i);
                        let _ = c.release(id);
                    }
                }
                Op::WithdrawFree(n) => {
                    c.withdraw_free(n);
                }
                Op::Restore(n) => {
                    c.restore(n);
                }
            }
            prop_assert!(c.check_invariants().is_ok(), "{:?}", c.check_invariants());
            prop_assert_eq!(c.used() + c.idle(), c.capacity());
            prop_assert!(c.capacity() <= 64);
        }
        // Releasing everything must return the cluster to fully free.
        for id in live {
            let _ = c.release(id);
        }
        prop_assert_eq!(c.used(), 0);
        prop_assert!(c.check_invariants().is_ok());
    }

    /// Allocation sizes are conserved: what you allocate is what
    /// `alloc_size` reports and what `release` frees.
    #[test]
    fn sizes_are_conserved(sizes in prop::collection::vec(1u32..16, 1..8)) {
        let total: u32 = sizes.iter().sum();
        prop_assume!(total <= 64);
        let mut c = Cluster::new(ClusterSpec::new("prop", 64, "GbE"));
        let ids: Vec<AllocId> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| c.allocate(AllocOwner::Local(i as u64), n).unwrap())
            .collect();
        prop_assert_eq!(c.used(), total);
        for (&id, &n) in ids.iter().zip(&sizes) {
            prop_assert_eq!(c.alloc_size(id), Some(n));
            prop_assert_eq!(c.release(id).unwrap(), n);
        }
        prop_assert_eq!(c.used(), 0);
    }
}
