//! GRAM-style submission latency model.
//!
//! Section V-A of the paper describes how the MRunner works around GRAM's
//! inability to manage malleable jobs: a malleable application is run as
//! a *collection of GRAM jobs of size 1*. Growing submits new GRAM jobs;
//! to hide their cost, submissions launch an **empty stub** that is
//! turned into an application process later ("that latter operation is
//! faster than submitting a job to GRAM as it is relieved from tasks such
//! as security enforcement and queue management"). Interactions with GRAM
//! overlap application execution; the application suspends only once all
//! resources are held.
//!
//! This module captures those costs as a pure timing model. Defaults are
//! justified in `koala::config` (they reproduce the order of magnitude of
//! GLOBUS pre-WS GRAM on DAS-3-era hardware).
//!
//! On top of the timing model sits an *optional* fault model,
//! [`ControlPlaneFaults`]: real Globus-era control planes lose, delay and
//! duplicate messages, and whole scheduler↔cluster channels go flaky for
//! minutes at a time. Like [`crate::failure::FailureStream`], the fault
//! model is a **pure function of its seed** — per-message outcomes are
//! derived by hashing (seed, message class, per-class sequence number),
//! so the outcome of the 7th `Submit` never depends on how many `Release`
//! messages were interleaved before it, and two runs with equal specs and
//! equal RNG forks see identical faults regardless of event ordering.

use simcore::{SimDuration, SimRng, SimTime};

use crate::ids::ClusterId;

/// Latency model for GRAM-like interactions.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct GramConfig {
    /// Submitting one GRAM job (security, queue handling) until the stub
    /// is running on the node.
    pub submit_latency: SimDuration,
    /// Additional per-job serialization when a batch of GRAM jobs is
    /// submitted at once (submissions pipeline but not perfectly).
    pub submit_per_job: SimDuration,
    /// Releasing a GRAM job after the application has shrunk.
    pub release_latency: SimDuration,
    /// Turning an already-running stub into an application process
    /// (the fast path the paper contrasts with full submission).
    pub stub_recruit_latency: SimDuration,
    /// One-way scheduler ↔ runner ↔ application message latency.
    pub message_latency: SimDuration,
}

impl Default for GramConfig {
    fn default() -> Self {
        GramConfig {
            submit_latency: SimDuration::from_secs(2),
            submit_per_job: SimDuration::from_millis(100),
            release_latency: SimDuration::from_secs(1),
            stub_recruit_latency: SimDuration::from_millis(500),
            message_latency: SimDuration::from_millis(50),
        }
    }
}

impl GramConfig {
    /// A zero-latency model, for tests that want pure scheduling
    /// behaviour without timing noise.
    pub fn instantaneous() -> Self {
        GramConfig {
            submit_latency: SimDuration::ZERO,
            submit_per_job: SimDuration::ZERO,
            release_latency: SimDuration::ZERO,
            stub_recruit_latency: SimDuration::ZERO,
            message_latency: SimDuration::ZERO,
        }
    }

    /// Time until a batch of `n` size-1 GRAM jobs all have running stubs.
    ///
    /// The batch submits in parallel but serializes partially at the
    /// gatekeeper: `submit_latency + n · submit_per_job`.
    pub fn batch_submit_time(&self, n: u32) -> SimDuration {
        if n == 0 {
            return SimDuration::ZERO;
        }
        self.submit_latency + self.submit_per_job.saturating_mul(n as u64)
    }

    /// Time from "stubs all running" until the application actually holds
    /// the new processes (recruitment of the stubs).
    pub fn recruit_time(&self, n: u32) -> SimDuration {
        if n == 0 {
            return SimDuration::ZERO;
        }
        // Stub recruitment is a local operation per node, done in
        // parallel; model as a single constant.
        self.stub_recruit_latency
    }

    /// Time to release `n` GRAM jobs after a shrink.
    pub fn batch_release_time(&self, n: u32) -> SimDuration {
        if n == 0 {
            return SimDuration::ZERO;
        }
        self.release_latency
    }
}

/// The classes of control-plane messages the scheduler exchanges with
/// GRAM and the information service. Each class has its own loss
/// probability and its own fault-sequence counter, so faults in one
/// message family never perturb another's stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MessageClass {
    /// A batch GRAM submission (placement start, stub batch).
    Submit,
    /// Recruiting already-running stubs into application processes.
    Recruit,
    /// A grow command from the scheduler to the runner.
    Grow,
    /// A shrink command from the scheduler to the runner.
    Shrink,
    /// Releasing GRAM jobs after a shrink or completion.
    Release,
    /// A poll of the KOALA information service.
    InfoPoll,
}

/// Hash salts keeping each message class on its own fault stream; must
/// stay pairwise distinct (asserted by test) or two classes would share
/// outcomes.
const CLASS_SALTS: [u64; 6] = [
    0x5EED_5AB1_7000_0001,
    0x5EED_5AB1_7000_0002,
    0x5EED_5AB1_7000_0003,
    0x5EED_5AB1_7000_0004,
    0x5EED_5AB1_7000_0005,
    0x5EED_5AB1_7000_0006,
];

/// SplitMix64 increment — mixes the per-class sequence number into the
/// per-message hash seed.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

impl MessageClass {
    /// Every class, in salt order.
    pub const ALL: [MessageClass; 6] = [
        MessageClass::Submit,
        MessageClass::Recruit,
        MessageClass::Grow,
        MessageClass::Shrink,
        MessageClass::Release,
        MessageClass::InfoPoll,
    ];

    fn salt(self) -> u64 {
        CLASS_SALTS[self as usize]
    }
}

/// Per-class message loss probabilities (each in `[0, 1]`).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClassLoss {
    /// Loss probability for [`MessageClass::Submit`].
    pub submit: f64,
    /// Loss probability for [`MessageClass::Recruit`].
    pub recruit: f64,
    /// Loss probability for [`MessageClass::Grow`].
    pub grow: f64,
    /// Loss probability for [`MessageClass::Shrink`].
    pub shrink: f64,
    /// Loss probability for [`MessageClass::Release`].
    pub release: f64,
    /// Loss probability for [`MessageClass::InfoPoll`].
    pub info_poll: f64,
}

impl ClassLoss {
    /// The same loss probability for every message class.
    pub fn uniform(p: f64) -> Self {
        ClassLoss {
            submit: p,
            recruit: p,
            grow: p,
            shrink: p,
            release: p,
            info_poll: p,
        }
    }

    /// The loss probability of one class.
    pub fn get(&self, class: MessageClass) -> f64 {
        match class {
            MessageClass::Submit => self.submit,
            MessageClass::Recruit => self.recruit,
            MessageClass::Grow => self.grow,
            MessageClass::Shrink => self.shrink,
            MessageClass::Release => self.release,
            MessageClass::InfoPoll => self.info_poll,
        }
    }

    /// The largest per-class probability (validation helper).
    pub fn max(&self) -> f64 {
        MessageClass::ALL
            .iter()
            .map(|&c| self.get(c))
            .fold(0.0, f64::max)
    }
}

/// Per-cluster "flaky channel" episodes: windows during which the
/// scheduler↔cluster channel loses messages at an elevated rate.
/// Episode gaps and durations are exponential; each cluster owns an
/// independent forked stream, so channels flake independently.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FlakyChannelSpec {
    /// Mean gap between episodes on one channel (exponential).
    pub mean_gap: SimDuration,
    /// Mean episode duration (exponential, min 1 ms).
    pub mean_duration: SimDuration,
    /// Loss probability while the episode is active — applied when it
    /// exceeds the class's base probability.
    pub loss: f64,
}

/// Configuration of the control-plane fault layer. `None` anywhere in a
/// scenario means the layer is absent and messaging is perfectly
/// reliable (the PR 6 baseline).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ControlPlaneFaultSpec {
    /// Per-class loss probabilities.
    pub loss: ClassLoss,
    /// Probability a *delivered* message arrives twice (the duplicate
    /// carries its own jitter).
    pub duplicate: f64,
    /// Extra delivery delay, uniform in `[0, max_jitter]`.
    pub max_jitter: SimDuration,
    /// Optional per-cluster flaky-channel episodes.
    pub flaky: Option<FlakyChannelSpec>,
}

impl ControlPlaneFaultSpec {
    /// A spec losing every class with probability `p`, with no
    /// duplication, no jitter and no flaky episodes.
    pub fn uniform(p: f64) -> Self {
        ControlPlaneFaultSpec {
            loss: ClassLoss::uniform(p),
            duplicate: 0.0,
            max_jitter: SimDuration::ZERO,
            flaky: None,
        }
    }

    /// The largest loss probability anywhere in the spec (validation
    /// helper: a spec losing *everything* can never finish).
    pub fn max_loss(&self) -> f64 {
        let base = self.loss.max();
        match &self.flaky {
            Some(f) => base.max(f.loss),
            None => base,
        }
    }
}

/// The fate of one control-plane message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageOutcome {
    /// Whether the message arrives at all.
    pub delivered: bool,
    /// Whether a second copy also arrives (only meaningful when
    /// `delivered`).
    pub duplicated: bool,
    /// Extra delay on the primary copy.
    pub jitter: SimDuration,
    /// Extra delay on the duplicate copy.
    pub dup_jitter: SimDuration,
}

impl MessageOutcome {
    /// The no-fault outcome: delivered once, on time.
    pub const CLEAN: MessageOutcome = MessageOutcome {
        delivered: true,
        duplicated: false,
        jitter: SimDuration::ZERO,
        dup_jitter: SimDuration::ZERO,
    };
}

/// One cluster's flaky-channel episode stream: a lazy sequence of
/// `[start, end)` windows, advanced monotonically as the simulation
/// clock queries it.
#[derive(Debug, Clone)]
struct FlakyChannel {
    rng: SimRng,
    start: SimTime,
    end: SimTime,
}

impl FlakyChannel {
    fn new(mut rng: SimRng, spec: &FlakyChannelSpec) -> Self {
        let start = SimTime::ZERO + sample_exp(&mut rng, spec.mean_gap);
        let end = start + sample_exp(&mut rng, spec.mean_duration).max(SimDuration::from_millis(1));
        FlakyChannel { rng, start, end }
    }

    /// Whether the channel is inside an episode at `now`. Queries must
    /// come at nondecreasing times (the event loop guarantees this);
    /// expired windows are replaced by freshly drawn ones.
    fn is_flaky(&mut self, now: SimTime, spec: &FlakyChannelSpec) -> bool {
        while now >= self.end {
            self.start = self.end + sample_exp(&mut self.rng, spec.mean_gap);
            self.end = self.start
                + sample_exp(&mut self.rng, spec.mean_duration).max(SimDuration::from_millis(1));
        }
        self.start <= now
    }
}

/// Exponential draw with the given mean, on the integer clock (min 1 ms
/// so consecutive windows never collapse to a point).
fn sample_exp(rng: &mut SimRng, mean: SimDuration) -> SimDuration {
    let u = rng.f64_open0();
    SimDuration::from_secs_f64(-mean.as_secs_f64() * u.ln()).max(SimDuration::from_millis(1))
}

/// Seeded control-plane fault model: decides, per message, whether it is
/// lost, delayed or duplicated, and tracks per-cluster flaky episodes.
///
/// Outcomes are a pure function of `(seed, class, per-class sequence
/// number)` — see the module docs. The flaky-episode streams own forked
/// RNGs and never read simulation state, so the whole model stays
/// reproducible under any event interleaving.
#[derive(Debug, Clone)]
pub struct ControlPlaneFaults {
    spec: ControlPlaneFaultSpec,
    hash_seed: u64,
    seq: [u64; 6],
    channels: Vec<FlakyChannel>,
}

impl ControlPlaneFaults {
    /// Builds the model over `n_clusters` channels from its own RNG
    /// fork (the simulation dedicates fork label 4 to it).
    pub fn new(spec: ControlPlaneFaultSpec, n_clusters: u16, mut rng: SimRng) -> Self {
        let hash_seed = rng.next_u64();
        let channels = match &spec.flaky {
            Some(flaky) => (0..n_clusters)
                .map(|c| FlakyChannel::new(rng.fork(c as u64), flaky))
                .collect(),
            None => Vec::new(),
        };
        ControlPlaneFaults {
            spec,
            hash_seed,
            seq: [0; 6],
            channels,
        }
    }

    /// The spec this model was built from.
    pub fn spec(&self) -> &ControlPlaneFaultSpec {
        &self.spec
    }

    /// Whether `cluster`'s channel is inside a flaky episode at `now`
    /// (always `false` without a [`FlakyChannelSpec`]). Query times must
    /// be nondecreasing.
    pub fn is_flaky(&mut self, cluster: ClusterId, now: SimTime) -> bool {
        let Some(flaky) = &self.spec.flaky else {
            return false;
        };
        match self.channels.get_mut(cluster.0 as usize) {
            Some(ch) => ch.is_flaky(now, flaky),
            None => false,
        }
    }

    /// Decides the fate of the next message of `class`, optionally bound
    /// to a cluster channel (flaky episodes elevate its loss rate).
    ///
    /// Draw order per message is fixed (loss, duplicate, jitter,
    /// duplicate jitter) from a hash-derived RNG, so adding messages of
    /// one class never perturbs another class's outcomes.
    pub fn outcome(
        &mut self,
        class: MessageClass,
        cluster: Option<ClusterId>,
        now: SimTime,
    ) -> MessageOutcome {
        let seq = self.seq[class as usize];
        self.seq[class as usize] += 1;
        let mut p = self.spec.loss.get(class);
        if let Some(c) = cluster {
            if self.is_flaky(c, now) {
                if let Some(flaky) = &self.spec.flaky {
                    p = p.max(flaky.loss);
                }
            }
        }
        let mut rng =
            SimRng::seed_from_u64(self.hash_seed ^ class.salt() ^ seq.wrapping_mul(GOLDEN));
        let lost = rng.bool_with(p);
        let duplicated = rng.bool_with(self.spec.duplicate);
        let jitter_ms = self.spec.max_jitter.as_millis();
        let jitter = SimDuration::from_millis(rng.u64_below(jitter_ms + 1));
        let dup_jitter = SimDuration::from_millis(rng.u64_below(jitter_ms + 1));
        MessageOutcome {
            delivered: !lost,
            duplicated,
            jitter,
            dup_jitter,
        }
    }

    /// Captures the model's dynamic state, for checkpointing. The spec is
    /// configuration and is supplied again on restore; `hash_seed` *is*
    /// state (it was drawn from the construction-time RNG fork, which no
    /// longer exists after a restore).
    pub fn capture_state(&self) -> ControlPlaneFaultsState {
        ControlPlaneFaultsState {
            hash_seed: self.hash_seed,
            seq: self.seq,
            channels: self
                .channels
                .iter()
                .map(|ch| FlakyChannelState {
                    rng: ch.rng.state(),
                    start: ch.start,
                    end: ch.end,
                })
                .collect(),
        }
    }

    /// Overwrites the model's dynamic state with a captured one.
    /// Subsequent outcomes and flaky-episode draws continue the original
    /// streams exactly. Fails if the channel count disagrees with the
    /// spec's (flaky specs own one channel per cluster; flaky-free specs
    /// own none).
    pub fn restore_state(&mut self, state: ControlPlaneFaultsState) -> Result<(), String> {
        let expect = if self.spec.flaky.is_some() {
            self.channels.len()
        } else {
            0
        };
        if state.channels.len() != expect {
            return Err(format!(
                "flaky channel count mismatch: state has {}, spec wants {expect}",
                state.channels.len()
            ));
        }
        self.hash_seed = state.hash_seed;
        self.seq = state.seq;
        self.channels = state
            .channels
            .into_iter()
            .map(|ch| FlakyChannel {
                rng: SimRng::from_state(ch.rng),
                start: ch.start,
                end: ch.end,
            })
            .collect();
        Ok(())
    }
}

/// One captured flaky-channel episode stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlakyChannelState {
    /// The xoshiro256++ word state of the channel's RNG.
    pub rng: [u64; 4],
    /// Start of the current (or next) episode window.
    pub start: SimTime,
    /// End of the current (or next) episode window.
    pub end: SimTime,
}

/// A full capture of a [`ControlPlaneFaults`] model's dynamic state (the
/// spec is configuration, not state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlPlaneFaultsState {
    /// The per-message hash seed drawn at construction.
    pub hash_seed: u64,
    /// Per-class fault-sequence counters, in [`MessageClass::ALL`] order.
    pub seq: [u64; 6],
    /// Per-cluster flaky-channel streams (empty without a flaky spec).
    pub channels: Vec<FlakyChannelState>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_submission_scales_per_job() {
        let g = GramConfig::default();
        let one = g.batch_submit_time(1);
        let ten = g.batch_submit_time(10);
        assert!(ten > one);
        assert_eq!(
            ten - one,
            g.submit_per_job.saturating_mul(9),
            "difference is 9 per-job increments"
        );
    }

    #[test]
    fn zero_jobs_cost_nothing() {
        let g = GramConfig::default();
        assert_eq!(g.batch_submit_time(0), SimDuration::ZERO);
        assert_eq!(g.recruit_time(0), SimDuration::ZERO);
        assert_eq!(g.batch_release_time(0), SimDuration::ZERO);
    }

    #[test]
    fn recruitment_is_cheaper_than_submission() {
        // The design point from the paper: turning a stub into a process
        // beats a full GRAM submission.
        let g = GramConfig::default();
        assert!(g.recruit_time(4) < g.batch_submit_time(4));
    }

    #[test]
    fn batch_submit_is_monotone_in_size() {
        let g = GramConfig::default();
        let mut last = simcore::SimDuration::ZERO;
        for n in 1..=64 {
            let t = g.batch_submit_time(n);
            assert!(t >= last, "submission time must not shrink with batch size");
            last = t;
        }
    }

    #[test]
    fn instantaneous_model_is_all_zero() {
        let g = GramConfig::instantaneous();
        assert_eq!(g.batch_submit_time(32), SimDuration::ZERO);
        assert_eq!(g.batch_release_time(32), SimDuration::ZERO);
    }

    fn lossy_spec() -> ControlPlaneFaultSpec {
        ControlPlaneFaultSpec {
            loss: ClassLoss::uniform(0.2),
            duplicate: 0.1,
            max_jitter: SimDuration::from_millis(500),
            flaky: Some(FlakyChannelSpec {
                mean_gap: SimDuration::from_mins(30),
                mean_duration: SimDuration::from_mins(5),
                loss: 0.8,
            }),
        }
    }

    #[test]
    fn class_salts_are_pairwise_distinct() {
        for (i, a) in CLASS_SALTS.iter().enumerate() {
            for b in &CLASS_SALTS[i + 1..] {
                assert_ne!(a, b, "two message classes share a fault stream");
            }
        }
        // And the enum indexes exactly cover the salt table.
        assert_eq!(MessageClass::ALL.len(), CLASS_SALTS.len());
        for (i, c) in MessageClass::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
    }

    #[test]
    fn fault_model_is_a_pure_function_of_seed() {
        let mut a = ControlPlaneFaults::new(lossy_spec(), 5, SimRng::seed_from_u64(42));
        let mut b = ControlPlaneFaults::new(lossy_spec(), 5, SimRng::seed_from_u64(42));
        let mut now = SimTime::ZERO;
        for i in 0..256u64 {
            now += SimDuration::from_secs(20);
            let class = MessageClass::ALL[(i % 6) as usize];
            let cluster = Some(ClusterId((i % 5) as u16));
            assert_eq!(
                a.outcome(class, cluster, now),
                b.outcome(class, cluster, now)
            );
        }
        let mut c = ControlPlaneFaults::new(lossy_spec(), 5, SimRng::seed_from_u64(43));
        let differs = (0..256u64).any(|i| {
            let class = MessageClass::ALL[(i % 6) as usize];
            let t = SimTime::ZERO + SimDuration::from_secs(20 * (i + 1));
            a.outcome(class, None, t) != c.outcome(class, None, t)
        });
        assert!(differs, "different seeds should diverge");
    }

    #[test]
    fn per_class_outcomes_are_independent_of_interleaving() {
        // Run A asks for Submit outcomes only; run B interleaves other
        // classes between them. The Submit stream must be identical.
        let mut a = ControlPlaneFaults::new(lossy_spec(), 3, SimRng::seed_from_u64(7));
        let mut b = ControlPlaneFaults::new(lossy_spec(), 3, SimRng::seed_from_u64(7));
        for i in 0..64u64 {
            let t = SimTime::ZERO + SimDuration::from_secs(i + 1);
            let want = a.outcome(MessageClass::Submit, None, t);
            b.outcome(MessageClass::Release, None, t);
            b.outcome(MessageClass::InfoPoll, None, t);
            let got = b.outcome(MessageClass::Submit, None, t);
            assert_eq!(want, got, "interleaving other classes perturbed Submit");
        }
    }

    #[test]
    fn capture_restore_resumes_fault_streams_exactly() {
        let mut a = ControlPlaneFaults::new(lossy_spec(), 4, SimRng::seed_from_u64(21));
        let mut now = SimTime::ZERO;
        for i in 0..37u64 {
            now += SimDuration::from_secs(45);
            let class = MessageClass::ALL[(i % 6) as usize];
            a.outcome(class, Some(ClusterId((i % 4) as u16)), now);
        }
        let state = a.capture_state();
        // A differently seeded model inherits the captured state and must
        // continue a's streams exactly (hash_seed travels with the state).
        let mut b = ControlPlaneFaults::new(lossy_spec(), 4, SimRng::seed_from_u64(9999));
        b.restore_state(state).expect("matching channel count");
        for i in 0..256u64 {
            now += SimDuration::from_secs(45);
            let class = MessageClass::ALL[(i % 6) as usize];
            let cluster = Some(ClusterId((i % 4) as u16));
            assert_eq!(
                a.outcome(class, cluster, now),
                b.outcome(class, cluster, now)
            );
        }
    }

    #[test]
    fn restore_rejects_channel_count_mismatch() {
        let a = ControlPlaneFaults::new(lossy_spec(), 4, SimRng::seed_from_u64(21));
        let mut wrong = ControlPlaneFaults::new(lossy_spec(), 2, SimRng::seed_from_u64(21));
        assert!(wrong.restore_state(a.capture_state()).is_err());
        let mut flakeless = ControlPlaneFaults::new(
            ControlPlaneFaultSpec::uniform(0.1),
            4,
            SimRng::seed_from_u64(21),
        );
        assert!(flakeless.restore_state(a.capture_state()).is_err());
    }

    #[test]
    fn loss_extremes_behave() {
        let mut never = ControlPlaneFaults::new(
            ControlPlaneFaultSpec::uniform(0.0),
            3,
            SimRng::seed_from_u64(1),
        );
        let mut always = ControlPlaneFaults::new(
            ControlPlaneFaultSpec::uniform(1.0),
            3,
            SimRng::seed_from_u64(1),
        );
        for i in 0..128u64 {
            let class = MessageClass::ALL[(i % 6) as usize];
            let t = SimTime::ZERO + SimDuration::from_secs(i);
            assert_eq!(never.outcome(class, None, t), MessageOutcome::CLEAN);
            assert!(!always.outcome(class, None, t).delivered);
        }
    }

    #[test]
    fn flaky_episodes_are_ordered_and_elevate_loss() {
        let spec = lossy_spec();
        let flaky = spec.flaky.clone().unwrap();
        let mut ch = FlakyChannel::new(SimRng::seed_from_u64(9), &flaky);
        let mut last_end = SimTime::ZERO;
        for _ in 0..64 {
            assert!(ch.start >= last_end, "episodes must not overlap");
            assert!(ch.end > ch.start, "episodes have positive length");
            last_end = ch.end;
            let end = ch.end;
            ch.is_flaky(end, &flaky); // advance to the next window
        }
        // A model with certain loss during episodes and none outside:
        // messages sent inside a known episode are lost, outside are not.
        let mut m = ControlPlaneFaults::new(
            ControlPlaneFaultSpec {
                loss: ClassLoss::uniform(0.0),
                duplicate: 0.0,
                max_jitter: SimDuration::ZERO,
                flaky: Some(FlakyChannelSpec {
                    loss: 1.0,
                    ..flaky.clone()
                }),
            },
            1,
            SimRng::seed_from_u64(11),
        );
        let mut probe = m.clone();
        let cluster = ClusterId(0);
        let mut hits = 0;
        let mut misses = 0;
        let mut now = SimTime::ZERO;
        for _ in 0..2048 {
            now += SimDuration::from_secs(60);
            let inside = probe.is_flaky(cluster, now);
            let out = m.outcome(MessageClass::Grow, Some(cluster), now);
            assert_eq!(out.delivered, !inside);
            if inside {
                hits += 1;
            } else {
                misses += 1;
            }
        }
        assert!(hits > 0, "no probe ever landed inside an episode");
        assert!(misses > 0, "every probe landed inside an episode");
    }

    #[test]
    fn max_loss_spans_base_and_flaky_rates() {
        assert_eq!(lossy_spec().max_loss(), 0.8);
        assert_eq!(ControlPlaneFaultSpec::uniform(0.3).max_loss(), 0.3);
    }
}
