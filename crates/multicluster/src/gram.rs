//! GRAM-style submission latency model.
//!
//! Section V-A of the paper describes how the MRunner works around GRAM's
//! inability to manage malleable jobs: a malleable application is run as
//! a *collection of GRAM jobs of size 1*. Growing submits new GRAM jobs;
//! to hide their cost, submissions launch an **empty stub** that is
//! turned into an application process later ("that latter operation is
//! faster than submitting a job to GRAM as it is relieved from tasks such
//! as security enforcement and queue management"). Interactions with GRAM
//! overlap application execution; the application suspends only once all
//! resources are held.
//!
//! This module captures those costs as a pure timing model. Defaults are
//! justified in `koala::config` (they reproduce the order of magnitude of
//! GLOBUS pre-WS GRAM on DAS-3-era hardware).

use simcore::SimDuration;

/// Latency model for GRAM-like interactions.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct GramConfig {
    /// Submitting one GRAM job (security, queue handling) until the stub
    /// is running on the node.
    pub submit_latency: SimDuration,
    /// Additional per-job serialization when a batch of GRAM jobs is
    /// submitted at once (submissions pipeline but not perfectly).
    pub submit_per_job: SimDuration,
    /// Releasing a GRAM job after the application has shrunk.
    pub release_latency: SimDuration,
    /// Turning an already-running stub into an application process
    /// (the fast path the paper contrasts with full submission).
    pub stub_recruit_latency: SimDuration,
    /// One-way scheduler ↔ runner ↔ application message latency.
    pub message_latency: SimDuration,
}

impl Default for GramConfig {
    fn default() -> Self {
        GramConfig {
            submit_latency: SimDuration::from_secs(2),
            submit_per_job: SimDuration::from_millis(100),
            release_latency: SimDuration::from_secs(1),
            stub_recruit_latency: SimDuration::from_millis(500),
            message_latency: SimDuration::from_millis(50),
        }
    }
}

impl GramConfig {
    /// A zero-latency model, for tests that want pure scheduling
    /// behaviour without timing noise.
    pub fn instantaneous() -> Self {
        GramConfig {
            submit_latency: SimDuration::ZERO,
            submit_per_job: SimDuration::ZERO,
            release_latency: SimDuration::ZERO,
            stub_recruit_latency: SimDuration::ZERO,
            message_latency: SimDuration::ZERO,
        }
    }

    /// Time until a batch of `n` size-1 GRAM jobs all have running stubs.
    ///
    /// The batch submits in parallel but serializes partially at the
    /// gatekeeper: `submit_latency + n · submit_per_job`.
    pub fn batch_submit_time(&self, n: u32) -> SimDuration {
        if n == 0 {
            return SimDuration::ZERO;
        }
        self.submit_latency + self.submit_per_job.saturating_mul(n as u64)
    }

    /// Time from "stubs all running" until the application actually holds
    /// the new processes (recruitment of the stubs).
    pub fn recruit_time(&self, n: u32) -> SimDuration {
        if n == 0 {
            return SimDuration::ZERO;
        }
        // Stub recruitment is a local operation per node, done in
        // parallel; model as a single constant.
        self.stub_recruit_latency
    }

    /// Time to release `n` GRAM jobs after a shrink.
    pub fn batch_release_time(&self, n: u32) -> SimDuration {
        if n == 0 {
            return SimDuration::ZERO;
        }
        self.release_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_submission_scales_per_job() {
        let g = GramConfig::default();
        let one = g.batch_submit_time(1);
        let ten = g.batch_submit_time(10);
        assert!(ten > one);
        assert_eq!(
            ten - one,
            g.submit_per_job.saturating_mul(9),
            "difference is 9 per-job increments"
        );
    }

    #[test]
    fn zero_jobs_cost_nothing() {
        let g = GramConfig::default();
        assert_eq!(g.batch_submit_time(0), SimDuration::ZERO);
        assert_eq!(g.recruit_time(0), SimDuration::ZERO);
        assert_eq!(g.batch_release_time(0), SimDuration::ZERO);
    }

    #[test]
    fn recruitment_is_cheaper_than_submission() {
        // The design point from the paper: turning a stub into a process
        // beats a full GRAM submission.
        let g = GramConfig::default();
        assert!(g.recruit_time(4) < g.batch_submit_time(4));
    }

    #[test]
    fn batch_submit_is_monotone_in_size() {
        let g = GramConfig::default();
        let mut last = simcore::SimDuration::ZERO;
        for n in 1..=64 {
            let t = g.batch_submit_time(n);
            assert!(t >= last, "submission time must not shrink with batch size");
            last = t;
        }
    }

    #[test]
    fn instantaneous_model_is_all_zero() {
        let g = GramConfig::instantaneous();
        assert_eq!(g.batch_submit_time(32), SimDuration::ZERO);
        assert_eq!(g.batch_release_time(32), SimDuration::ZERO);
    }
}
