//! Seeded node crash/recover event streams.
//!
//! The paper's experiments assume clusters whose capacity only changes
//! when an operator withdraws *free* nodes; production multiclusters also
//! lose busy nodes to hardware faults. This module supplies the
//! *involuntary* shrink side of the elasticity layer: a
//! [`FailureStream`] that, given a [`FailureSpec`] and a forked
//! [`SimRng`], emits an endless sequence of [`FailureEvent`]s — each
//! saying when a crash happens, which cluster it hits, how many nodes go
//! down, and how long the repair takes.
//!
//! The stream is a **pure function of its seed**: it owns its RNG and
//! never reads simulation state, so two streams built from equal specs
//! and equal rng forks produce identical event sequences (property-tested
//! in `tests/failure_props.rs`). The scheduler turns each event into a
//! [`Cluster::crash`](crate::cluster::Cluster::crash) plus a delayed
//! [`Cluster::restore`](crate::cluster::Cluster::restore), deciding per
//! [`FailurePolicy`] what happens to the KOALA jobs caught on the dead
//! nodes.

use simcore::{SimDuration, SimRng, SimTime};

use crate::ids::ClusterId;

/// Parameters of the node-failure process (one shared process across the
/// whole multicluster; each event picks a victim cluster uniformly).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FailureSpec {
    /// Mean time between failure events (exponential inter-arrival).
    pub mtbf: SimDuration,
    /// Mean time to repair the crashed nodes (exponential, min 1 ms so a
    /// repair never lands at the crash instant).
    pub mttr: SimDuration,
    /// Each event fails `1..=max_nodes` nodes (uniform).
    pub max_nodes: u32,
}

impl FailureSpec {
    /// Builds a spec; see the field docs for the distributional meaning.
    pub fn new(mtbf: SimDuration, mttr: SimDuration, max_nodes: u32) -> Self {
        FailureSpec {
            mtbf,
            mttr,
            max_nodes,
        }
    }
}

/// What the scheduler does with a KOALA job whose nodes crashed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FailurePolicy {
    /// Release the job's surviving allocations and put it back in the
    /// placement queue (it restarts from scratch; the paper's malleable
    /// applications checkpoint nothing).
    #[default]
    Requeue,
    /// Kill the job: release surviving allocations and mark it failed.
    Kill,
}

/// One node-crash occurrence produced by a [`FailureStream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureEvent {
    /// Absolute time of the crash.
    pub at: SimTime,
    /// The cluster losing nodes.
    pub cluster: ClusterId,
    /// How many nodes go down (capped by the victim cluster's live pool
    /// when applied).
    pub nodes: u32,
    /// Delay until the crashed nodes are repaired and restored.
    pub repair_after: SimDuration,
}

/// An endless, seeded sequence of crash events.
///
/// Draw order per event is fixed (gap, cluster, node count, repair time),
/// which is what makes the stream reproducible: never reorder or skip
/// draws based on simulation state.
#[derive(Debug, Clone)]
pub struct FailureStream {
    spec: FailureSpec,
    n_clusters: u16,
    rng: SimRng,
    clock: SimTime,
}

impl FailureStream {
    /// Builds a stream over `n_clusters` clusters from its own RNG fork.
    /// Events start from simulation time zero.
    pub fn new(spec: FailureSpec, n_clusters: u16, rng: SimRng) -> Self {
        FailureStream {
            spec,
            n_clusters,
            rng,
            clock: SimTime::ZERO,
        }
    }

    /// The spec this stream was built from.
    pub fn spec(&self) -> &FailureSpec {
        &self.spec
    }

    /// Draws the next crash event. Inter-arrival gaps are clamped to at
    /// least 1 ms so consecutive crashes never share a timestamp.
    pub fn next_event(&mut self) -> FailureEvent {
        let gap = self.sample_exp(self.spec.mtbf);
        self.clock += gap.max(SimDuration::from_millis(1));
        let cluster = ClusterId(self.rng.u64_below(self.n_clusters.max(1) as u64) as u16);
        let nodes = 1 + self.rng.u64_below(self.spec.max_nodes.max(1) as u64) as u32;
        let repair_after = self
            .sample_exp(self.spec.mttr)
            .max(SimDuration::from_millis(1));
        FailureEvent {
            at: self.clock,
            cluster,
            nodes,
            repair_after,
        }
    }

    /// Exponential draw with the given mean, on the integer clock.
    fn sample_exp(&mut self, mean: SimDuration) -> SimDuration {
        let u = self.rng.f64_open0();
        SimDuration::from_secs_f64(-mean.as_secs_f64() * u.ln())
    }

    /// Captures the stream's dynamic state (RNG position and clock), for
    /// checkpointing. The spec and cluster count are configuration and
    /// are supplied again on restore.
    pub fn capture_state(&self) -> FailureStreamState {
        FailureStreamState {
            rng: self.rng.state(),
            clock: self.clock,
        }
    }

    /// Overwrites the stream's RNG position and clock with a captured
    /// state; subsequent [`FailureStream::next_event`] draws continue the
    /// original sequence exactly.
    pub fn restore_state(&mut self, state: FailureStreamState) {
        self.rng = SimRng::from_state(state.rng);
        self.clock = state.clock;
    }
}

/// A full capture of a [`FailureStream`]'s dynamic state (the spec and
/// cluster count are configuration, not state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureStreamState {
    /// The xoshiro256++ word state of the stream's RNG.
    pub rng: [u64; 4],
    /// Absolute time of the last emitted crash (zero if none yet).
    pub clock: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FailureSpec {
        FailureSpec::new(SimDuration::from_mins(30), SimDuration::from_mins(10), 4)
    }

    #[test]
    fn stream_is_a_pure_function_of_seed() {
        let mut a = FailureStream::new(spec(), 5, SimRng::seed_from_u64(42));
        let mut b = FailureStream::new(spec(), 5, SimRng::seed_from_u64(42));
        for _ in 0..64 {
            assert_eq!(a.next_event(), b.next_event());
        }
        let mut c = FailureStream::new(spec(), 5, SimRng::seed_from_u64(43));
        let differs = (0..64).any(|_| a.next_event() != c.next_event());
        assert!(differs, "different seeds should diverge");
    }

    #[test]
    fn capture_restore_resumes_the_stream_exactly() {
        let mut a = FailureStream::new(spec(), 5, SimRng::seed_from_u64(9));
        for _ in 0..17 {
            a.next_event();
        }
        let state = a.capture_state();
        let mut b = FailureStream::new(spec(), 5, SimRng::seed_from_u64(1234));
        b.restore_state(state);
        for _ in 0..64 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }

    #[test]
    fn events_are_strictly_ordered_and_in_range() {
        let mut s = FailureStream::new(spec(), 3, SimRng::seed_from_u64(7));
        let mut last = SimTime::ZERO;
        for _ in 0..256 {
            let e = s.next_event();
            assert!(e.at > last, "crash times strictly increase");
            assert!(e.cluster.0 < 3);
            assert!((1..=4).contains(&e.nodes));
            assert!(!e.repair_after.is_zero());
            last = e.at;
        }
    }
}
