//! A cluster of space-shared nodes with growable/shrinkable allocations.
//!
//! DAS-3 clusters run SGE configured for exclusive, space-shared node
//! allocation ("the granularity of allocation is the node", Section
//! VI-B). A malleable job's holding is a *collection* of such nodes that
//! the MRunner extends and trims one GRAM job at a time, so the central
//! abstraction here is an allocation that can [`grow`](Cluster::grow) and
//! [`shrink`](Cluster::shrink) in place.
//!
//! Node identity is tracked explicitly (not just counters) so that the
//! availability experiments can withdraw specific nodes and so invariants
//! ("a node belongs to at most one allocation") are checkable.

use std::collections::BTreeMap;

use crate::ids::{AllocId, NodeId};

/// Static description of a cluster (Table I row).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClusterSpec {
    /// Human-readable site name.
    pub name: String,
    /// Number of compute nodes.
    pub nodes: u32,
    /// Interconnect label (informational; timing effects are captured by
    /// the application speedup models).
    pub interconnect: String,
    /// Relative compute speed of this cluster's nodes (1.0 = the
    /// reference Delft nodes that calibrate Fig. 6). Execution times
    /// divide by this factor. The paper stresses that "applications are
    /// not supposed to scale the same in all of the clusters, which may
    /// be heterogeneous" — this is the knob that makes them differ.
    pub speed_factor: f64,
}

impl ClusterSpec {
    /// A homogeneous-speed spec (factor 1.0).
    pub fn new(name: impl Into<String>, nodes: u32, interconnect: impl Into<String>) -> Self {
        ClusterSpec {
            name: name.into(),
            nodes,
            interconnect: interconnect.into(),
            speed_factor: 1.0,
        }
    }
}

/// Who owns an allocation — a KOALA-managed job or a local (background)
/// user bypassing the multicluster scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AllocOwner {
    /// A job managed by the multicluster scheduler; the payload is the
    /// scheduler's job identifier.
    Koala(u64),
    /// A local user's job submitted directly to the LRM; the payload is
    /// the LRM-local job identifier.
    Local(u64),
}

/// State of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Idle and allocatable.
    Free,
    /// Held by the given allocation.
    Busy(AllocId),
    /// Withdrawn from the resource pool (maintenance / failure).
    Down,
}

/// Errors from allocation operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// Fewer free nodes than requested.
    Insufficient {
        /// Number of nodes requested.
        requested: u32,
        /// Number of nodes currently free.
        available: u32,
    },
    /// The allocation handle is unknown (already released?).
    UnknownAlloc(AllocId),
    /// A shrink asked for more nodes than the allocation holds.
    ShrinkTooLarge {
        /// Nodes the allocation currently holds.
        held: u32,
        /// Nodes the shrink tried to remove.
        requested: u32,
    },
    /// A request for zero nodes (always a caller bug).
    ZeroRequest,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::Insufficient {
                requested,
                available,
            } => {
                write!(f, "requested {requested} nodes but only {available} free")
            }
            AllocError::UnknownAlloc(id) => write!(f, "unknown allocation {id:?}"),
            AllocError::ShrinkTooLarge { held, requested } => {
                write!(f, "cannot shrink by {requested}: allocation holds {held}")
            }
            AllocError::ZeroRequest => write!(f, "zero-node request"),
        }
    }
}

impl std::error::Error for AllocError {}

#[derive(Debug, Clone)]
struct Allocation {
    owner: AllocOwner,
    nodes: Vec<NodeId>,
}

/// One allocation's losses in a [`Cluster::crash`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashVictim {
    /// The allocation that lost nodes.
    pub alloc: AllocId,
    /// Who owned it (so the scheduler can re-queue KOALA jobs and drop
    /// background jobs).
    pub owner: AllocOwner,
    /// How many of its nodes went down.
    pub lost: u32,
    /// True when the crash removed the allocation's last node; the
    /// handle is gone and must not be released again.
    pub destroyed: bool,
}

/// A full capture of a [`Cluster`]'s dynamic state, for checkpointing.
///
/// Ordering matters throughout: the free list is a *stack* (its order
/// decides which node ids the next allocation receives) and each
/// allocation's node list is append-ordered (shrinks pop from the back),
/// so a faithful restore reinstates both sequences verbatim — a restored
/// cluster then hands out exactly the node ids the captured one would
/// have. The static [`ClusterSpec`] is not part of the state; restore
/// targets a cluster freshly built from the same spec.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterState {
    /// Per-node state, indexed by node id.
    pub states: Vec<NodeState>,
    /// The free stack, bottom-to-top.
    pub free: Vec<NodeId>,
    /// Live allocations in id order: `(id, owner, nodes)` with the node
    /// list in append order.
    pub allocs: Vec<(AllocId, AllocOwner, Vec<NodeId>)>,
    /// The id the next allocation will receive.
    pub next_alloc: u64,
    /// Number of withdrawn/crashed nodes.
    pub down: u32,
}

/// A cluster: nodes, free list, and live allocations.
#[derive(Debug, Clone)]
pub struct Cluster {
    spec: ClusterSpec,
    states: Vec<NodeState>,
    /// Free nodes kept as a stack; lowest ids allocated first for
    /// determinism.
    free: Vec<NodeId>,
    allocs: BTreeMap<AllocId, Allocation>,
    next_alloc: u64,
    down: u32,
}

impl Cluster {
    /// Builds an all-free cluster from a spec.
    pub fn new(spec: ClusterSpec) -> Self {
        let n = spec.nodes;
        Cluster {
            spec,
            states: vec![NodeState::Free; n as usize],
            // Reverse order so pops hand out the lowest node id first.
            free: (0..n).rev().map(NodeId).collect(),
            allocs: BTreeMap::new(),
            next_alloc: 0,
            down: 0,
        }
    }

    /// The static spec.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Nodes currently part of the pool (total minus withdrawn).
    pub fn capacity(&self) -> u32 {
        self.spec.nodes - self.down
    }

    /// Free (allocatable) nodes.
    pub fn idle(&self) -> u32 {
        self.free.len() as u32
    }

    /// Nodes currently held by allocations.
    pub fn used(&self) -> u32 {
        self.capacity() - self.idle()
    }

    /// Nodes held by KOALA-owned allocations only.
    pub fn used_by_koala(&self) -> u32 {
        self.allocs
            .values()
            .filter(|a| matches!(a.owner, AllocOwner::Koala(_)))
            .map(|a| a.nodes.len() as u32)
            .sum()
    }

    /// Nodes held by local (background) allocations only.
    pub fn used_by_local(&self) -> u32 {
        self.allocs
            .values()
            .filter(|a| matches!(a.owner, AllocOwner::Local(_)))
            .map(|a| a.nodes.len() as u32)
            .sum()
    }

    /// Number of live allocations.
    pub fn allocation_count(&self) -> usize {
        self.allocs.len()
    }

    /// Size of a live allocation.
    pub fn alloc_size(&self, id: AllocId) -> Option<u32> {
        self.allocs.get(&id).map(|a| a.nodes.len() as u32)
    }

    /// Owner of a live allocation.
    pub fn alloc_owner(&self, id: AllocId) -> Option<AllocOwner> {
        self.allocs.get(&id).map(|a| a.owner)
    }

    /// Allocates `count` nodes to `owner`.
    pub fn allocate(&mut self, owner: AllocOwner, count: u32) -> Result<AllocId, AllocError> {
        if count == 0 {
            return Err(AllocError::ZeroRequest);
        }
        if self.idle() < count {
            return Err(AllocError::Insufficient {
                requested: count,
                available: self.idle(),
            });
        }
        let id = AllocId(self.next_alloc);
        self.next_alloc += 1;
        let mut nodes = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let n = self.free.pop().expect("checked idle() above");
            self.states[n.0 as usize] = NodeState::Busy(id);
            nodes.push(n);
        }
        self.allocs.insert(id, Allocation { owner, nodes });
        Ok(id)
    }

    /// Extends a live allocation by `extra` nodes.
    pub fn grow(&mut self, id: AllocId, extra: u32) -> Result<(), AllocError> {
        if extra == 0 {
            return Err(AllocError::ZeroRequest);
        }
        if !self.allocs.contains_key(&id) {
            return Err(AllocError::UnknownAlloc(id));
        }
        if self.idle() < extra {
            return Err(AllocError::Insufficient {
                requested: extra,
                available: self.idle(),
            });
        }
        for _ in 0..extra {
            let n = self.free.pop().expect("checked idle() above");
            self.states[n.0 as usize] = NodeState::Busy(id);
            self.allocs.get_mut(&id).expect("checked").nodes.push(n);
        }
        Ok(())
    }

    /// Trims `by` nodes off a live allocation (most recently added nodes
    /// are released first, matching the MRunner releasing its newest GRAM
    /// jobs). Returns the number of nodes actually freed (always `by`).
    pub fn shrink(&mut self, id: AllocId, by: u32) -> Result<u32, AllocError> {
        if by == 0 {
            return Err(AllocError::ZeroRequest);
        }
        let alloc = self
            .allocs
            .get_mut(&id)
            .ok_or(AllocError::UnknownAlloc(id))?;
        let held = alloc.nodes.len() as u32;
        if by > held {
            return Err(AllocError::ShrinkTooLarge {
                held,
                requested: by,
            });
        }
        for _ in 0..by {
            let n = alloc.nodes.pop().expect("checked held above");
            self.states[n.0 as usize] = NodeState::Free;
            self.free.push(n);
        }
        if alloc.nodes.is_empty() {
            self.allocs.remove(&id);
        }
        Ok(by)
    }

    /// Releases an allocation entirely; returns the number of nodes freed.
    pub fn release(&mut self, id: AllocId) -> Result<u32, AllocError> {
        let alloc = self
            .allocs
            .remove(&id)
            .ok_or(AllocError::UnknownAlloc(id))?;
        let n = alloc.nodes.len() as u32;
        for node in alloc.nodes {
            self.states[node.0 as usize] = NodeState::Free;
            self.free.push(node);
        }
        Ok(n)
    }

    /// Withdraws up to `count` *free* nodes from the pool (maintenance /
    /// failure model); busy nodes are untouched. Returns how many were
    /// actually withdrawn.
    pub fn withdraw_free(&mut self, count: u32) -> u32 {
        let take = count.min(self.idle());
        for _ in 0..take {
            let n = self.free.pop().expect("bounded by idle()");
            self.states[n.0 as usize] = NodeState::Down;
            self.down += 1;
        }
        take
    }

    /// Crashes up to `count` nodes outright — busy nodes included, unlike
    /// the polite [`Cluster::withdraw_free`]. Nodes fail in ascending
    /// node-id order among those not already down, so a crash
    /// deterministically hits the oldest allocations first (low ids are
    /// handed out first). Returns how many nodes actually went down plus
    /// one [`CrashVictim`] per allocation that lost nodes; crashed nodes
    /// rejoin the pool via [`Cluster::restore`].
    pub fn crash(&mut self, count: u32) -> (u32, Vec<CrashVictim>) {
        let mut taken = 0u32;
        let mut victims: BTreeMap<AllocId, CrashVictim> = BTreeMap::new();
        for i in 0..self.states.len() {
            if taken == count {
                break;
            }
            match self.states[i] {
                NodeState::Down => {}
                NodeState::Free => {
                    let pos = self
                        .free
                        .iter()
                        .position(|n| n.0 as usize == i)
                        .expect("Free state implies free-list membership");
                    self.free.remove(pos);
                    self.states[i] = NodeState::Down;
                    self.down += 1;
                    taken += 1;
                }
                NodeState::Busy(id) => {
                    let alloc = self
                        .allocs
                        .get_mut(&id)
                        .expect("Busy state implies a live allocation");
                    let pos = alloc
                        .nodes
                        .iter()
                        .position(|n| n.0 as usize == i)
                        .expect("Busy state implies membership in its allocation");
                    alloc.nodes.remove(pos);
                    let owner = alloc.owner;
                    let destroyed = alloc.nodes.is_empty();
                    if destroyed {
                        self.allocs.remove(&id);
                    }
                    self.states[i] = NodeState::Down;
                    self.down += 1;
                    taken += 1;
                    let v = victims.entry(id).or_insert(CrashVictim {
                        alloc: id,
                        owner,
                        lost: 0,
                        destroyed: false,
                    });
                    v.lost += 1;
                    v.destroyed = destroyed;
                }
            }
        }
        (taken, victims.into_values().collect())
    }

    /// Returns withdrawn nodes to the pool. Returns how many came back.
    pub fn restore(&mut self, count: u32) -> u32 {
        let mut restored = 0;
        for (i, st) in self.states.iter_mut().enumerate() {
            if restored == count {
                break;
            }
            if *st == NodeState::Down {
                *st = NodeState::Free;
                self.free.push(NodeId(i as u32));
                self.down -= 1;
                restored += 1;
            }
        }
        restored
    }

    /// Captures the cluster's dynamic state (see [`ClusterState`] for
    /// the ordering guarantees). The cluster is untouched.
    pub fn capture_state(&self) -> ClusterState {
        ClusterState {
            states: self.states.clone(),
            free: self.free.clone(),
            allocs: self
                .allocs
                .iter()
                .map(|(&id, a)| (id, a.owner, a.nodes.clone()))
                .collect(),
            next_alloc: self.next_alloc,
            down: self.down,
        }
    }

    /// Overwrites this cluster's dynamic state with a captured one and
    /// re-checks every structural invariant. The cluster must have been
    /// built from the same spec the capture came from; a mismatched or
    /// corrupt state is reported as `Err` with the violated invariant
    /// (the cluster is then in the restored-but-invalid state and must
    /// be discarded).
    pub fn restore_state(&mut self, state: ClusterState) -> Result<(), String> {
        if state.states.len() != self.spec.nodes as usize {
            return Err(format!(
                "state covers {} nodes but the spec has {}",
                state.states.len(),
                self.spec.nodes
            ));
        }
        let in_range = |n: &NodeId| (n.0 as usize) < state.states.len();
        if let Some(n) = state.free.iter().find(|n| !in_range(n)) {
            return Err(format!("free-list {n:?} outside the node range"));
        }
        if let Some(n) = state
            .allocs
            .iter()
            .flat_map(|(_, _, nodes)| nodes.iter())
            .find(|n| !in_range(n))
        {
            return Err(format!("allocated {n:?} outside the node range"));
        }
        self.states = state.states;
        self.free = state.free;
        self.allocs = state
            .allocs
            .into_iter()
            .map(|(id, owner, nodes)| (id, Allocation { owner, nodes }))
            .collect();
        self.next_alloc = state.next_alloc;
        self.down = state.down;
        if self.allocs.keys().any(|id| id.0 >= self.next_alloc) {
            return Err("live allocation id at or past next_alloc".into());
        }
        self.check_invariants()
    }

    /// Internal consistency check: every node appears in exactly one of
    /// {free list, some allocation, down}; counters agree. Used by tests
    /// and debug assertions in the scheduler.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen = vec![0u8; self.spec.nodes as usize];
        for n in &self.free {
            seen[n.0 as usize] += 1;
            if self.states[n.0 as usize] != NodeState::Free {
                return Err(format!(
                    "{n:?} in free list but state {:?}",
                    self.states[n.0 as usize]
                ));
            }
        }
        for (id, a) in &self.allocs {
            if a.nodes.is_empty() {
                return Err(format!("{id:?} is empty but still registered"));
            }
            for n in &a.nodes {
                seen[n.0 as usize] += 1;
                if self.states[n.0 as usize] != NodeState::Busy(*id) {
                    return Err(format!(
                        "{n:?} in {id:?} but state {:?}",
                        self.states[n.0 as usize]
                    ));
                }
            }
        }
        let mut down = 0;
        for (i, st) in self.states.iter().enumerate() {
            if st == &NodeState::Down {
                down += 1;
                seen[i] += 1;
            }
        }
        if down != self.down {
            return Err(format!("down counter {} != {}", self.down, down));
        }
        if let Some(i) = seen.iter().position(|&c| c != 1) {
            return Err(format!("node n{i} appears {} times", seen[i]));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: u32) -> Cluster {
        Cluster::new(ClusterSpec::new("test", n, "GbE"))
    }

    #[test]
    fn allocate_and_release_roundtrip() {
        let mut c = cluster(10);
        let a = c.allocate(AllocOwner::Koala(1), 4).unwrap();
        assert_eq!(c.idle(), 6);
        assert_eq!(c.used(), 4);
        assert_eq!(c.alloc_size(a), Some(4));
        assert_eq!(c.release(a).unwrap(), 4);
        assert_eq!(c.idle(), 10);
        c.check_invariants().unwrap();
    }

    #[test]
    fn over_allocation_is_rejected() {
        let mut c = cluster(4);
        c.allocate(AllocOwner::Koala(1), 3).unwrap();
        let err = c.allocate(AllocOwner::Koala(2), 2).unwrap_err();
        assert_eq!(
            err,
            AllocError::Insufficient {
                requested: 2,
                available: 1
            }
        );
        c.check_invariants().unwrap();
    }

    #[test]
    fn zero_requests_are_bugs() {
        let mut c = cluster(4);
        assert_eq!(
            c.allocate(AllocOwner::Koala(1), 0),
            Err(AllocError::ZeroRequest)
        );
        let a = c.allocate(AllocOwner::Koala(1), 1).unwrap();
        assert_eq!(c.grow(a, 0), Err(AllocError::ZeroRequest));
        assert_eq!(c.shrink(a, 0), Err(AllocError::ZeroRequest));
    }

    #[test]
    fn grow_extends_in_place() {
        let mut c = cluster(10);
        let a = c.allocate(AllocOwner::Koala(7), 2).unwrap();
        c.grow(a, 5).unwrap();
        assert_eq!(c.alloc_size(a), Some(7));
        assert_eq!(c.idle(), 3);
        assert_eq!(
            c.grow(a, 4),
            Err(AllocError::Insufficient {
                requested: 4,
                available: 3
            })
        );
        c.check_invariants().unwrap();
    }

    #[test]
    fn shrink_trims_and_auto_releases_empty() {
        let mut c = cluster(10);
        let a = c.allocate(AllocOwner::Koala(7), 6).unwrap();
        assert_eq!(c.shrink(a, 2).unwrap(), 2);
        assert_eq!(c.alloc_size(a), Some(4));
        assert_eq!(
            c.shrink(a, 9),
            Err(AllocError::ShrinkTooLarge {
                held: 4,
                requested: 9
            })
        );
        assert_eq!(c.shrink(a, 4).unwrap(), 4);
        assert_eq!(c.alloc_size(a), None, "empty allocation disappears");
        assert_eq!(c.idle(), 10);
        c.check_invariants().unwrap();
    }

    #[test]
    fn owner_accounting_separates_koala_and_local() {
        let mut c = cluster(20);
        c.allocate(AllocOwner::Koala(1), 5).unwrap();
        c.allocate(AllocOwner::Local(9), 3).unwrap();
        assert_eq!(c.used_by_koala(), 5);
        assert_eq!(c.used_by_local(), 3);
        assert_eq!(c.used(), 8);
    }

    #[test]
    fn withdraw_and_restore() {
        let mut c = cluster(10);
        c.allocate(AllocOwner::Koala(1), 6).unwrap();
        assert_eq!(c.withdraw_free(8), 4, "only free nodes can be withdrawn");
        assert_eq!(c.capacity(), 6);
        assert_eq!(c.idle(), 0);
        assert_eq!(c.restore(2), 2);
        assert_eq!(c.capacity(), 8);
        assert_eq!(c.idle(), 2);
        c.check_invariants().unwrap();
    }

    #[test]
    fn crash_takes_busy_nodes_and_reports_victims() {
        let mut c = cluster(10);
        let a = c.allocate(AllocOwner::Koala(1), 3).unwrap(); // nodes 0,1,2
        let b = c.allocate(AllocOwner::Local(9), 2).unwrap(); // nodes 3,4
        let (taken, mut victims) = c.crash(4); // nodes 0..=3 go down
        assert_eq!(taken, 4);
        victims.sort_by_key(|v| v.alloc);
        assert_eq!(
            victims,
            vec![
                CrashVictim {
                    alloc: a,
                    owner: AllocOwner::Koala(1),
                    lost: 3,
                    destroyed: true,
                },
                CrashVictim {
                    alloc: b,
                    owner: AllocOwner::Local(9),
                    lost: 1,
                    destroyed: false,
                },
            ]
        );
        assert_eq!(c.capacity(), 6);
        assert_eq!(c.alloc_size(a), None, "fully crashed allocation is gone");
        assert_eq!(c.alloc_size(b), Some(1));
        c.check_invariants().unwrap();
        // Crashed nodes come back through the same repair path as
        // withdrawn ones.
        assert_eq!(c.restore(4), 4);
        assert_eq!(c.capacity(), 10);
        c.check_invariants().unwrap();
    }

    #[test]
    fn crash_saturates_at_pool_size_and_skips_down_nodes() {
        let mut c = cluster(5);
        c.withdraw_free(2); // nodes 0,1 down (free stack pops lowest first)
        let (taken, victims) = c.crash(10);
        assert_eq!(taken, 3, "only nodes still up can crash");
        assert!(victims.is_empty(), "no allocations were harmed");
        assert_eq!(c.capacity(), 0);
        assert_eq!(c.idle(), 0);
        c.check_invariants().unwrap();
    }

    #[test]
    fn released_handle_is_gone() {
        let mut c = cluster(4);
        let a = c.allocate(AllocOwner::Koala(1), 2).unwrap();
        c.release(a).unwrap();
        assert_eq!(c.release(a), Err(AllocError::UnknownAlloc(a)));
        assert_eq!(c.grow(a, 1), Err(AllocError::UnknownAlloc(a)));
    }

    #[test]
    fn capture_restore_preserves_handout_order() {
        let mut c = cluster(12);
        let a = c.allocate(AllocOwner::Koala(1), 3).unwrap();
        let b = c.allocate(AllocOwner::Local(9), 2).unwrap();
        c.shrink(a, 1).unwrap();
        c.release(b).unwrap();
        c.withdraw_free(2);
        let state = c.capture_state();
        let mut r = cluster(12);
        r.restore_state(state.clone()).unwrap();
        assert_eq!(r.capture_state(), state, "restore is a fixed point");
        // The restored cluster hands out exactly the same node ids and
        // allocation handles the original would.
        let na = c.allocate(AllocOwner::Koala(2), 4).unwrap();
        let nb = r.allocate(AllocOwner::Koala(2), 4).unwrap();
        assert_eq!(na, nb);
        assert_eq!(c.capture_state(), r.capture_state());
        r.check_invariants().unwrap();
    }

    #[test]
    fn restore_rejects_mismatched_and_corrupt_state() {
        let c = cluster(8);
        let mut wrong_size = cluster(10);
        assert!(wrong_size.restore_state(c.capture_state()).is_err());
        let mut corrupt = c.capture_state();
        corrupt.free.push(NodeId(0)); // node 0 now appears twice
        let mut target = cluster(8);
        assert!(target.restore_state(corrupt).is_err());
    }

    #[test]
    fn deterministic_node_handout() {
        let mut a = cluster(8);
        let mut b = cluster(8);
        let ia = a.allocate(AllocOwner::Koala(1), 3).unwrap();
        let ib = b.allocate(AllocOwner::Koala(1), 3).unwrap();
        assert_eq!(ia, ib);
        assert_eq!(a.idle(), b.idle());
    }
}
