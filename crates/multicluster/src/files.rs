//! Replica catalog and transfer-time estimation.
//!
//! KOALA's Close-to-Files (CF) placement policy "uses information about
//! the presence of input files to decide where to place (components of)
//! jobs. Clusters with the necessary input files already present are
//! favoured as placement candidates, followed by clusters for which
//! transfer of those files take the least amount of time." (Section
//! IV-A.) The paper's malleability experiments use WF and stage no files,
//! but CF is part of the KOALA design, so the reproduction implements it;
//! this module is its substrate: a replica location service (RLS) plus a
//! bandwidth matrix for transfer-time estimates.

use std::collections::{BTreeMap, BTreeSet};

use simcore::SimDuration;

use crate::ids::ClusterId;

/// Identifier of a logical input file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u64);

/// Metadata of a logical file.
#[derive(Debug, Clone, PartialEq)]
pub struct FileMeta {
    /// Size in gigabytes.
    pub size_gb: f64,
    /// Clusters holding a replica.
    pub replicas: BTreeSet<ClusterId>,
}

/// Replica location service + wide-area bandwidth model.
#[derive(Debug, Clone)]
pub struct FileCatalog {
    files: BTreeMap<FileId, FileMeta>,
    /// `bandwidth_gbps[i][j]`: bandwidth from cluster i to cluster j in
    /// gigabits per second. Diagonal entries are ignored (local access is
    /// free).
    bandwidth_gbps: Vec<Vec<f64>>,
    next_file: u64,
}

impl FileCatalog {
    /// Creates a catalog for `n` clusters with a uniform wide-area
    /// bandwidth (Gb/s) between distinct clusters.
    pub fn uniform(n: usize, wan_gbps: f64) -> Self {
        assert!(wan_gbps > 0.0, "bandwidth must be positive");
        FileCatalog {
            files: BTreeMap::new(),
            bandwidth_gbps: vec![vec![wan_gbps; n]; n],
            next_file: 0,
        }
    }

    /// Creates a catalog with an explicit bandwidth matrix.
    pub fn with_matrix(bandwidth_gbps: Vec<Vec<f64>>) -> Self {
        let n = bandwidth_gbps.len();
        for row in &bandwidth_gbps {
            assert_eq!(row.len(), n, "bandwidth matrix must be square");
        }
        FileCatalog {
            files: BTreeMap::new(),
            bandwidth_gbps,
            next_file: 0,
        }
    }

    /// Registers a file with replicas at the given clusters; returns its id.
    pub fn register(
        &mut self,
        size_gb: f64,
        replicas: impl IntoIterator<Item = ClusterId>,
    ) -> FileId {
        let id = FileId(self.next_file);
        self.next_file += 1;
        self.files.insert(
            id,
            FileMeta {
                size_gb,
                replicas: replicas.into_iter().collect(),
            },
        );
        id
    }

    /// Adds a replica (e.g. after a staged transfer completes).
    pub fn add_replica(&mut self, file: FileId, at: ClusterId) {
        if let Some(meta) = self.files.get_mut(&file) {
            meta.replicas.insert(at);
        }
    }

    /// Metadata of a file.
    pub fn meta(&self, file: FileId) -> Option<&FileMeta> {
        self.files.get(&file)
    }

    /// Number of registered files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when no files are registered.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Estimated time to make `file` available at `dest`: zero if a
    /// replica is local, otherwise the transfer time from the
    /// best-connected replica site. `None` for unknown files.
    pub fn transfer_time(&self, file: FileId, dest: ClusterId) -> Option<SimDuration> {
        let meta = self.files.get(&file)?;
        if meta.replicas.contains(&dest) {
            return Some(SimDuration::ZERO);
        }
        let mut best: Option<f64> = None;
        for &src in &meta.replicas {
            let bw = self.bandwidth_gbps[src.index()][dest.index()];
            if bw <= 0.0 {
                continue;
            }
            // size GB → gigabits, divided by Gb/s.
            let secs = meta.size_gb * 8.0 / bw;
            best = Some(best.map_or(secs, |b: f64| b.min(secs)));
        }
        best.map(SimDuration::from_secs_f64)
    }

    /// Total estimated staging time for a set of files at `dest`
    /// (transfers run sequentially from the runner's submission site, per
    /// KOALA's third-party transfer model). Unknown files count as zero.
    pub fn staging_time(&self, files: &[FileId], dest: ClusterId) -> SimDuration {
        files
            .iter()
            .filter_map(|&f| self.transfer_time(f, dest))
            .fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_replica_is_free() {
        let mut cat = FileCatalog::uniform(3, 10.0);
        let f = cat.register(100.0, [ClusterId(1)]);
        assert_eq!(cat.transfer_time(f, ClusterId(1)), Some(SimDuration::ZERO));
    }

    #[test]
    fn remote_transfer_uses_bandwidth() {
        let mut cat = FileCatalog::uniform(2, 10.0); // 10 Gb/s
        let f = cat.register(10.0, [ClusterId(0)]); // 10 GB = 80 Gb
                                                    // 80 Gb / 10 Gb/s = 8 s.
        assert_eq!(
            cat.transfer_time(f, ClusterId(1)),
            Some(SimDuration::from_secs(8))
        );
    }

    #[test]
    fn best_replica_wins() {
        let mut m = vec![vec![1.0; 3]; 3];
        m[2][1] = 40.0; // cluster 2 → 1 is fast
        let mut cat = FileCatalog::with_matrix(m);
        let f = cat.register(10.0, [ClusterId(0), ClusterId(2)]);
        // From 0: 80/1 = 80 s; from 2: 80/40 = 2 s.
        assert_eq!(
            cat.transfer_time(f, ClusterId(1)),
            Some(SimDuration::from_secs(2))
        );
    }

    #[test]
    fn unknown_file_is_none_and_replica_updates() {
        let mut cat = FileCatalog::uniform(2, 10.0);
        assert_eq!(cat.transfer_time(FileId(99), ClusterId(0)), None);
        let f = cat.register(10.0, [ClusterId(0)]);
        assert!(cat.transfer_time(f, ClusterId(1)).unwrap() > SimDuration::ZERO);
        cat.add_replica(f, ClusterId(1));
        assert_eq!(cat.transfer_time(f, ClusterId(1)), Some(SimDuration::ZERO));
    }

    #[test]
    fn staging_time_sums_files() {
        let mut cat = FileCatalog::uniform(2, 8.0);
        let f1 = cat.register(1.0, [ClusterId(0)]); // 8 Gb / 8 = 1 s
        let f2 = cat.register(2.0, [ClusterId(0)]); // 16 Gb / 8 = 2 s
        assert_eq!(
            cat.staging_time(&[f1, f2], ClusterId(1)),
            SimDuration::from_secs(3)
        );
        assert_eq!(cat.staging_time(&[f1, f2], ClusterId(0)), SimDuration::ZERO);
    }
}
