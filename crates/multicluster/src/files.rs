//! Replica catalog and transfer-time estimation.
//!
//! KOALA's Close-to-Files (CF) placement policy "uses information about
//! the presence of input files to decide where to place (components of)
//! jobs. Clusters with the necessary input files already present are
//! favoured as placement candidates, followed by clusters for which
//! transfer of those files take the least amount of time." (Section
//! IV-A.) The paper's malleability experiments use WF and stage no files,
//! but CF is part of the KOALA design, so the reproduction implements it;
//! this module is its substrate: a replica location service (RLS) plus a
//! bandwidth matrix for transfer-time estimates.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use simcore::SimDuration;

use crate::ids::ClusterId;
use crate::network::NetworkTopology;

/// Errors from catalog construction and fallible staging queries.
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogError {
    /// A bandwidth-matrix row has the wrong width.
    NonSquareMatrix {
        /// Offending row index.
        row: usize,
        /// Entries found in the row.
        len: usize,
        /// Expected width (the number of rows).
        n: usize,
    },
    /// A matrix entry is negative or not finite (zero is allowed and
    /// means "no route").
    InvalidBandwidth {
        /// Source cluster index.
        from: usize,
        /// Destination cluster index.
        to: usize,
        /// The offending value.
        value: f64,
    },
    /// The uniform WAN bandwidth is zero, negative or not finite.
    NonPositiveUniform {
        /// The offending value.
        value: f64,
    },
    /// A staging query named a file that was never registered.
    UnknownFile(FileId),
    /// The file exists but has no replicas anywhere.
    NoReplicas(FileId),
    /// No replica site has a usable route to the destination.
    Unreachable {
        /// The file being staged.
        file: FileId,
        /// The destination cluster.
        dest: ClusterId,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::NonSquareMatrix { row, len, n } => write!(
                f,
                "bandwidth matrix must be square: row {row} has {len} entries, expected {n}"
            ),
            CatalogError::InvalidBandwidth { from, to, value } => write!(
                f,
                "bandwidth[{from}][{to}] = {value} is invalid (must be finite and >= 0)"
            ),
            CatalogError::NonPositiveUniform { value } => {
                write!(f, "uniform WAN bandwidth must be positive, got {value}")
            }
            CatalogError::UnknownFile(id) => write!(f, "unknown file {id:?}"),
            CatalogError::NoReplicas(id) => write!(f, "file {id:?} has no replicas"),
            CatalogError::Unreachable { file, dest } => {
                write!(f, "no replica of {file:?} is reachable from {dest:?}")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// Identifier of a logical input file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u64);

/// Metadata of a logical file.
#[derive(Debug, Clone, PartialEq)]
pub struct FileMeta {
    /// Size in gigabytes.
    pub size_gb: f64,
    /// Clusters holding a replica.
    pub replicas: BTreeSet<ClusterId>,
}

/// Replica location service + wide-area bandwidth model.
#[derive(Debug, Clone)]
pub struct FileCatalog {
    files: BTreeMap<FileId, FileMeta>,
    /// `bandwidth_gbps[i][j]`: bandwidth from cluster i to cluster j in
    /// gigabits per second. Diagonal entries are ignored (local access is
    /// free).
    bandwidth_gbps: Vec<Vec<f64>>,
    next_file: u64,
}

impl FileCatalog {
    /// Creates a catalog for `n` clusters with a uniform wide-area
    /// bandwidth (Gb/s) between distinct clusters. Errors when the
    /// bandwidth is zero, negative or not finite.
    pub fn uniform(n: usize, wan_gbps: f64) -> Result<Self, CatalogError> {
        if !(wan_gbps.is_finite() && wan_gbps > 0.0) {
            return Err(CatalogError::NonPositiveUniform { value: wan_gbps });
        }
        Ok(FileCatalog {
            files: BTreeMap::new(),
            bandwidth_gbps: vec![vec![wan_gbps; n]; n],
            next_file: 0,
        })
    }

    /// Creates a catalog with an explicit bandwidth matrix. Errors on a
    /// non-square matrix or a negative/non-finite entry; a zero entry
    /// is allowed and means "no route".
    pub fn with_matrix(bandwidth_gbps: Vec<Vec<f64>>) -> Result<Self, CatalogError> {
        let n = bandwidth_gbps.len();
        for (i, row) in bandwidth_gbps.iter().enumerate() {
            if row.len() != n {
                return Err(CatalogError::NonSquareMatrix {
                    row: i,
                    len: row.len(),
                    n,
                });
            }
            for (j, &bw) in row.iter().enumerate() {
                if !(bw.is_finite() && bw >= 0.0) {
                    return Err(CatalogError::InvalidBandwidth {
                        from: i,
                        to: j,
                        value: bw,
                    });
                }
            }
        }
        Ok(FileCatalog {
            files: BTreeMap::new(),
            bandwidth_gbps,
            next_file: 0,
        })
    }

    /// Creates a catalog whose bandwidth matrix is derived from a
    /// network topology: entry `[i][j]` is the uncontended bottleneck
    /// bandwidth of the `i → j` route. This keeps Close-to-Files
    /// ranking and deferred-claiming estimates consistent with the
    /// contended network the transfers actually cross.
    pub fn over_network(net: &NetworkTopology) -> Self {
        let n = net.clusters();
        let mut matrix = vec![vec![0.0; n]; n];
        for (i, row) in matrix.iter_mut().enumerate() {
            for (j, bw) in row.iter_mut().enumerate() {
                if i != j {
                    *bw = net.path_bandwidth_gbps(ClusterId(i as u16), ClusterId(j as u16));
                }
            }
        }
        FileCatalog {
            files: BTreeMap::new(),
            bandwidth_gbps: matrix,
            next_file: 0,
        }
    }

    /// Registers a file with replicas at the given clusters; returns its id.
    pub fn register(
        &mut self,
        size_gb: f64,
        replicas: impl IntoIterator<Item = ClusterId>,
    ) -> FileId {
        let id = FileId(self.next_file);
        self.next_file += 1;
        self.files.insert(
            id,
            FileMeta {
                size_gb,
                replicas: replicas.into_iter().collect(),
            },
        );
        id
    }

    /// Adds a replica (e.g. after a staged transfer completes).
    pub fn add_replica(&mut self, file: FileId, at: ClusterId) {
        if let Some(meta) = self.files.get_mut(&file) {
            meta.replicas.insert(at);
        }
    }

    /// Metadata of a file.
    pub fn meta(&self, file: FileId) -> Option<&FileMeta> {
        self.files.get(&file)
    }

    /// Number of registered files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when no files are registered.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Estimated time to make `file` available at `dest`: zero if a
    /// replica is local, otherwise the transfer time from the
    /// best-connected replica site. `None` for unknown files, files
    /// without replicas, and unreachable destinations — callers that
    /// need to distinguish those cases use [`Self::try_transfer_time`].
    /// A zero-size file transfers in zero time from any replica.
    pub fn transfer_time(&self, file: FileId, dest: ClusterId) -> Option<SimDuration> {
        let meta = self.files.get(&file)?;
        if meta.replicas.contains(&dest) {
            return Some(SimDuration::ZERO);
        }
        let mut best: Option<f64> = None;
        for &src in &meta.replicas {
            let bw = self.bandwidth_gbps[src.index()][dest.index()];
            if bw <= 0.0 {
                continue;
            }
            // size GB → gigabits, divided by Gb/s.
            let secs = meta.size_gb * 8.0 / bw;
            best = Some(best.map_or(secs, |b: f64| b.min(secs)));
        }
        best.map(SimDuration::from_secs_f64)
    }

    /// Like [`Self::transfer_time`] but with typed errors instead of a
    /// collapsed `None`: distinguishes an unknown file, a file with no
    /// replicas, and a destination no replica can reach.
    pub fn try_transfer_time(
        &self,
        file: FileId,
        dest: ClusterId,
    ) -> Result<SimDuration, CatalogError> {
        let meta = self
            .files
            .get(&file)
            .ok_or(CatalogError::UnknownFile(file))?;
        if meta.replicas.is_empty() {
            return Err(CatalogError::NoReplicas(file));
        }
        self.transfer_time(file, dest)
            .ok_or(CatalogError::Unreachable { file, dest })
    }

    /// Total estimated staging time for a set of files at `dest`
    /// (transfers run sequentially from the runner's submission site, per
    /// KOALA's third-party transfer model). Unknown, replica-less and
    /// unreachable files count as zero — the estimate is a placement
    /// heuristic, not an admission check; [`Self::try_staging_time`]
    /// is the strict variant.
    pub fn staging_time(&self, files: &[FileId], dest: ClusterId) -> SimDuration {
        files
            .iter()
            .filter_map(|&f| self.transfer_time(f, dest))
            .fold(SimDuration::ZERO, |acc, d| acc + d)
    }

    /// Like [`Self::staging_time`] but failing on the first file that
    /// cannot actually be staged at `dest`.
    pub fn try_staging_time(
        &self,
        files: &[FileId],
        dest: ClusterId,
    ) -> Result<SimDuration, CatalogError> {
        files.iter().try_fold(SimDuration::ZERO, |acc, &f| {
            Ok(acc + self.try_transfer_time(f, dest)?)
        })
    }

    /// Captures the catalog's dynamic state (registered files in id order
    /// plus the id counter), for checkpointing. The bandwidth matrix is
    /// derived from configuration and is rebuilt on restore.
    pub fn capture_state(&self) -> FileCatalogState {
        FileCatalogState {
            files: self
                .files
                .iter()
                .map(|(id, meta)| (*id, meta.clone()))
                .collect(),
            next_file: self.next_file,
        }
    }

    /// Overwrites the catalog's file table with a captured one (the
    /// bandwidth matrix is left untouched). Fails when a file id is not
    /// below the id counter, which would let a future registration
    /// collide with a restored file.
    pub fn restore_state(&mut self, state: FileCatalogState) -> Result<(), String> {
        if let Some((id, _)) = state.files.iter().find(|(id, _)| id.0 >= state.next_file) {
            return Err(format!(
                "file id {} not below next_file {}",
                id.0, state.next_file
            ));
        }
        self.files = state.files.into_iter().collect();
        self.next_file = state.next_file;
        Ok(())
    }
}

/// A full capture of a [`FileCatalog`]'s dynamic state (the bandwidth
/// matrix is configuration-derived, not state).
#[derive(Debug, Clone, PartialEq)]
pub struct FileCatalogState {
    /// Registered files with their metadata, in ascending id order.
    pub files: Vec<(FileId, FileMeta)>,
    /// The next file id to hand out.
    pub next_file: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_replica_is_free() {
        let mut cat = FileCatalog::uniform(3, 10.0).unwrap();
        let f = cat.register(100.0, [ClusterId(1)]);
        assert_eq!(cat.transfer_time(f, ClusterId(1)), Some(SimDuration::ZERO));
    }

    #[test]
    fn remote_transfer_uses_bandwidth() {
        let mut cat = FileCatalog::uniform(2, 10.0).unwrap(); // 10 Gb/s
        let f = cat.register(10.0, [ClusterId(0)]); // 10 GB = 80 Gb
                                                    // 80 Gb / 10 Gb/s = 8 s.
        assert_eq!(
            cat.transfer_time(f, ClusterId(1)),
            Some(SimDuration::from_secs(8))
        );
    }

    #[test]
    fn best_replica_wins() {
        let mut m = vec![vec![1.0; 3]; 3];
        m[2][1] = 40.0; // cluster 2 → 1 is fast
        let mut cat = FileCatalog::with_matrix(m).unwrap();
        let f = cat.register(10.0, [ClusterId(0), ClusterId(2)]);
        // From 0: 80/1 = 80 s; from 2: 80/40 = 2 s.
        assert_eq!(
            cat.transfer_time(f, ClusterId(1)),
            Some(SimDuration::from_secs(2))
        );
    }

    #[test]
    fn unknown_file_is_none_and_replica_updates() {
        let mut cat = FileCatalog::uniform(2, 10.0).unwrap();
        assert_eq!(cat.transfer_time(FileId(99), ClusterId(0)), None);
        let f = cat.register(10.0, [ClusterId(0)]);
        assert!(cat.transfer_time(f, ClusterId(1)).unwrap() > SimDuration::ZERO);
        cat.add_replica(f, ClusterId(1));
        assert_eq!(cat.transfer_time(f, ClusterId(1)), Some(SimDuration::ZERO));
    }

    #[test]
    fn staging_time_sums_files() {
        let mut cat = FileCatalog::uniform(2, 8.0).unwrap();
        let f1 = cat.register(1.0, [ClusterId(0)]); // 8 Gb / 8 = 1 s
        let f2 = cat.register(2.0, [ClusterId(0)]); // 16 Gb / 8 = 2 s
        assert_eq!(
            cat.staging_time(&[f1, f2], ClusterId(1)),
            SimDuration::from_secs(3)
        );
        assert_eq!(cat.staging_time(&[f1, f2], ClusterId(0)), SimDuration::ZERO);
    }

    #[test]
    fn constructors_reject_bad_bandwidth() {
        assert_eq!(
            FileCatalog::uniform(3, 0.0).unwrap_err(),
            CatalogError::NonPositiveUniform { value: 0.0 }
        );
        assert!(FileCatalog::uniform(3, f64::NAN).is_err());
        assert_eq!(
            FileCatalog::with_matrix(vec![vec![1.0, 2.0], vec![3.0]]).unwrap_err(),
            CatalogError::NonSquareMatrix {
                row: 1,
                len: 1,
                n: 2
            }
        );
        assert_eq!(
            FileCatalog::with_matrix(vec![vec![1.0, -2.0], vec![3.0, 1.0]]).unwrap_err(),
            CatalogError::InvalidBandwidth {
                from: 0,
                to: 1,
                value: -2.0
            }
        );
        // Zero entries are legal: they mean "no route".
        assert!(FileCatalog::with_matrix(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).is_ok());
    }

    #[test]
    fn zero_size_file_stages_in_zero_time() {
        let mut cat = FileCatalog::uniform(2, 1.0).unwrap();
        let f = cat.register(0.0, [ClusterId(0)]);
        assert_eq!(cat.transfer_time(f, ClusterId(1)), Some(SimDuration::ZERO));
        assert_eq!(
            cat.try_transfer_time(f, ClusterId(1)),
            Ok(SimDuration::ZERO)
        );
    }

    #[test]
    fn staging_edge_cases_are_pinned() {
        let mut cat = FileCatalog::with_matrix(vec![vec![0.0, 0.0], vec![1.0, 0.0]]).unwrap();
        let orphan = cat.register(10.0, []);
        let marooned = cat.register(10.0, [ClusterId(0)]); // 0 → 1 has no route
        let ghost = FileId(99);

        // The infallible estimators collapse every edge case to
        // None / zero (a ranking heuristic must not panic)...
        assert_eq!(cat.transfer_time(ghost, ClusterId(0)), None);
        assert_eq!(cat.transfer_time(orphan, ClusterId(1)), None);
        assert_eq!(cat.transfer_time(marooned, ClusterId(1)), None);
        assert_eq!(
            cat.staging_time(&[ghost, orphan, marooned], ClusterId(1)),
            SimDuration::ZERO
        );

        // ...while the fallible twins name the reason.
        assert_eq!(
            cat.try_transfer_time(ghost, ClusterId(0)),
            Err(CatalogError::UnknownFile(ghost))
        );
        assert_eq!(
            cat.try_transfer_time(orphan, ClusterId(1)),
            Err(CatalogError::NoReplicas(orphan))
        );
        assert_eq!(
            cat.try_transfer_time(marooned, ClusterId(1)),
            Err(CatalogError::Unreachable {
                file: marooned,
                dest: ClusterId(1)
            })
        );
        assert_eq!(
            cat.try_staging_time(&[marooned, ghost], ClusterId(1)),
            Err(CatalogError::Unreachable {
                file: marooned,
                dest: ClusterId(1)
            })
        );
        // A local replica short-circuits the route check.
        assert_eq!(
            cat.try_staging_time(&[marooned], ClusterId(0)),
            Ok(SimDuration::ZERO)
        );
    }

    #[test]
    fn capture_restore_round_trips_and_rejects_colliding_ids() {
        let mut cat = FileCatalog::uniform(3, 10.0).unwrap();
        cat.register(1.0, [ClusterId(0)]);
        let f = cat.register(2.0, [ClusterId(1), ClusterId(2)]);
        let state = cat.capture_state();
        let mut fresh = FileCatalog::uniform(3, 10.0).unwrap();
        fresh.restore_state(state.clone()).unwrap();
        assert_eq!(fresh.capture_state(), state);
        assert_eq!(fresh.meta(f), cat.meta(f));
        // The next registration must not collide with a restored id.
        let g = fresh.register(3.0, [ClusterId(0)]);
        assert!(g.0 >= state.next_file);

        let mut bad = state.clone();
        bad.next_file = 1; // f has id 1 → collision
        assert!(fresh.restore_state(bad).is_err());
    }

    #[test]
    fn over_network_derives_bottleneck_bandwidths() {
        let topo = NetworkTopology::star("t", &[10.0, 1.0, 10.0], SimDuration::ZERO).unwrap();
        let mut cat = FileCatalog::over_network(&topo);
        let f = cat.register(10.0, [ClusterId(0)]);
        // 10 GB = 80 Gb over the 1 Gb/s access of cluster 1: 80 s.
        assert_eq!(
            cat.transfer_time(f, ClusterId(1)),
            Some(SimDuration::from_secs(80))
        );
        // Cluster 0 → 2 bottlenecks at 10 Gb/s: 8 s.
        assert_eq!(
            cat.transfer_time(f, ClusterId(2)),
            Some(SimDuration::from_secs(8))
        );
    }
}
