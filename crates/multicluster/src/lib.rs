//! # multicluster — the execution-environment substrate
//!
//! The paper runs on DAS-3: five clusters of dual-Opteron nodes, each
//! managed by the Sun Grid Engine in *space-shared* mode with *node*
//! allocation granularity, fronted by GLOBUS GRAM for remote submission,
//! and observed through the KOALA Information Service (KIS). This crate
//! models that environment as plain state machines — no event types of
//! its own — so the scheduler crate can compose them into its simulation
//! world and the pieces stay independently unit-testable:
//!
//! * [`Cluster`] — a set of nodes with space-shared allocations that can
//!   grow and shrink in place (the substrate feature malleability needs);
//!   supports withdrawing/restoring nodes for availability experiments.
//! * [`Lrm`] — an SGE-like local resource manager: a FIFO queue of local
//!   (background) jobs running on a cluster, bypassing KOALA exactly as
//!   "local users" do in the paper.
//! * [`GramConfig`] — the latency model of GRAM-style job submission,
//!   including the cheap *stub recruitment* path the MRunner uses
//!   (Section V-A of the paper).
//! * [`InfoService`] — the KIS: periodic snapshots of per-cluster idle
//!   counts; schedulers see the (possibly stale) snapshot, never live
//!   state.
//! * [`FileCatalog`] — replica locations and transfer-time estimates for
//!   the Close-to-Files placement policy.
//! * [`NetworkTopology`] / [`FlowNet`] / [`TopologyRegistry`] — the
//!   contended wide-area network: per-link bandwidth and latency,
//!   routes as link sequences, named topology builders (`flat_wan`,
//!   `star`, `hierarchical`, `fat_tree_<k>`, the Table-I `das3`
//!   preset), and max-min fair sharing of concurrent transfers with
//!   event-driven completion re-estimation.
//! * [`Multicluster`] / [`das3`] — topology presets, including Table I of
//!   the paper.
//! * [`BackgroundLoad`] — stochastic local-user workload parameters.
//! * [`FailureStream`] — seeded node crash/recover event streams for the
//!   elasticity experiments; crashes hit busy nodes (unlike the polite
//!   withdraw path) via [`Cluster::crash`](Cluster::crash).
//! * [`ControlPlaneFaults`] — seeded *control-plane* fault model: lossy,
//!   jittery, duplicating KOALA↔GRAM messaging with per-cluster flaky
//!   channel episodes (the robustness axis on top of the node-failure
//!   data plane).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod background;
mod cluster;
mod failure;
mod files;
mod gram;
mod ids;
mod info;
mod lrm;
mod network;
mod topology;

pub use background::{BackgroundLoad, BackgroundSample};
pub use cluster::{
    AllocError, AllocOwner, Cluster, ClusterSpec, ClusterState, CrashVictim, NodeState,
};
pub use failure::{FailureEvent, FailurePolicy, FailureSpec, FailureStream, FailureStreamState};
pub use files::{CatalogError, FileCatalog, FileCatalogState, FileId, FileMeta};
pub use gram::{
    ClassLoss, ControlPlaneFaultSpec, ControlPlaneFaults, ControlPlaneFaultsState,
    FlakyChannelSpec, FlakyChannelState, GramConfig, MessageClass, MessageOutcome,
};
pub use ids::{AllocId, ClusterId, NodeId};
pub use info::{InfoService, InfoSnapshot, InfoState};
pub use lrm::{LocalJob, LocalJobId, Lrm, LrmState, SubmitOutcome};
pub use network::{
    global_topologies, FlowDone, FlowNet, FlowNetState, FlowSchedule, FlowState, Link, LinkId,
    NetworkError, NetworkTopology, TopologyCtor, TopologyRegistry,
};
pub use topology::{das3, das3_heterogeneous, uniform, Interconnect, Multicluster, DAS3_DELFT};
