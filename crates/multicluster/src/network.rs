//! Contended wide-area network: links, routes, named topologies, and
//! max-min fair sharing of concurrent transfers.
//!
//! The paper's Close-to-Files placement policy is motivated by the cost
//! of staging input files across the DAS-3 wide-area interconnect
//! (Table I: Myri-10G sites on a 10 Gb/s light path, Delft on 1 Gb/s
//! Ethernet only). A static bandwidth matrix can *rank* clusters but
//! cannot show what happens when many transfers share a link — which is
//! exactly the regime where CF placement should pay off. This module
//! supplies the missing substrate:
//!
//! * [`NetworkTopology`] — links with bandwidth + latency, and a route
//!   (a sequence of [`LinkId`]s) between every ordered cluster pair.
//!   Builders: [`NetworkTopology::flat_wan`], [`NetworkTopology::star`],
//!   [`NetworkTopology::hierarchical`], [`NetworkTopology::fat_tree`],
//!   and the [`NetworkTopology::das3`] preset wired to the Table-I
//!   interconnect labels.
//! * [`TopologyRegistry`] — the name → builder registry (fourth twin of
//!   the policy/workload/autoscaler registries), including parametric
//!   `fat_tree_<k>` names.
//! * [`FlowNet`] — the runtime: active transfers receive max-min fair
//!   shares of every link they cross, recomputed incrementally on each
//!   transfer start/finish (progressive filling, deterministic order),
//!   with event-driven completion-time re-estimation in the dslab
//!   style: every rate change bumps a per-flow generation and yields a
//!   fresh ETA; stale completion events are dropped by generation.
//!
//! Latency is modelled as a constant serial tail: a flow's completion
//! time is its drain time plus the route's summed latency, and the flow
//! occupies its links until the completion event fires. For multi-
//! hundred-second transfers over millisecond-latency links the
//! overhold is negligible, and the simplification keeps the fair-share
//! state free of per-flow timers.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

use simcore::{SimDuration, SimTime};

use crate::ids::ClusterId;
use crate::topology::{das3 as das3_clusters, Interconnect};

/// Residual data below this threshold counts as fully drained.
const EPS_GB: f64 = 1e-9;

/// Identifier of a network link (index into the topology's link table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The link's index into [`NetworkTopology::links`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A directed-capacity network link.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// Human-readable name (rendered in reports and errors).
    pub name: String,
    /// Capacity in gigabits per second, shared max-min fairly by the
    /// flows crossing the link.
    pub bandwidth_gbps: f64,
    /// One-way latency, paid once per link on a route as a serial tail.
    pub latency: SimDuration,
}

/// Errors from topology construction and registry lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// The requested topology name is not registered.
    UnknownTopology {
        /// The name that failed to resolve.
        name: String,
        /// Registered names (plus the parametric `fat_tree_<k>` form).
        known: Vec<String>,
    },
    /// The topology needs more clusters than the experiment has.
    TooFewClusters {
        /// Topology name.
        topology: &'static str,
        /// Clusters supplied.
        clusters: usize,
        /// Minimum required.
        min: usize,
    },
    /// A builder parameter is out of range.
    BadParameter {
        /// Topology name.
        topology: &'static str,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::UnknownTopology { name, known } => {
                write!(f, "unknown network topology {name:?}; known: {known:?}")
            }
            NetworkError::TooFewClusters {
                topology,
                clusters,
                min,
            } => write!(
                f,
                "topology {topology:?} needs at least {min} clusters, got {clusters}"
            ),
            NetworkError::BadParameter { topology, detail } => {
                write!(f, "bad parameter for topology {topology:?}: {detail}")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// A static network shape: links plus a route between every ordered
/// pair of distinct clusters (`route(c, c)` is empty — local access is
/// free).
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkTopology {
    name: String,
    clusters: usize,
    links: Vec<Link>,
    /// Route table indexed `src * clusters + dst`; empty on the
    /// diagonal.
    routes: Vec<Vec<LinkId>>,
    /// Per-cluster access link: the first wide-area hop out of the
    /// site, used to charge reconfiguration/redistribution traffic.
    access: Vec<LinkId>,
}

impl NetworkTopology {
    fn check_positive(topology: &'static str, what: &str, value: f64) -> Result<(), NetworkError> {
        if !(value.is_finite() && value > 0.0) {
            return Err(NetworkError::BadParameter {
                topology,
                detail: format!("{what} must be positive and finite, got {value}"),
            });
        }
        Ok(())
    }

    /// A single shared wide-area backbone: every inter-cluster route
    /// crosses the one `wan` link, so all concurrent transfers contend.
    pub fn flat_wan(
        clusters: usize,
        wan_gbps: f64,
        latency: SimDuration,
    ) -> Result<Self, NetworkError> {
        if clusters < 2 {
            return Err(NetworkError::TooFewClusters {
                topology: "flat_wan",
                clusters,
                min: 2,
            });
        }
        Self::check_positive("flat_wan", "wan_gbps", wan_gbps)?;
        let wan = LinkId(0);
        let links = vec![Link {
            name: "wan".to_string(),
            bandwidth_gbps: wan_gbps,
            latency,
        }];
        let mut routes = vec![Vec::new(); clusters * clusters];
        for s in 0..clusters {
            for d in 0..clusters {
                if s != d {
                    routes[s * clusters + d] = vec![wan];
                }
            }
        }
        Ok(NetworkTopology {
            name: format!("flat_wan_{clusters}"),
            clusters,
            links,
            routes,
            access: vec![wan; clusters],
        })
    }

    /// A star around a non-blocking core: each cluster has its own
    /// access link; the route between two clusters crosses both access
    /// links. `access_gbps[i]` is cluster `i`'s access capacity.
    pub fn star(
        name: &str,
        access_gbps: &[f64],
        latency: SimDuration,
    ) -> Result<Self, NetworkError> {
        let clusters = access_gbps.len();
        if clusters < 2 {
            return Err(NetworkError::TooFewClusters {
                topology: "star",
                clusters,
                min: 2,
            });
        }
        let mut links = Vec::with_capacity(clusters);
        for (i, &bw) in access_gbps.iter().enumerate() {
            Self::check_positive("star", "access_gbps", bw)?;
            links.push(Link {
                name: format!("access_{i}"),
                bandwidth_gbps: bw,
                latency,
            });
        }
        let mut routes = vec![Vec::new(); clusters * clusters];
        for s in 0..clusters {
            for d in 0..clusters {
                if s != d {
                    routes[s * clusters + d] = vec![LinkId(s as u32), LinkId(d as u32)];
                }
            }
        }
        Ok(NetworkTopology {
            name: name.to_string(),
            clusters,
            links,
            routes,
            access: (0..clusters).map(|i| LinkId(i as u32)).collect(),
        })
    }

    /// A star with one uniform access capacity per cluster.
    pub fn uniform_star(
        clusters: usize,
        access_gbps: f64,
        latency: SimDuration,
    ) -> Result<Self, NetworkError> {
        Self::star(
            &format!("star_{clusters}"),
            &vec![access_gbps; clusters],
            latency,
        )
    }

    /// Two-level hierarchy: clusters are grouped into groups of
    /// `group_size` (last group may be smaller). Intra-group routes
    /// cross the two access links; inter-group routes additionally
    /// cross both groups' (typically oversubscribed) uplinks. The core
    /// is non-blocking.
    pub fn hierarchical(
        clusters: usize,
        group_size: usize,
        access_gbps: f64,
        uplink_gbps: f64,
        latency: SimDuration,
    ) -> Result<Self, NetworkError> {
        if clusters < 2 {
            return Err(NetworkError::TooFewClusters {
                topology: "hierarchical",
                clusters,
                min: 2,
            });
        }
        if group_size == 0 {
            return Err(NetworkError::BadParameter {
                topology: "hierarchical",
                detail: "group_size must be nonzero".to_string(),
            });
        }
        Self::check_positive("hierarchical", "access_gbps", access_gbps)?;
        Self::check_positive("hierarchical", "uplink_gbps", uplink_gbps)?;
        let groups = clusters.div_ceil(group_size);
        let mut links = Vec::with_capacity(clusters + groups);
        for i in 0..clusters {
            links.push(Link {
                name: format!("access_{i}"),
                bandwidth_gbps: access_gbps,
                latency,
            });
        }
        for g in 0..groups {
            links.push(Link {
                name: format!("uplink_g{g}"),
                bandwidth_gbps: uplink_gbps,
                latency,
            });
        }
        let uplink = |g: usize| LinkId((clusters + g) as u32);
        let mut routes = vec![Vec::new(); clusters * clusters];
        for s in 0..clusters {
            for d in 0..clusters {
                if s == d {
                    continue;
                }
                let (gs, gd) = (s / group_size, d / group_size);
                let mut route = vec![LinkId(s as u32)];
                if gs != gd {
                    route.push(uplink(gs));
                    route.push(uplink(gd));
                }
                route.push(LinkId(d as u32));
                routes[s * clusters + d] = route;
            }
        }
        Ok(NetworkTopology {
            name: format!("hierarchical_{clusters}x{group_size}"),
            clusters,
            links,
            routes,
            access: (0..clusters).map(|i| LinkId(i as u32)).collect(),
        })
    }

    /// A folded-Clos (fat-tree) approximation with `k` pods over a
    /// non-blocking core: cluster `i` sits in pod `i % k` behind a
    /// `link_gbps` access link; each pod aggregates `k/2` core uplinks
    /// into one link of capacity `(k/2)·link_gbps`. Intra-pod routes
    /// cross the two access links; inter-pod routes additionally cross
    /// both pods' aggregated uplinks. (Per-switch ECMP fan-out is
    /// collapsed into the aggregate uplink — the standard simulation
    /// simplification; what survives is the k-scaled oversubscription
    /// behaviour that matters for contention.)
    pub fn fat_tree(
        clusters: usize,
        k: usize,
        link_gbps: f64,
        latency: SimDuration,
    ) -> Result<Self, NetworkError> {
        if clusters < 2 {
            return Err(NetworkError::TooFewClusters {
                topology: "fat_tree",
                clusters,
                min: 2,
            });
        }
        if k < 2 || !k.is_multiple_of(2) {
            return Err(NetworkError::BadParameter {
                topology: "fat_tree",
                detail: format!("k must be an even number >= 2, got {k}"),
            });
        }
        Self::check_positive("fat_tree", "link_gbps", link_gbps)?;
        let pods = k.min(clusters);
        let mut links = Vec::with_capacity(clusters + pods);
        for i in 0..clusters {
            links.push(Link {
                name: format!("edge_{i}"),
                bandwidth_gbps: link_gbps,
                latency,
            });
        }
        for p in 0..pods {
            links.push(Link {
                name: format!("pod_{p}_uplink"),
                bandwidth_gbps: (k as f64 / 2.0) * link_gbps,
                latency,
            });
        }
        let uplink = |p: usize| LinkId((clusters + p) as u32);
        let pod = |c: usize| c % pods;
        let mut routes = vec![Vec::new(); clusters * clusters];
        for s in 0..clusters {
            for d in 0..clusters {
                if s == d {
                    continue;
                }
                let mut route = vec![LinkId(s as u32)];
                if pod(s) != pod(d) {
                    route.push(uplink(pod(s)));
                    route.push(uplink(pod(d)));
                }
                route.push(LinkId(d as u32));
                routes[s * clusters + d] = route;
            }
        }
        Ok(NetworkTopology {
            name: format!("fat_tree_{k}"),
            clusters,
            links,
            routes,
            access: (0..clusters).map(|i| LinkId(i as u32)).collect(),
        })
    }

    /// The DAS-3 preset (Table I of the paper): a star over SURFnet
    /// where the Myri-10G sites get a 10 Gb/s light-path access link
    /// and Delft (Ethernet only) gets 1 Gb/s, all at 1 ms latency.
    pub fn das3(clusters: usize) -> Result<Self, NetworkError> {
        let das = das3_clusters();
        if clusters != das.len() {
            return Err(NetworkError::BadParameter {
                topology: "das3",
                detail: format!(
                    "the das3 preset is fixed at {} clusters, got {clusters}",
                    das.len()
                ),
            });
        }
        let eth_only = Interconnect::EthernetOnly.label();
        let access: Vec<f64> = das
            .clusters()
            .map(|c| {
                if c.spec().interconnect == eth_only {
                    1.0
                } else {
                    10.0
                }
            })
            .collect();
        let mut topo = Self::star("das3", &access, SimDuration::from_millis(1))?;
        for (i, (link, cluster)) in topo.links.iter_mut().zip(das.clusters()).enumerate() {
            link.name = format!("surfnet_{i}_{}", cluster.spec().interconnect);
        }
        Ok(topo)
    }

    /// The topology's name (as rendered in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of clusters the topology spans.
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// The link table.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The route from `src` to `dst`; empty when `src == dst`.
    pub fn route(&self, src: ClusterId, dst: ClusterId) -> &[LinkId] {
        &self.routes[src.index() * self.clusters + dst.index()]
    }

    /// The cluster's access link (first wide-area hop), used to charge
    /// redistribution traffic that stays "at" the site.
    pub fn access_link(&self, cluster: ClusterId) -> LinkId {
        self.access[cluster.index()]
    }

    /// Uncontended bottleneck bandwidth of the `src → dst` route in
    /// Gb/s; `f64::INFINITY` for local access.
    pub fn path_bandwidth_gbps(&self, src: ClusterId, dst: ClusterId) -> f64 {
        self.route(src, dst)
            .iter()
            .map(|l| self.links[l.index()].bandwidth_gbps)
            .fold(f64::INFINITY, f64::min)
    }

    /// Summed one-way latency of the `src → dst` route.
    pub fn path_latency(&self, src: ClusterId, dst: ClusterId) -> SimDuration {
        self.route(src, dst)
            .iter()
            .fold(SimDuration::ZERO, |acc, l| {
                acc + self.links[l.index()].latency
            })
    }
}

/// Constructor stored in the [`TopologyRegistry`]: builds a topology
/// for a given cluster count.
pub type TopologyCtor = Arc<dyn Fn(usize) -> Result<NetworkTopology, NetworkError> + Send + Sync>;

/// Name-indexed registry of network topology builders — the fourth
/// registry twin after placements, workloads and autoscalers. Lookup
/// additionally understands the parametric `fat_tree_<k>` form.
pub struct TopologyRegistry {
    ctors: RwLock<BTreeMap<String, TopologyCtor>>,
}

impl TopologyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        TopologyRegistry {
            ctors: RwLock::new(BTreeMap::new()),
        }
    }

    /// A registry preloaded with the built-in topologies:
    ///
    /// | name | shape |
    /// |------|-------|
    /// | `flat_wan` | one shared 1 Gb/s backbone |
    /// | `star` | per-cluster 10 Gb/s access, non-blocking core |
    /// | `hierarchical` | groups of 2; 10 Gb/s access, 5 Gb/s uplinks |
    /// | `das3` | Table-I SURFnet star (10 Gb/s Myri-10G, 1 Gb/s Delft) |
    /// | `fat_tree_<k>` | parametric k-pod fat tree, 10 Gb/s edges |
    pub fn with_defaults() -> Self {
        let reg = Self::new();
        reg.register("flat_wan", |n| {
            NetworkTopology::flat_wan(n, 1.0, SimDuration::from_millis(1))
        });
        reg.register("star", |n| {
            NetworkTopology::uniform_star(n, 10.0, SimDuration::from_millis(1))
        });
        reg.register("hierarchical", |n| {
            NetworkTopology::hierarchical(n, 2, 10.0, 5.0, SimDuration::from_millis(1))
        });
        reg.register("das3", NetworkTopology::das3);
        reg
    }

    /// Registers (or replaces — latest wins) a builder under `name`.
    pub fn register(
        &self,
        name: &str,
        ctor: impl Fn(usize) -> Result<NetworkTopology, NetworkError> + Send + Sync + 'static,
    ) {
        self.ctors
            .write()
            .expect("topology registry poisoned")
            .insert(name.to_string(), Arc::new(ctor));
    }

    /// Registered names (sorted), plus the parametric `fat_tree_<k>`
    /// form.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .ctors
            .read()
            .expect("topology registry poisoned")
            .keys()
            .cloned()
            .collect();
        names.push("fat_tree_<k>".to_string());
        names.sort();
        names
    }

    /// Builds the named topology for `clusters` clusters. `fat_tree_<k>`
    /// names are parsed parametrically (k even, ≥ 2).
    pub fn resolve(&self, name: &str, clusters: usize) -> Result<NetworkTopology, NetworkError> {
        let ctor = self
            .ctors
            .read()
            .expect("topology registry poisoned")
            .get(name)
            .cloned();
        if let Some(ctor) = ctor {
            return ctor(clusters);
        }
        if let Some(k) = name.strip_prefix("fat_tree_") {
            if let Ok(k) = k.parse::<usize>() {
                return NetworkTopology::fat_tree(clusters, k, 10.0, SimDuration::from_millis(1));
            }
        }
        Err(NetworkError::UnknownTopology {
            name: name.to_string(),
            known: self.names(),
        })
    }
}

impl Default for TopologyRegistry {
    fn default() -> Self {
        Self::with_defaults()
    }
}

/// The process-wide registry (lazily initialised with the defaults).
pub fn global_topologies() -> &'static TopologyRegistry {
    static GLOBAL: OnceLock<TopologyRegistry> = OnceLock::new();
    GLOBAL.get_or_init(TopologyRegistry::with_defaults)
}

/// A rescheduled completion estimate: the flow's completion event must
/// be re-armed at `eta` with generation `gen`; any previously scheduled
/// event for the flow carries a stale generation and must be ignored.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSchedule {
    /// Flow id.
    pub flow: u64,
    /// Generation the rescheduled event must carry.
    pub gen: u64,
    /// Absolute completion estimate under the current fair shares.
    pub eta: SimTime,
}

/// Returned by [`FlowNet::complete`] for a successfully closed flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowDone {
    /// Bytes moved, in gigabytes.
    pub size_gb: f64,
    /// When the flow was opened.
    pub opened_at: SimTime,
}

#[derive(Debug, Clone)]
struct Flow {
    route: Vec<LinkId>,
    size_gb: f64,
    remaining_gb: f64,
    rate_gbps: f64,
    gen: u64,
    latency: SimDuration,
    opened_at: SimTime,
}

/// Runtime fair-share state over a [`NetworkTopology`]: tracks active
/// flows, assigns max-min fair rates, and re-estimates completion
/// times whenever the flow set changes.
#[derive(Debug, Clone)]
pub struct FlowNet {
    topo: NetworkTopology,
    flows: BTreeMap<u64, Flow>,
    next_flow: u64,
    /// Concurrent flows per link.
    link_load: Vec<u32>,
    /// Accumulated busy time (≥ 1 active flow) per link.
    busy_s: Vec<f64>,
    last_update: SimTime,
}

impl FlowNet {
    /// A fresh runtime over `topo` with no active flows.
    pub fn new(topo: NetworkTopology) -> Self {
        let n = topo.links().len();
        FlowNet {
            topo,
            flows: BTreeMap::new(),
            next_flow: 0,
            link_load: vec![0; n],
            busy_s: vec![0.0; n],
            last_update: SimTime::ZERO,
        }
    }

    /// The static topology.
    pub fn topology(&self) -> &NetworkTopology {
        &self.topo
    }

    /// Number of active flows.
    pub fn active(&self) -> usize {
        self.flows.len()
    }

    /// The current fair rate of a flow, in Gb/s.
    pub fn rate_gbps(&self, flow: u64) -> Option<f64> {
        self.flows.get(&flow).map(|f| f.rate_gbps)
    }

    /// Advances flow progress and link busy-time to `now` under the
    /// current rates. Called internally by `open`/`complete`; callers
    /// only need it directly at finalisation time.
    pub fn advance(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_update).as_secs_f64();
        if dt > 0.0 {
            for f in self.flows.values_mut() {
                f.remaining_gb = (f.remaining_gb - f.rate_gbps * dt / 8.0).max(0.0);
            }
            for (i, &load) in self.link_load.iter().enumerate() {
                if load > 0 {
                    self.busy_s[i] += dt;
                }
            }
        }
        self.last_update = now;
    }

    /// Opens a transfer of `size_gb` along the `src → dst` route and
    /// returns its flow id plus the full set of completion reschedules
    /// (including the new flow's). Panics if `src == dst` — local
    /// access never opens a flow.
    pub fn open(
        &mut self,
        now: SimTime,
        src: ClusterId,
        dst: ClusterId,
        size_gb: f64,
    ) -> (u64, Vec<FlowSchedule>) {
        let route = self.topo.route(src, dst).to_vec();
        assert!(
            !route.is_empty(),
            "cannot open a flow from {src:?} to itself"
        );
        let latency = self.topo.path_latency(src, dst);
        self.open_on(now, route, latency, size_gb)
    }

    /// Opens a transfer on an explicit link sequence (used for
    /// redistribution traffic charged to a site's access link).
    pub fn open_on(
        &mut self,
        now: SimTime,
        route: Vec<LinkId>,
        latency: SimDuration,
        size_gb: f64,
    ) -> (u64, Vec<FlowSchedule>) {
        assert!(!route.is_empty(), "a flow must cross at least one link");
        self.advance(now);
        let id = self.next_flow;
        self.next_flow += 1;
        for l in &route {
            self.link_load[l.index()] += 1;
        }
        self.flows.insert(
            id,
            Flow {
                route,
                size_gb: size_gb.max(0.0),
                remaining_gb: size_gb.max(0.0),
                rate_gbps: 0.0,
                gen: 0,
                latency,
                opened_at: now,
            },
        );
        self.recompute();
        (id, self.reschedules(now))
    }

    /// Closes a flow on its completion event. Returns `None` when the
    /// event is stale (the flow was rescheduled since, or already
    /// closed); otherwise the flow's summary plus the reschedules for
    /// every remaining flow (their shares just grew).
    pub fn complete(
        &mut self,
        now: SimTime,
        flow: u64,
        gen: u64,
    ) -> Option<(FlowDone, Vec<FlowSchedule>)> {
        if self.flows.get(&flow).is_none_or(|f| f.gen != gen) {
            return None;
        }
        self.advance(now);
        let f = self.flows.remove(&flow).expect("flow checked above");
        for l in &f.route {
            self.link_load[l.index()] -= 1;
        }
        self.recompute();
        let done = FlowDone {
            size_gb: f.size_gb,
            opened_at: f.opened_at,
        };
        Some((done, self.reschedules(now)))
    }

    /// Max-min fair allocation by progressive filling: repeatedly find
    /// the bottleneck link (smallest residual capacity per unfixed
    /// flow; ties broken by lowest link index), fix every flow crossing
    /// it at that share, subtract, repeat. Deterministic because flows
    /// iterate in `BTreeMap` (id) order and links by index.
    fn recompute(&mut self) {
        let nl = self.topo.links().len();
        let mut residual: Vec<f64> = self.topo.links().iter().map(|l| l.bandwidth_gbps).collect();
        let mut count: Vec<u32> = vec![0; nl];
        for f in self.flows.values() {
            for l in &f.route {
                count[l.index()] += 1;
            }
        }
        let mut unfixed: Vec<u64> = self.flows.keys().copied().collect();
        while !unfixed.is_empty() {
            let mut best: Option<(f64, usize)> = None;
            for (i, &c) in count.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let share = (residual[i] / c as f64).max(0.0);
                if best.is_none_or(|(s, _)| share < s) {
                    best = Some((share, i));
                }
            }
            let Some((share, bottleneck)) = best else {
                break;
            };
            let mut still = Vec::with_capacity(unfixed.len());
            for id in unfixed {
                let f = self.flows.get_mut(&id).expect("unfixed flow exists");
                if f.route.iter().any(|l| l.index() == bottleneck) {
                    f.rate_gbps = share;
                    for l in &f.route {
                        residual[l.index()] -= share;
                        count[l.index()] -= 1;
                    }
                } else {
                    still.push(id);
                }
            }
            unfixed = still;
        }
    }

    /// Fresh completion estimates for every flow whose ETA changed:
    /// bumps the flow generation and computes `now + drain + latency`.
    /// Flows already fully drained keep their scheduled event (their
    /// ETA is a constant latency tail that no rate change can move).
    fn reschedules(&mut self, now: SimTime) -> Vec<FlowSchedule> {
        let mut out = Vec::with_capacity(self.flows.len());
        for (&id, f) in self.flows.iter_mut() {
            if f.remaining_gb <= EPS_GB && f.gen > 0 {
                continue;
            }
            f.gen += 1;
            let drain_s = if f.remaining_gb <= EPS_GB {
                0.0
            } else {
                debug_assert!(f.rate_gbps > 0.0, "active flow with zero rate");
                f.remaining_gb * 8.0 / f.rate_gbps
            };
            let eta = now + SimDuration::from_secs_f64(drain_s + f.latency.as_secs_f64());
            out.push(FlowSchedule {
                flow: id,
                gen: f.gen,
                eta,
            });
        }
        out
    }

    /// Total accumulated link-busy seconds (over all links), up to the
    /// last `advance`.
    pub fn busy_seconds(&self) -> f64 {
        self.busy_s.iter().sum()
    }

    /// Number of links in the topology.
    pub fn link_count(&self) -> usize {
        self.topo.links().len()
    }

    /// Captures the runtime's dynamic state (open flows in id order,
    /// per-link busy time, clocks and counters), for checkpointing. The
    /// topology is configuration and travels separately; per-link flow
    /// counts are derivable from the flows and are rebuilt on restore.
    pub fn capture_state(&self) -> FlowNetState {
        FlowNetState {
            flows: self
                .flows
                .iter()
                .map(|(&id, f)| FlowState {
                    id,
                    route: f.route.clone(),
                    size_gb: f.size_gb,
                    remaining_gb: f.remaining_gb,
                    rate_gbps: f.rate_gbps,
                    gen: f.gen,
                    latency: f.latency,
                    opened_at: f.opened_at,
                })
                .collect(),
            next_flow: self.next_flow,
            busy_s: self.busy_s.clone(),
            last_update: self.last_update,
        }
    }

    /// Overwrites the runtime's dynamic state with a captured one; fair
    /// shares and link loads are recomputed from the restored flow set,
    /// so subsequent opens/completions continue exactly. Fails when a
    /// flow id or link index is out of range for this topology, or the
    /// busy-time vector has the wrong length.
    pub fn restore_state(&mut self, state: FlowNetState) -> Result<(), String> {
        let nl = self.topo.links().len();
        if state.busy_s.len() != nl {
            return Err(format!(
                "busy_s has {} entries, topology has {nl} links",
                state.busy_s.len()
            ));
        }
        for f in &state.flows {
            if f.id >= state.next_flow {
                return Err(format!(
                    "flow id {} not below next_flow {}",
                    f.id, state.next_flow
                ));
            }
            if f.route.is_empty() {
                return Err(format!("flow {} has an empty route", f.id));
            }
            if let Some(l) = f.route.iter().find(|l| l.index() >= nl) {
                return Err(format!("flow {} crosses unknown link {:?}", f.id, l));
            }
        }
        self.flows = state
            .flows
            .into_iter()
            .map(|f| {
                (
                    f.id,
                    Flow {
                        route: f.route,
                        size_gb: f.size_gb,
                        remaining_gb: f.remaining_gb,
                        rate_gbps: f.rate_gbps,
                        gen: f.gen,
                        latency: f.latency,
                        opened_at: f.opened_at,
                    },
                )
            })
            .collect();
        self.next_flow = state.next_flow;
        self.busy_s = state.busy_s;
        self.last_update = state.last_update;
        self.link_load = vec![0; nl];
        for f in self.flows.values() {
            for l in &f.route {
                self.link_load[l.index()] += 1;
            }
        }
        self.recompute();
        Ok(())
    }
}

/// One captured open flow (see [`FlowNetState`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FlowState {
    /// Flow id.
    pub id: u64,
    /// Links the flow crosses.
    pub route: Vec<LinkId>,
    /// Total transfer size in gigabytes.
    pub size_gb: f64,
    /// Gigabytes still to drain (as of `last_update`).
    pub remaining_gb: f64,
    /// Fair rate at capture time, in Gb/s.
    pub rate_gbps: f64,
    /// Completion-event generation stamp.
    pub gen: u64,
    /// Summed route latency (serial tail).
    pub latency: SimDuration,
    /// When the flow was opened.
    pub opened_at: SimTime,
}

/// A full capture of a [`FlowNet`]'s dynamic state (the topology is
/// configuration, not state; link loads are derived from the flows).
#[derive(Debug, Clone, PartialEq)]
pub struct FlowNetState {
    /// Open flows in ascending id order.
    pub flows: Vec<FlowState>,
    /// The next flow id to hand out.
    pub next_flow: u64,
    /// Accumulated busy seconds per link.
    pub busy_s: Vec<f64>,
    /// Clock of the last progress advance.
    pub last_update: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn flat_wan_routes_all_cross_the_backbone() {
        let t = NetworkTopology::flat_wan(3, 1.0, SimDuration::ZERO).unwrap();
        assert_eq!(t.links().len(), 1);
        assert_eq!(t.route(ClusterId(0), ClusterId(2)), &[LinkId(0)]);
        assert!(t.route(ClusterId(1), ClusterId(1)).is_empty());
        assert_eq!(t.path_bandwidth_gbps(ClusterId(0), ClusterId(1)), 1.0);
    }

    #[test]
    fn star_bottleneck_is_the_slower_access_link() {
        let t = NetworkTopology::star("t", &[10.0, 1.0, 10.0], SimDuration::ZERO).unwrap();
        assert_eq!(t.path_bandwidth_gbps(ClusterId(0), ClusterId(1)), 1.0);
        assert_eq!(t.path_bandwidth_gbps(ClusterId(0), ClusterId(2)), 10.0);
    }

    #[test]
    fn fat_tree_inter_pod_routes_cross_uplinks() {
        let t = NetworkTopology::fat_tree(5, 4, 10.0, SimDuration::ZERO).unwrap();
        // Clusters 0 and 4 share pod 0 (4 % 4 == 0): no uplinks.
        assert_eq!(t.route(ClusterId(0), ClusterId(4)).len(), 2);
        // Clusters 0 and 1 are in different pods: 4 hops.
        assert_eq!(t.route(ClusterId(0), ClusterId(1)).len(), 4);
        // Pod uplink capacity is (k/2)·link = 20 Gb/s; edge is 10.
        assert_eq!(t.path_bandwidth_gbps(ClusterId(0), ClusterId(1)), 10.0);
    }

    #[test]
    fn fat_tree_rejects_odd_k() {
        assert!(matches!(
            NetworkTopology::fat_tree(4, 3, 10.0, SimDuration::ZERO),
            Err(NetworkError::BadParameter { .. })
        ));
    }

    #[test]
    fn das3_preset_matches_table_one() {
        let t = NetworkTopology::das3(5).unwrap();
        assert_eq!(t.clusters(), 5);
        // Delft (index 2) is the Ethernet-only site.
        assert_eq!(t.links()[2].bandwidth_gbps, 1.0);
        assert_eq!(t.links()[0].bandwidth_gbps, 10.0);
        assert!(t.links()[2].name.contains("1/10 GbE"));
        assert!(NetworkTopology::das3(4).is_err());
    }

    #[test]
    fn registry_resolves_builtins_and_parametric_fat_trees() {
        let reg = TopologyRegistry::with_defaults();
        assert_eq!(reg.resolve("flat_wan", 5).unwrap().links().len(), 1);
        assert_eq!(reg.resolve("das3", 5).unwrap().clusters(), 5);
        let ft = reg.resolve("fat_tree_16", 5).unwrap();
        assert_eq!(ft.name(), "fat_tree_16");
        let err = reg.resolve("nope", 5).unwrap_err();
        match err {
            NetworkError::UnknownTopology { known, .. } => {
                assert!(known.contains(&"das3".to_string()));
                assert!(known.contains(&"fat_tree_<k>".to_string()));
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn lone_flow_gets_the_bottleneck_bandwidth() {
        let topo = NetworkTopology::star("t", &[10.0, 1.0], SimDuration::ZERO).unwrap();
        let mut net = FlowNet::new(topo);
        // 10 GB over a 1 Gb/s bottleneck: 80 s.
        let (id, scheds) = net.open(secs(0), ClusterId(0), ClusterId(1), 10.0);
        assert_eq!(net.rate_gbps(id), Some(1.0));
        assert_eq!(scheds.len(), 1);
        assert_eq!(scheds[0].eta, secs(80));
        let (done, rest) = net.complete(secs(80), id, scheds[0].gen).unwrap();
        assert_eq!(done.size_gb, 10.0);
        assert!(rest.is_empty());
        assert_eq!(net.active(), 0);
    }

    #[test]
    fn concurrent_flows_share_max_min_fairly() {
        // Two flows into cluster 1 (1 Gb/s access): 0.5 Gb/s each.
        let topo = NetworkTopology::star("t", &[10.0, 1.0, 10.0], SimDuration::ZERO).unwrap();
        let mut net = FlowNet::new(topo);
        let (a, _) = net.open(secs(0), ClusterId(0), ClusterId(1), 10.0);
        let (b, scheds) = net.open(secs(0), ClusterId(2), ClusterId(1), 10.0);
        assert_eq!(net.rate_gbps(a), Some(0.5));
        assert_eq!(net.rate_gbps(b), Some(0.5));
        // Both flows rescheduled to the halved rate: 160 s.
        assert_eq!(scheds.len(), 2);
        assert!(scheds.iter().all(|s| s.eta == secs(160)));
        // Completing one at 160 s frees the other... which is also done.
        let sched_a = scheds.iter().find(|s| s.flow == a).unwrap();
        let (_, rest) = net.complete(secs(160), a, sched_a.gen).unwrap();
        // Flow b has fully drained: its pending event stays valid.
        assert!(rest.is_empty());
    }

    #[test]
    fn mid_flight_arrival_stretches_the_eta() {
        let topo = NetworkTopology::flat_wan(2, 8.0, SimDuration::ZERO).unwrap();
        let mut net = FlowNet::new(topo);
        // 80 GB at 8 Gb/s: would finish at t=80.
        let (a, s1) = net.open(secs(0), ClusterId(0), ClusterId(1), 80.0);
        assert_eq!(s1[0].eta, secs(80));
        // At t=40 (40 GB left), a second flow halves the rate: 40 GB at
        // 4 Gb/s = 80 s more → ETA 120.
        let (_b, s2) = net.open(secs(40), ClusterId(1), ClusterId(0), 80.0);
        let re_a = s2.iter().find(|s| s.flow == a).unwrap();
        assert_eq!(re_a.eta, secs(120));
        // The original t=80 event is stale by generation.
        assert!(net.complete(secs(80), a, s1[0].gen).is_none());
        assert!(net.complete(secs(120), a, re_a.gen).is_some());
    }

    #[test]
    fn latency_is_a_constant_serial_tail() {
        let topo = NetworkTopology::star("t", &[8.0, 8.0], SimDuration::from_millis(500)).unwrap();
        let mut net = FlowNet::new(topo);
        // 8 GB at 8 Gb/s = 8 s drain + 2 × 0.5 s latency = 9 s.
        let (_, scheds) = net.open(secs(0), ClusterId(0), ClusterId(1), 8.0);
        assert_eq!(scheds[0].eta, secs(9));
    }

    #[test]
    fn zero_size_flow_completes_after_latency_only() {
        let topo = NetworkTopology::star("t", &[8.0, 8.0], SimDuration::from_millis(1)).unwrap();
        let mut net = FlowNet::new(topo);
        let (id, scheds) = net.open(secs(0), ClusterId(0), ClusterId(1), 0.0);
        assert_eq!(scheds.len(), 1);
        assert_eq!(scheds[0].eta, SimTime::from_millis(2));
        assert!(net.complete(scheds[0].eta, id, scheds[0].gen).is_some());
    }

    #[test]
    fn capture_restore_resumes_flows_and_rejects_corrupt_state() {
        let topo = NetworkTopology::flat_wan(2, 8.0, SimDuration::ZERO).unwrap();
        let mut net = FlowNet::new(topo.clone());
        let (a, s1) = net.open(secs(0), ClusterId(0), ClusterId(1), 80.0);
        let (_b, s2) = net.open(secs(40), ClusterId(1), ClusterId(0), 80.0);

        let state = net.capture_state();
        let mut fresh = FlowNet::new(topo.clone());
        fresh.restore_state(state.clone()).unwrap();
        assert_eq!(fresh.capture_state(), state, "restore is a fixed point");
        assert_eq!(fresh.rate_gbps(a), net.rate_gbps(a));

        // Both runtimes evolve identically from here.
        let re_a = s2.iter().find(|s| s.flow == a).unwrap();
        assert!(net.complete(secs(80), a, s1[0].gen).is_none());
        assert!(fresh.complete(secs(80), a, s1[0].gen).is_none());
        let (d1, r1) = net.complete(re_a.eta, a, re_a.gen).unwrap();
        let (d2, r2) = fresh.complete(re_a.eta, a, re_a.gen).unwrap();
        assert_eq!(d1, d2);
        assert_eq!(r1, r2);
        assert_eq!(net.capture_state(), fresh.capture_state());

        // Corruption is rejected, never a panic.
        let mut bad = state.clone();
        bad.busy_s.push(0.0);
        assert!(FlowNet::new(topo.clone()).restore_state(bad).is_err());
        let mut bad = state.clone();
        bad.flows[0].route = vec![LinkId(99)];
        assert!(FlowNet::new(topo.clone()).restore_state(bad).is_err());
        let mut bad = state.clone();
        bad.next_flow = 0;
        assert!(FlowNet::new(topo).restore_state(bad).is_err());
    }

    #[test]
    fn busy_time_tracks_occupied_links() {
        let topo = NetworkTopology::flat_wan(2, 8.0, SimDuration::ZERO).unwrap();
        let mut net = FlowNet::new(topo);
        let (id, s) = net.open(secs(10), ClusterId(0), ClusterId(1), 80.0);
        net.complete(s[0].eta, id, s[0].gen).unwrap();
        net.advance(secs(200));
        // Busy from t=10 to t=90 only.
        assert!((net.busy_seconds() - 80.0).abs() < 1e-9);
    }
}
