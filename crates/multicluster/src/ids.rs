//! Identifier newtypes for the substrate.
//!
//! Newtypes keep cluster indices, node indices and allocation handles
//! from being mixed up at compile time; all are `Copy` and order by the
//! underlying integer, so they can key `BTreeMap`s deterministically.

use std::fmt;

/// Index of a cluster within a [`crate::Multicluster`].
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct ClusterId(pub u16);

/// Index of a node within its cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Handle of a live allocation on a cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AllocId(pub u64);

impl fmt::Debug for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for AllocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "alloc#{}", self.0)
    }
}

impl ClusterId {
    /// The cluster's position as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_compactly() {
        assert_eq!(format!("{:?}", ClusterId(3)), "C3");
        assert_eq!(format!("{:?}", NodeId(12)), "n12");
        assert_eq!(format!("{:?}", AllocId(7)), "alloc#7");
    }

    #[test]
    fn ordering_follows_integers() {
        assert!(ClusterId(1) < ClusterId(2));
        assert!(AllocId(9) < AllocId(10));
    }
}
