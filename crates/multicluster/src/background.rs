//! Background (local-user) load model.
//!
//! On DAS-3 "it is common that some of the users bypass the
//! multicluster-level scheduler" (Section III): they submit straight to
//! SGE. During the paper's experiments this background activity was light
//! ("does not disturb the measures"), but the scheduler design explicitly
//! defends against it — the KIS poll and the reserve threshold exist for
//! this reason — so the reproduction includes a configurable stochastic
//! background workload and an ablation sweep over its intensity.

use simcore::dist::{Distribution, Exponential, LogNormal};
use simcore::{SimDuration, SimRng};

/// Parameters of one cluster's background load.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BackgroundLoad {
    /// Mean inter-arrival time of local jobs (exponential); `None`
    /// disables background load entirely.
    pub mean_interarrival: Option<SimDuration>,
    /// Mean service time of a local job (log-normal, CV 1.0 — typical of
    /// cluster workload fits).
    pub mean_duration: SimDuration,
    /// Minimum and maximum size (nodes) of a local job; sampled
    /// uniformly.
    pub size_range: (u32, u32),
    /// When set, the inter-arrival time is rescaled per cluster so the
    /// *steady-state occupancy* is this fraction of the cluster's
    /// capacity (by Little's law: occupancy = size · duration / gap).
    /// This models DAS-3's "activity of concurrent users", which scales
    /// with cluster size.
    pub occupancy_fraction: Option<f64>,
}

impl BackgroundLoad {
    /// No background load.
    pub fn none() -> Self {
        BackgroundLoad {
            mean_interarrival: None,
            mean_duration: SimDuration::from_secs(300),
            size_range: (1, 4),
            occupancy_fraction: None,
        }
    }

    /// A light trickle of small local jobs.
    pub fn light() -> Self {
        BackgroundLoad {
            mean_interarrival: Some(SimDuration::from_secs(600)),
            mean_duration: SimDuration::from_secs(300),
            size_range: (1, 4),
            occupancy_fraction: None,
        }
    }

    /// Heavy local activity, for the resilience ablation.
    pub fn heavy() -> Self {
        BackgroundLoad {
            mean_interarrival: Some(SimDuration::from_secs(90)),
            mean_duration: SimDuration::from_secs(600),
            size_range: (2, 16),
            occupancy_fraction: None,
        }
    }

    /// The "activity of concurrent users" of the paper's testbed: local
    /// jobs keeping roughly `fraction` of every cluster busy on average.
    pub fn concurrent_users(fraction: f64) -> Self {
        assert!((0.0..1.0).contains(&fraction), "fraction must be in [0, 1)");
        BackgroundLoad {
            mean_interarrival: Some(SimDuration::from_secs(120)), // fallback only
            mean_duration: SimDuration::from_secs(300),
            size_range: (1, 8),
            occupancy_fraction: Some(fraction),
        }
    }

    /// True when the model generates any jobs at all.
    pub fn is_active(&self) -> bool {
        self.mean_interarrival.is_some()
    }

    /// Draws the next inter-arrival gap; `None` when disabled.
    pub fn sample_interarrival(&self, rng: &mut SimRng) -> Option<SimDuration> {
        let mean = self.mean_interarrival?;
        let d = Exponential::with_mean(mean.as_secs_f64().max(1e-3));
        Some(SimDuration::from_secs_f64(d.sample(rng)))
    }

    /// Draws the next inter-arrival gap for a cluster of `capacity`
    /// nodes, honouring `occupancy_fraction` when set.
    pub fn sample_interarrival_for(&self, rng: &mut SimRng, capacity: u32) -> Option<SimDuration> {
        let Some(frac) = self.occupancy_fraction else {
            return self.sample_interarrival(rng);
        };
        self.mean_interarrival?;
        let (lo, hi) = self.size_range;
        let mean_size = 0.5 * (lo + hi) as f64;
        let target = frac * capacity as f64;
        if target < 1e-9 {
            return None;
        }
        // Little's law: occupancy = mean_size * mean_duration / gap.
        let gap = mean_size * self.mean_duration.as_secs_f64() / target;
        let d = Exponential::with_mean(gap.max(1e-3));
        Some(SimDuration::from_secs_f64(d.sample(rng)))
    }

    /// Draws a size and duration for one local job.
    pub fn sample_job(&self, rng: &mut SimRng) -> BackgroundSample {
        let (lo, hi) = self.size_range;
        let size = rng.range_u64(lo as u64, hi.max(lo) as u64) as u32;
        let dur = LogNormal::with_mean_cv(self.mean_duration.as_secs_f64().max(1e-3), 1.0);
        BackgroundSample {
            size,
            duration: SimDuration::from_secs_f64(dur.sample(rng).max(1.0)),
        }
    }
}

/// One sampled background job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackgroundSample {
    /// Nodes requested.
    pub size: u32,
    /// Service time.
    pub duration: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_generates_nothing() {
        let bg = BackgroundLoad::none();
        let mut rng = SimRng::seed_from_u64(1);
        assert!(!bg.is_active());
        assert_eq!(bg.sample_interarrival(&mut rng), None);
    }

    #[test]
    fn sizes_stay_in_range() {
        let bg = BackgroundLoad::heavy();
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..1000 {
            let j = bg.sample_job(&mut rng);
            assert!((2..=16).contains(&j.size));
            assert!(j.duration > SimDuration::ZERO);
        }
    }

    #[test]
    fn interarrival_mean_is_roughly_right() {
        let bg = BackgroundLoad::light();
        let mut rng = SimRng::seed_from_u64(3);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| bg.sample_interarrival(&mut rng).unwrap().as_secs_f64())
            .sum();
        let mean = total / n as f64;
        assert!((mean - 600.0).abs() < 15.0, "mean {mean}");
    }

    #[test]
    fn concurrent_users_hit_target_occupancy() {
        // Little's law check: mean(size)·mean(duration)/mean(gap) should
        // approximate fraction·capacity.
        let bg = BackgroundLoad::concurrent_users(0.25);
        let mut rng = SimRng::seed_from_u64(9);
        let capacity = 68;
        let n = 30_000;
        let mean_gap: f64 = (0..n)
            .map(|_| {
                bg.sample_interarrival_for(&mut rng, capacity)
                    .unwrap()
                    .as_secs_f64()
            })
            .sum::<f64>()
            / n as f64;
        let mean_size = 4.5; // uniform 1..=8
        let occupancy = mean_size * 300.0 / mean_gap;
        let target = 0.25 * capacity as f64;
        assert!(
            (occupancy - target).abs() / target < 0.05,
            "occupancy {occupancy} vs {target}"
        );
    }

    #[test]
    fn occupancy_scales_gap_with_capacity() {
        let bg = BackgroundLoad::concurrent_users(0.2);
        let mut rng = SimRng::seed_from_u64(10);
        let n = 20_000;
        let mean = |rng: &mut SimRng, cap: u32| {
            (0..n)
                .map(|_| bg.sample_interarrival_for(rng, cap).unwrap().as_secs_f64())
                .sum::<f64>()
                / n as f64
        };
        let big = mean(&mut rng, 85);
        let small = mean(&mut rng, 32);
        assert!(
            small > big * 2.0,
            "small clusters see fewer local jobs: {small} vs {big}"
        );
    }

    #[test]
    fn duration_mean_is_roughly_right() {
        let bg = BackgroundLoad::light();
        let mut rng = SimRng::seed_from_u64(4);
        let n = 40_000;
        let total: f64 = (0..n)
            .map(|_| bg.sample_job(&mut rng).duration.as_secs_f64())
            .sum();
        let mean = total / n as f64;
        assert!((mean - 300.0).abs() < 10.0, "mean {mean}");
    }
}
