//! SGE-like local resource manager.
//!
//! Each DAS-3 cluster runs the Sun Grid Engine as its local resource
//! manager, "configured to run applications on the nodes in an exclusive
//! fashion, i.e., in space-shared mode" (Section VI-B). Local users
//! submit directly to SGE, *bypassing* KOALA — the paper's motivation for
//! making the scheduler poll the information service rather than trust
//! its own bookkeeping.
//!
//! The model here is deliberately simple (plain FIFO, no backfilling):
//! the experiments only need background jobs to occupy nodes for
//! stochastic periods, and a FIFO queue is SGE's default behaviour for a
//! single queue without priority tweaks.

use std::collections::VecDeque;

use simcore::{SimDuration, SimTime};

use crate::cluster::{AllocOwner, Cluster};
use crate::ids::AllocId;

/// Identifier of a local (background) job within one LRM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocalJobId(pub u64);

/// A local job: fixed size, fixed service demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalJob {
    /// LRM-local identifier.
    pub id: LocalJobId,
    /// Nodes requested.
    pub size: u32,
    /// Service time once started.
    pub duration: SimDuration,
    /// Submission instant (for queue-wait statistics).
    pub submitted: SimTime,
}

/// What happened to a submitted local job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Started immediately; the caller should schedule its completion.
    Started(AllocId),
    /// Queued behind insufficient free nodes.
    Queued,
    /// Rejected: requests more nodes than the cluster will ever have.
    Impossible,
}

/// The local resource manager wrapping one [`Cluster`].
///
/// KOALA's claims go straight to the cluster (the scheduler holds a
/// mutable reference); local jobs go through this queue. Only the LRM
/// starts queued local jobs, which it does in FIFO order whenever nodes
/// free up ([`Lrm::start_queued`]).
#[derive(Debug, Clone)]
pub struct Lrm {
    cluster: Cluster,
    queue: VecDeque<LocalJob>,
    next_local: u64,
    /// Completed local jobs (count), for reporting.
    completed_local: u64,
}

impl Lrm {
    /// Wraps a cluster.
    pub fn new(cluster: Cluster) -> Self {
        Lrm {
            cluster,
            queue: VecDeque::new(),
            next_local: 0,
            completed_local: 0,
        }
    }

    /// Immutable access to the underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable access to the underlying cluster (used by the multicluster
    /// scheduler for its own claims — the "KOALA bypasses the local
    /// queue" pathway; in reality KOALA submits through GRAM to SGE, but
    /// it only does so after checking idle counts, so its requests do not
    /// queue).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Fresh local-job identifier.
    pub fn next_local_id(&mut self) -> LocalJobId {
        let id = LocalJobId(self.next_local);
        self.next_local += 1;
        id
    }

    /// Number of queued (not yet started) local jobs.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Number of local jobs that have completed.
    pub fn completed_local(&self) -> u64 {
        self.completed_local
    }

    /// Submits a local job. FIFO without backfilling: if anything is
    /// already queued, new arrivals queue behind it even if they would
    /// fit right now.
    pub fn submit_local(&mut self, job: LocalJob) -> SubmitOutcome {
        if job.size > self.cluster.spec().nodes {
            return SubmitOutcome::Impossible;
        }
        if self.queue.is_empty() && self.cluster.idle() >= job.size {
            let alloc = self
                .cluster
                .allocate(AllocOwner::Local(job.id.0), job.size)
                .expect("idle checked");
            SubmitOutcome::Started(alloc)
        } else {
            self.queue.push_back(job);
            SubmitOutcome::Queued
        }
    }

    /// Starts queued local jobs that now fit, in strict FIFO order
    /// (stops at the first job that does not fit). Returns the started
    /// jobs with their allocations; the caller schedules completions.
    pub fn start_queued(&mut self) -> Vec<(LocalJob, AllocId)> {
        let mut started = Vec::new();
        while let Some(head) = self.queue.front() {
            if self.cluster.idle() < head.size {
                break;
            }
            let job = self.queue.pop_front().expect("front checked");
            let alloc = self
                .cluster
                .allocate(AllocOwner::Local(job.id.0), job.size)
                .expect("idle checked");
            started.push((job, alloc));
        }
        started
    }

    /// Completes a local job: releases its allocation.
    pub fn complete_local(&mut self, alloc: AllocId) -> u32 {
        self.completed_local += 1;
        self.cluster
            .release(alloc)
            .expect("completion of live local job")
    }

    /// Captures the LRM's dynamic state (queue in FIFO order plus the
    /// id and completion counters), for checkpointing. The wrapped
    /// cluster captures separately via [`Cluster::capture_state`].
    pub fn capture_state(&self) -> LrmState {
        LrmState {
            queue: self.queue.iter().copied().collect(),
            next_local: self.next_local,
            completed_local: self.completed_local,
        }
    }

    /// Overwrites the LRM's dynamic state with a captured one (the
    /// wrapped cluster restores separately).
    pub fn restore_state(&mut self, state: LrmState) {
        self.queue = state.queue.into();
        self.next_local = state.next_local;
        self.completed_local = state.completed_local;
    }
}

/// A full capture of an [`Lrm`]'s dynamic state (minus the wrapped
/// cluster, which has its own [`crate::ClusterState`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LrmState {
    /// Queued local jobs in FIFO order.
    pub queue: Vec<LocalJob>,
    /// The next LRM-local job id.
    pub next_local: u64,
    /// Completed local jobs so far.
    pub completed_local: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;

    fn lrm(nodes: u32) -> Lrm {
        Lrm::new(Cluster::new(ClusterSpec::new("t", nodes, "GbE")))
    }

    fn job(lrm: &mut Lrm, size: u32) -> LocalJob {
        LocalJob {
            id: lrm.next_local_id(),
            size,
            duration: SimDuration::from_secs(60),
            submitted: SimTime::ZERO,
        }
    }

    #[test]
    fn starts_immediately_when_room() {
        let mut l = lrm(8);
        let j = job(&mut l, 4);
        match l.submit_local(j) {
            SubmitOutcome::Started(a) => {
                assert_eq!(l.cluster().alloc_size(a), Some(4));
                assert_eq!(l.cluster().used_by_local(), 4);
            }
            other => panic!("expected start, got {other:?}"),
        }
    }

    #[test]
    fn queues_when_full_and_fifo_restarts() {
        let mut l = lrm(8);
        let j1 = job(&mut l, 6);
        let a1 = match l.submit_local(j1) {
            SubmitOutcome::Started(a) => a,
            _ => panic!(),
        };
        let j2 = job(&mut l, 4);
        assert_eq!(l.submit_local(j2), SubmitOutcome::Queued);
        let j3 = job(&mut l, 2); // would fit, but FIFO forbids overtaking
        assert_eq!(l.submit_local(j3), SubmitOutcome::Queued);
        assert_eq!(l.queued(), 2);
        assert!(l.start_queued().is_empty(), "nothing fits while j1 holds 6");
        l.complete_local(a1);
        let started = l.start_queued();
        assert_eq!(started.len(), 2, "j2 then j3 fit after release");
        assert_eq!(started[0].0.id, j2.id);
        assert_eq!(started[1].0.id, j3.id);
        assert_eq!(l.queued(), 0);
    }

    #[test]
    fn fifo_head_blocks_smaller_followers() {
        let mut l = lrm(8);
        let big = job(&mut l, 7);
        let a = match l.submit_local(big) {
            SubmitOutcome::Started(a) => a,
            _ => panic!(),
        };
        let head = job(&mut l, 8); // cannot fit until cluster fully empty
        let small = job(&mut l, 1); // fits now, but must wait behind head
        l.submit_local(head);
        l.submit_local(small);
        assert!(l.start_queued().is_empty());
        l.complete_local(a);
        let started = l.start_queued();
        assert_eq!(started.len(), 1, "only head starts; it fills the cluster");
        assert_eq!(started[0].0.size, 8);
    }

    #[test]
    fn impossible_jobs_are_rejected() {
        let mut l = lrm(4);
        let j = job(&mut l, 5);
        assert_eq!(l.submit_local(j), SubmitOutcome::Impossible);
        assert_eq!(l.queued(), 0);
    }

    #[test]
    fn completion_counter_increments() {
        let mut l = lrm(4);
        let j = job(&mut l, 2);
        let a = match l.submit_local(j) {
            SubmitOutcome::Started(a) => a,
            _ => panic!(),
        };
        assert_eq!(l.complete_local(a), 2);
        assert_eq!(l.completed_local(), 1);
    }
}
