//! Multicluster topologies, including the DAS-3 preset (Table I).

use crate::cluster::{Cluster, ClusterSpec};
use crate::ids::ClusterId;
use crate::lrm::Lrm;

/// Interconnect technology of a DAS-3 cluster (informational).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interconnect {
    /// Myri-10G plus 1/10 Gbit Ethernet.
    Myri10GPlusEthernet,
    /// 1/10 Gbit Ethernet only (the Delft cluster).
    EthernetOnly,
}

impl Interconnect {
    /// The label used in Table I of the paper.
    pub fn label(self) -> &'static str {
        match self {
            Interconnect::Myri10GPlusEthernet => "Myri-10G & 1/10 GbE",
            Interconnect::EthernetOnly => "1/10 GbE",
        }
    }
}

/// A multicluster system: one LRM-fronted cluster per site.
#[derive(Debug, Clone)]
pub struct Multicluster {
    lrms: Vec<Lrm>,
}

impl Multicluster {
    /// Builds a system from cluster specs.
    pub fn new(specs: impl IntoIterator<Item = ClusterSpec>) -> Self {
        Multicluster {
            lrms: specs
                .into_iter()
                .map(|s| Lrm::new(Cluster::new(s)))
                .collect(),
        }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.lrms.len()
    }

    /// True when the system has no clusters.
    pub fn is_empty(&self) -> bool {
        self.lrms.is_empty()
    }

    /// All cluster ids in index order.
    pub fn ids(&self) -> impl Iterator<Item = ClusterId> + '_ {
        (0..self.lrms.len()).map(|i| ClusterId(i as u16))
    }

    /// The LRM of one cluster.
    pub fn lrm(&self, c: ClusterId) -> &Lrm {
        &self.lrms[c.index()]
    }

    /// Mutable LRM of one cluster.
    pub fn lrm_mut(&mut self, c: ClusterId) -> &mut Lrm {
        &mut self.lrms[c.index()]
    }

    /// The cluster state of one site.
    pub fn cluster(&self, c: ClusterId) -> &Cluster {
        self.lrms[c.index()].cluster()
    }

    /// Mutable cluster state of one site.
    pub fn cluster_mut(&mut self, c: ClusterId) -> &mut Cluster {
        self.lrms[c.index()].cluster_mut()
    }

    /// Iterates over the clusters (for KIS polls).
    pub fn clusters(&self) -> impl Iterator<Item = &Cluster> {
        self.lrms.iter().map(|l| l.cluster())
    }

    /// Total pool capacity.
    pub fn total_capacity(&self) -> u32 {
        self.clusters().map(|c| c.capacity()).sum()
    }

    /// Total idle processors right now (live, not snapshot).
    pub fn total_idle(&self) -> u32 {
        self.clusters().map(|c| c.idle()).sum()
    }

    /// Total processors in use right now.
    pub fn total_used(&self) -> u32 {
        self.clusters().map(|c| c.used()).sum()
    }

    /// Total processors used by KOALA-managed jobs right now.
    pub fn total_used_by_koala(&self) -> u32 {
        self.clusters().map(|c| c.used_by_koala()).sum()
    }

    /// Checks every cluster's internal invariants.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, l) in self.lrms.iter().enumerate() {
            l.cluster()
                .check_invariants()
                .map_err(|e| format!("cluster {i}: {e}"))?;
        }
        Ok(())
    }
}

/// The DAS-3 testbed of the paper, Table I:
///
/// | Cluster            | Nodes | Interconnect        |
/// |--------------------|-------|---------------------|
/// | Vrije University   |   85  | Myri-10G & 1/10 GbE |
/// | U. of Amsterdam    |   41  | Myri-10G & 1/10 GbE |
/// | Delft University   |   68  | 1/10 GbE            |
/// | MultimediaN        |   46  | Myri-10G & 1/10 GbE |
/// | Leiden University  |   32  | Myri-10G & 1/10 GbE |
///
/// 272 nodes in total; SGE allocates whole nodes, so "processors" in the
/// experiments are nodes (the dual-core distinction is invisible at the
/// allocation granularity).
pub fn das3() -> Multicluster {
    let rows: [(&str, u32, Interconnect); 5] = [
        ("Vrije University", 85, Interconnect::Myri10GPlusEthernet),
        ("U. of Amsterdam", 41, Interconnect::Myri10GPlusEthernet),
        ("Delft University", 68, Interconnect::EthernetOnly),
        ("MultimediaN", 46, Interconnect::Myri10GPlusEthernet),
        ("Leiden University", 32, Interconnect::Myri10GPlusEthernet),
    ];
    Multicluster::new(rows.map(|(name, nodes, ic)| ClusterSpec::new(name, nodes, ic.label())))
}

/// Index of the Delft cluster in [`das3`] — the site whose measurements
/// calibrate Fig. 6 of the paper.
pub const DAS3_DELFT: ClusterId = ClusterId(2);

/// A heterogeneous DAS-3 variant: same node counts, but per-site compute
/// speeds differ (Myri-10G sites run the communication-bound benchmarks
/// faster than the Ethernet-only Delft reference). The paper motivates
/// its max-size rule with exactly this: "applications are not supposed
/// to scale the same in all of the clusters, which may be heterogeneous."
pub fn das3_heterogeneous() -> Multicluster {
    let specs = [
        (
            "Vrije University",
            85,
            Interconnect::Myri10GPlusEthernet,
            1.25,
        ),
        (
            "U. of Amsterdam",
            41,
            Interconnect::Myri10GPlusEthernet,
            1.15,
        ),
        ("Delft University", 68, Interconnect::EthernetOnly, 1.0),
        ("MultimediaN", 46, Interconnect::Myri10GPlusEthernet, 1.15),
        (
            "Leiden University",
            32,
            Interconnect::Myri10GPlusEthernet,
            1.1,
        ),
    ]
    .map(|(name, nodes, ic, speed)| {
        let mut spec = ClusterSpec::new(name, nodes, ic.label());
        spec.speed_factor = speed;
        spec
    });
    Multicluster::new(specs)
}

/// A uniform synthetic topology: `clusters` identical sites of
/// `nodes_per_cluster` nodes each, all at reference speed. This is the
/// cluster-count axis of workload sweeps — holding total capacity fixed
/// while varying fragmentation (e.g. `uniform(2, 136)` vs
/// `uniform(10, 27)` against the 272-node DAS-3).
///
/// # Panics
/// Panics when either dimension is zero or `clusters` exceeds the
/// `u16` cluster-id space.
pub fn uniform(clusters: u32, nodes_per_cluster: u32) -> Multicluster {
    assert!(
        clusters > 0 && nodes_per_cluster > 0,
        "uniform topology needs at least one node in one cluster"
    );
    assert!(
        clusters <= u16::MAX as u32,
        "cluster ids are u16: {clusters} clusters do not fit"
    );
    Multicluster::new((0..clusters).map(|i| {
        ClusterSpec::new(
            format!("site-{i}"),
            nodes_per_cluster,
            Interconnect::EthernetOnly.label(),
        )
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::AllocOwner;

    #[test]
    fn das3_matches_table_i() {
        let das = das3();
        assert_eq!(das.len(), 5);
        let expected = [
            ("Vrije University", 85),
            ("U. of Amsterdam", 41),
            ("Delft University", 68),
            ("MultimediaN", 46),
            ("Leiden University", 32),
        ];
        for (i, (name, nodes)) in expected.iter().enumerate() {
            let c = das.cluster(ClusterId(i as u16));
            assert_eq!(c.spec().name, *name);
            assert_eq!(c.spec().nodes, *nodes);
        }
        assert_eq!(das.total_capacity(), 272);
        assert_eq!(
            das.cluster(DAS3_DELFT).spec().interconnect,
            Interconnect::EthernetOnly.label()
        );
    }

    #[test]
    fn heterogeneous_preset_keeps_table_i_shape() {
        let das = das3_heterogeneous();
        assert_eq!(das.total_capacity(), 272);
        assert_eq!(
            das.cluster(DAS3_DELFT).spec().speed_factor,
            1.0,
            "Delft is the reference"
        );
        assert!(
            das.cluster(ClusterId(0)).spec().speed_factor > 1.0,
            "VU is faster"
        );
    }

    #[test]
    fn uniform_topology_has_the_requested_shape() {
        let mc = uniform(10, 27);
        assert_eq!(mc.len(), 10);
        assert_eq!(mc.total_capacity(), 270);
        for id in mc.ids() {
            assert_eq!(mc.cluster(id).spec().nodes, 27);
            assert_eq!(mc.cluster(id).spec().speed_factor, 1.0);
        }
        assert_eq!(mc.cluster(ClusterId(3)).spec().name, "site-3");
        let r = std::panic::catch_unwind(|| uniform(0, 4));
        assert!(r.is_err(), "zero clusters must panic");
    }

    #[test]
    fn totals_track_allocations() {
        let mut das = das3();
        das.cluster_mut(ClusterId(0))
            .allocate(AllocOwner::Koala(1), 10)
            .unwrap();
        das.cluster_mut(ClusterId(3))
            .allocate(AllocOwner::Local(2), 6)
            .unwrap();
        assert_eq!(das.total_used(), 16);
        assert_eq!(das.total_used_by_koala(), 10);
        assert_eq!(das.total_idle(), 272 - 16);
        das.check_invariants().unwrap();
    }
}
