//! The KOALA Information Service (KIS).
//!
//! "In order to trigger job management, the scheduler periodically polls
//! the KOALA information service. In doing so, the scheduler is able to
//! take into account dynamically the background load due to other users
//! even if they bypass KOALA." (Section V-B.)
//!
//! The crucial modelling point is that the scheduler acts on a
//! **snapshot**, not on live state: between polls, background jobs may
//! have taken or released nodes, so placement decisions can fail and must
//! be retried — precisely the pathway the paper's placement queue exists
//! for. [`InfoService`] therefore stores the snapshot taken at poll time
//! and hands that out until the next poll.

use simcore::SimTime;

use crate::cluster::Cluster;
use crate::ids::ClusterId;

/// A poll-time snapshot of per-cluster processor availability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfoSnapshot {
    /// When the snapshot was taken.
    pub taken_at: SimTime,
    /// Idle processors per cluster, indexed by [`ClusterId`].
    pub idle: Vec<u32>,
    /// Pool capacity per cluster (total minus withdrawn nodes).
    pub capacity: Vec<u32>,
    /// Processors used by KOALA-managed jobs per cluster.
    pub used_by_koala: Vec<u32>,
    /// Processors used by local/background jobs per cluster.
    pub used_by_local: Vec<u32>,
}

impl InfoSnapshot {
    /// Idle processors of one cluster.
    pub fn idle_of(&self, c: ClusterId) -> u32 {
        self.idle[c.index()]
    }

    /// Capacity of one cluster.
    pub fn capacity_of(&self, c: ClusterId) -> u32 {
        self.capacity[c.index()]
    }

    /// Total idle processors across the system.
    pub fn total_idle(&self) -> u32 {
        self.idle.iter().sum()
    }

    /// Total capacity across the system.
    pub fn total_capacity(&self) -> u32 {
        self.capacity.iter().sum()
    }

    /// Cluster ids sorted by descending idle count (ties by ascending
    /// id, keeping Worst-Fit deterministic).
    pub fn clusters_by_idle_desc(&self) -> Vec<ClusterId> {
        let mut ids: Vec<ClusterId> = (0..self.idle.len()).map(|i| ClusterId(i as u16)).collect();
        ids.sort_by_key(|c| (std::cmp::Reverse(self.idle[c.index()]), c.0));
        ids
    }
}

/// The information service: takes and caches snapshots.
#[derive(Debug, Clone, Default)]
pub struct InfoService {
    snapshot: Option<InfoSnapshot>,
    polls: u64,
}

impl InfoService {
    /// Creates a service with no snapshot yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Polls the processor information providers: records a fresh
    /// snapshot of every cluster.
    pub fn poll<'a>(&mut self, now: SimTime, clusters: impl Iterator<Item = &'a Cluster>) {
        let mut idle = Vec::new();
        let mut capacity = Vec::new();
        let mut used_by_koala = Vec::new();
        let mut used_by_local = Vec::new();
        for c in clusters {
            idle.push(c.idle());
            capacity.push(c.capacity());
            used_by_koala.push(c.used_by_koala());
            used_by_local.push(c.used_by_local());
        }
        self.snapshot = Some(InfoSnapshot {
            taken_at: now,
            idle,
            capacity,
            used_by_koala,
            used_by_local,
        });
        self.polls += 1;
    }

    /// The latest snapshot, if any poll has happened.
    pub fn snapshot(&self) -> Option<&InfoSnapshot> {
        self.snapshot.as_ref()
    }

    /// Number of polls performed.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// Age of the current snapshot at `now`.
    pub fn staleness(&self, now: SimTime) -> Option<simcore::SimDuration> {
        self.snapshot
            .as_ref()
            .map(|s| now.saturating_since(s.taken_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{AllocOwner, ClusterSpec};

    fn cluster(name: &str, nodes: u32) -> Cluster {
        Cluster::new(ClusterSpec::new(name, nodes, "GbE"))
    }

    #[test]
    fn snapshot_captures_poll_time_state() {
        let mut a = cluster("a", 10);
        let b = cluster("b", 20);
        a.allocate(AllocOwner::Koala(1), 4).unwrap();
        let mut kis = InfoService::new();
        kis.poll(SimTime::from_secs(5), [&a, &b].into_iter());
        let s = kis.snapshot().unwrap();
        assert_eq!(s.taken_at, SimTime::from_secs(5));
        assert_eq!(s.idle_of(ClusterId(0)), 6);
        assert_eq!(s.idle_of(ClusterId(1)), 20);
        assert_eq!(s.total_idle(), 26);
        assert_eq!(s.used_by_koala[0], 4);
    }

    #[test]
    fn snapshot_is_stale_not_live() {
        let mut a = cluster("a", 10);
        let mut kis = InfoService::new();
        kis.poll(SimTime::ZERO, [&a].into_iter());
        // Background job takes nodes *after* the poll.
        a.allocate(AllocOwner::Local(1), 8).unwrap();
        let s = kis.snapshot().unwrap();
        assert_eq!(
            s.idle_of(ClusterId(0)),
            10,
            "snapshot must not see the new job"
        );
        assert_eq!(a.idle(), 2, "live state did change");
    }

    #[test]
    fn staleness_grows_until_next_poll() {
        let a = cluster("a", 4);
        let mut kis = InfoService::new();
        assert_eq!(kis.staleness(SimTime::from_secs(1)), None);
        kis.poll(SimTime::from_secs(10), [&a].into_iter());
        assert_eq!(
            kis.staleness(SimTime::from_secs(25)),
            Some(simcore::SimDuration::from_secs(15))
        );
        kis.poll(SimTime::from_secs(30), [&a].into_iter());
        assert_eq!(
            kis.staleness(SimTime::from_secs(30)),
            Some(simcore::SimDuration::ZERO)
        );
        assert_eq!(kis.polls(), 2);
    }

    #[test]
    fn worst_fit_ordering_breaks_ties_by_id() {
        let a = cluster("a", 10);
        let b = cluster("b", 30);
        let c = cluster("c", 10);
        let mut kis = InfoService::new();
        kis.poll(SimTime::ZERO, [&a, &b, &c].into_iter());
        let order = kis.snapshot().unwrap().clusters_by_idle_desc();
        assert_eq!(order, vec![ClusterId(1), ClusterId(0), ClusterId(2)]);
    }
}
