//! The KOALA Information Service (KIS).
//!
//! "In order to trigger job management, the scheduler periodically polls
//! the KOALA information service. In doing so, the scheduler is able to
//! take into account dynamically the background load due to other users
//! even if they bypass KOALA." (Section V-B.)
//!
//! The crucial modelling point is that the scheduler acts on a
//! **snapshot**, not on live state: between polls, background jobs may
//! have taken or released nodes, so placement decisions can fail and must
//! be retried — precisely the pathway the paper's placement queue exists
//! for. [`InfoService`] therefore stores the snapshot taken at poll time
//! and hands that out until the next poll.

use simcore::SimTime;

use crate::cluster::Cluster;
use crate::ids::ClusterId;

/// A poll-time snapshot of per-cluster processor availability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfoSnapshot {
    /// When the snapshot was taken.
    pub taken_at: SimTime,
    /// Idle processors per cluster, indexed by [`ClusterId`].
    pub idle: Vec<u32>,
    /// Pool capacity per cluster (total minus withdrawn nodes).
    pub capacity: Vec<u32>,
    /// Processors used by KOALA-managed jobs per cluster.
    pub used_by_koala: Vec<u32>,
    /// Processors used by local/background jobs per cluster.
    pub used_by_local: Vec<u32>,
}

impl InfoSnapshot {
    /// Idle processors of one cluster.
    ///
    /// # Panics
    /// Panics when `c` is outside the snapshot — cluster count is fixed
    /// at construction, so an out-of-range id is a caller bug.
    pub fn idle_of(&self, c: ClusterId) -> u32 {
        *self.idle.get(c.index()).unwrap_or_else(|| {
            panic!(
                "cluster {c:?} outside a snapshot of {} clusters",
                self.idle.len()
            )
        })
    }

    /// Capacity of one cluster.
    ///
    /// # Panics
    /// Panics when `c` is outside the snapshot — cluster count is fixed
    /// at construction, so an out-of-range id is a caller bug.
    pub fn capacity_of(&self, c: ClusterId) -> u32 {
        *self.capacity.get(c.index()).unwrap_or_else(|| {
            panic!(
                "cluster {c:?} outside a snapshot of {} clusters",
                self.capacity.len()
            )
        })
    }

    /// Total idle processors across the system.
    pub fn total_idle(&self) -> u32 {
        self.idle.iter().sum()
    }

    /// Total capacity across the system.
    pub fn total_capacity(&self) -> u32 {
        self.capacity.iter().sum()
    }

    /// Cluster ids sorted by descending idle count (ties by ascending
    /// id, keeping Worst-Fit deterministic).
    pub fn clusters_by_idle_desc(&self) -> Vec<ClusterId> {
        let mut ids: Vec<ClusterId> = (0..self.idle.len()).map(|i| ClusterId(i as u16)).collect();
        ids.sort_by_key(|c| (std::cmp::Reverse(self.idle[c.index()]), c.0));
        ids
    }
}

/// The information service: takes and caches snapshots, optionally
/// delivering them with a propagation lag.
///
/// With a nonzero [`lag`](InfoService::with_lag), a poll taken at `t`
/// only becomes the visible snapshot once a later poll happens at
/// `t + lag` or beyond — the scheduler then always places against a view
/// at least `lag` behind the true world (quantized up to the poll
/// period, since promotion happens at poll times). This is the
/// first-class "staleness" scenario axis.
#[derive(Debug, Clone, Default)]
pub struct InfoService {
    /// The snapshot the scheduler is allowed to see.
    visible: Option<InfoSnapshot>,
    /// Snapshots recorded but still in flight (taken less than `lag`
    /// ago at the last poll). Oldest first; drained into `visible` as
    /// they mature.
    in_flight: std::collections::VecDeque<InfoSnapshot>,
    /// Minimum age a snapshot must reach before becoming visible.
    lag: simcore::SimDuration,
    polls: u64,
}

impl InfoService {
    /// Creates a service with no snapshot yet and zero propagation lag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a service whose snapshots become visible only `lag` after
    /// they are taken.
    pub fn with_lag(lag: simcore::SimDuration) -> Self {
        InfoService {
            lag,
            ..Self::default()
        }
    }

    /// The configured propagation lag.
    pub fn lag(&self) -> simcore::SimDuration {
        self.lag
    }

    /// Polls the processor information providers: records a fresh
    /// snapshot of every cluster, then promotes the newest recorded
    /// snapshot that is at least [`lag`](InfoService::lag) old.
    pub fn poll<'a>(&mut self, now: SimTime, clusters: impl Iterator<Item = &'a Cluster>) {
        let mut idle = Vec::new();
        let mut capacity = Vec::new();
        let mut used_by_koala = Vec::new();
        let mut used_by_local = Vec::new();
        for c in clusters {
            idle.push(c.idle());
            capacity.push(c.capacity());
            used_by_koala.push(c.used_by_koala());
            used_by_local.push(c.used_by_local());
        }
        self.in_flight.push_back(InfoSnapshot {
            taken_at: now,
            idle,
            capacity,
            used_by_koala,
            used_by_local,
        });
        while let Some(front) = self.in_flight.front() {
            if now.saturating_since(front.taken_at) >= self.lag {
                self.visible = self.in_flight.pop_front();
            } else {
                break;
            }
        }
        self.polls += 1;
    }

    /// The latest *visible* snapshot, if any poll has matured. With zero
    /// lag this is the snapshot of the most recent poll.
    pub fn snapshot(&self) -> Option<&InfoSnapshot> {
        self.visible.as_ref()
    }

    /// Number of polls performed.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// Age of the currently visible snapshot at `now`; `None` when no
    /// poll has matured yet. Callers deciding whether a view is usable
    /// should prefer [`InfoService::staleness_or_max`], which makes the
    /// never-polled case explicit instead of easy to drop with `?`.
    pub fn staleness(&self, now: SimTime) -> Option<simcore::SimDuration> {
        self.visible
            .as_ref()
            .map(|s| now.saturating_since(s.taken_at))
    }

    /// Captures the service's dynamic state — the visible snapshot, the
    /// in-flight queue (oldest first) and the poll counter — for
    /// checkpointing. The lag is configuration, not state.
    pub fn capture_state(&self) -> InfoState {
        InfoState {
            visible: self.visible.clone(),
            in_flight: self.in_flight.iter().cloned().collect(),
            polls: self.polls,
        }
    }

    /// Overwrites the service's dynamic state with a captured one (the
    /// lag keeps its configured value).
    pub fn restore_state(&mut self, state: InfoState) {
        self.visible = state.visible;
        self.in_flight = state.in_flight.into();
        self.polls = state.polls;
    }

    /// Age of the currently visible snapshot at `now`, with a view that
    /// has never been refreshed reported as [`SimDuration::MAX`]
    /// ("maximally stale") — never as fresh. Placement code must refuse
    /// to act (or force a refresh) on a maximally stale view.
    ///
    /// [`SimDuration::MAX`]: simcore::SimDuration::MAX
    pub fn staleness_or_max(&self, now: SimTime) -> simcore::SimDuration {
        self.staleness(now).unwrap_or(simcore::SimDuration::MAX)
    }
}

/// A full capture of an [`InfoService`]'s dynamic state (minus the
/// configured lag).
#[derive(Debug, Clone, PartialEq)]
pub struct InfoState {
    /// The snapshot the scheduler currently sees, if any.
    pub visible: Option<InfoSnapshot>,
    /// Recorded-but-immature snapshots, oldest first.
    pub in_flight: Vec<InfoSnapshot>,
    /// Polls performed so far.
    pub polls: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{AllocOwner, ClusterSpec};

    fn cluster(name: &str, nodes: u32) -> Cluster {
        Cluster::new(ClusterSpec::new(name, nodes, "GbE"))
    }

    #[test]
    fn snapshot_captures_poll_time_state() {
        let mut a = cluster("a", 10);
        let b = cluster("b", 20);
        a.allocate(AllocOwner::Koala(1), 4).unwrap();
        let mut kis = InfoService::new();
        kis.poll(SimTime::from_secs(5), [&a, &b].into_iter());
        let s = kis.snapshot().unwrap();
        assert_eq!(s.taken_at, SimTime::from_secs(5));
        assert_eq!(s.idle_of(ClusterId(0)), 6);
        assert_eq!(s.idle_of(ClusterId(1)), 20);
        assert_eq!(s.total_idle(), 26);
        assert_eq!(s.used_by_koala[0], 4);
    }

    #[test]
    fn snapshot_is_stale_not_live() {
        let mut a = cluster("a", 10);
        let mut kis = InfoService::new();
        kis.poll(SimTime::ZERO, [&a].into_iter());
        // Background job takes nodes *after* the poll.
        a.allocate(AllocOwner::Local(1), 8).unwrap();
        let s = kis.snapshot().unwrap();
        assert_eq!(
            s.idle_of(ClusterId(0)),
            10,
            "snapshot must not see the new job"
        );
        assert_eq!(a.idle(), 2, "live state did change");
    }

    #[test]
    fn staleness_grows_until_next_poll() {
        let a = cluster("a", 4);
        let mut kis = InfoService::new();
        assert_eq!(kis.staleness(SimTime::from_secs(1)), None);
        kis.poll(SimTime::from_secs(10), [&a].into_iter());
        assert_eq!(
            kis.staleness(SimTime::from_secs(25)),
            Some(simcore::SimDuration::from_secs(15))
        );
        kis.poll(SimTime::from_secs(30), [&a].into_iter());
        assert_eq!(
            kis.staleness(SimTime::from_secs(30)),
            Some(simcore::SimDuration::ZERO)
        );
        assert_eq!(kis.polls(), 2);
    }

    #[test]
    fn never_polled_view_is_maximally_stale() {
        let kis = InfoService::new();
        assert_eq!(kis.staleness(SimTime::from_secs(99)), None);
        assert_eq!(
            kis.staleness_or_max(SimTime::from_secs(99)),
            simcore::SimDuration::MAX,
            "a never-polled KIS must read as maximally stale, not fresh"
        );
        assert!(kis.snapshot().is_none());
    }

    #[test]
    fn lagged_snapshots_mature_at_later_polls() {
        let mut a = cluster("a", 10);
        let mut kis = InfoService::with_lag(simcore::SimDuration::from_secs(30));
        kis.poll(SimTime::ZERO, [&a].into_iter());
        // Taken but not yet visible: the view is still maximally stale.
        assert!(kis.snapshot().is_none());
        assert_eq!(
            kis.staleness_or_max(SimTime::from_secs(10)),
            simcore::SimDuration::MAX
        );
        a.allocate(AllocOwner::Local(1), 8).unwrap();
        kis.poll(SimTime::from_secs(40), [&a].into_iter());
        // The matured snapshot is the one taken at t = 0: it lags the
        // true world (which now has only 2 idle nodes).
        let s = kis.snapshot().unwrap();
        assert_eq!(s.taken_at, SimTime::ZERO);
        assert_eq!(s.idle_of(ClusterId(0)), 10);
        assert_eq!(
            kis.staleness(SimTime::from_secs(40)),
            Some(simcore::SimDuration::from_secs(40))
        );
        // The next poll promotes the t = 40 snapshot (70 - 40 >= 30).
        kis.poll(SimTime::from_secs(70), [&a].into_iter());
        assert_eq!(kis.snapshot().unwrap().taken_at, SimTime::from_secs(40));
        assert_eq!(kis.snapshot().unwrap().idle_of(ClusterId(0)), 2);
        assert_eq!(kis.polls(), 3);
    }

    #[test]
    fn worst_fit_ordering_breaks_ties_by_id() {
        let a = cluster("a", 10);
        let b = cluster("b", 30);
        let c = cluster("c", 10);
        let mut kis = InfoService::new();
        kis.poll(SimTime::ZERO, [&a, &b, &c].into_iter());
        let order = kis.snapshot().unwrap().clusters_by_idle_desc();
        assert_eq!(order, vec![ClusterId(1), ClusterId(0), ClusterId(2)]);
    }
}
