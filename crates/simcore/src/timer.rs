//! Fixed-period timers.
//!
//! The scheduler in the paper is driven by several periodic activities:
//! the KOALA information service is polled, the placement queue is
//! scanned, and our measurement layer samples utilization. [`Periodic`]
//! encapsulates the "compute the next tick" arithmetic so that every user
//! ticks on the same grid regardless of when handlers actually ran.

use crate::time::{SimDuration, SimTime};

/// A fixed-period timer anchored at a start instant.
///
/// `next_after(now)` always returns the first grid point *strictly after*
/// `now`, so a handler that runs late does not drift the grid and a
/// handler that reschedules from inside the tick does not double-fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Periodic {
    start: SimTime,
    period: SimDuration,
}

impl Periodic {
    /// Creates a timer ticking at `start`, `start + period`, `start + 2·period`, …
    ///
    /// # Panics
    /// Panics if `period` is zero — a zero-period timer would livelock the
    /// event loop.
    pub fn new(start: SimTime, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "Periodic requires a non-zero period");
        Periodic { start, period }
    }

    /// The timer's period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// The first tick at or after `now`.
    pub fn next_at_or_after(&self, now: SimTime) -> SimTime {
        if now <= self.start {
            return self.start;
        }
        let elapsed = (now - self.start).as_millis();
        let p = self.period.as_millis();
        let k = elapsed.div_ceil(p);
        self.start + SimDuration::from_millis(k * p)
    }

    /// The first tick strictly after `now`.
    pub fn next_after(&self, now: SimTime) -> SimTime {
        let t = self.next_at_or_after(now);
        if t > now {
            t
        } else {
            t + self.period
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(start_s: u64, period_s: u64) -> Periodic {
        Periodic::new(
            SimTime::from_secs(start_s),
            SimDuration::from_secs(period_s),
        )
    }

    #[test]
    fn first_tick_is_the_anchor() {
        let t = timer(5, 10);
        assert_eq!(t.next_at_or_after(SimTime::ZERO), SimTime::from_secs(5));
        assert_eq!(t.next_after(SimTime::ZERO), SimTime::from_secs(5));
    }

    #[test]
    fn ticks_stay_on_grid() {
        let t = timer(0, 10);
        assert_eq!(t.next_after(SimTime::from_secs(0)), SimTime::from_secs(10));
        assert_eq!(t.next_after(SimTime::from_secs(9)), SimTime::from_secs(10));
        assert_eq!(t.next_after(SimTime::from_secs(10)), SimTime::from_secs(20));
        assert_eq!(
            t.next_after(SimTime::from_millis(10_001)),
            SimTime::from_secs(20)
        );
    }

    #[test]
    fn at_or_after_includes_grid_points() {
        let t = timer(0, 10);
        assert_eq!(
            t.next_at_or_after(SimTime::from_secs(10)),
            SimTime::from_secs(10)
        );
        assert_eq!(
            t.next_at_or_after(SimTime::from_secs(11)),
            SimTime::from_secs(20)
        );
    }

    #[test]
    #[should_panic(expected = "non-zero period")]
    fn zero_period_panics() {
        Periodic::new(SimTime::ZERO, SimDuration::ZERO);
    }
}
