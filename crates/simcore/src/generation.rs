//! Generation counters: cheap invalidation of superseded events.
//!
//! A discrete-event simulation frequently schedules a *provisional* future
//! event — "this job completes at time T" — that a later development
//! invalidates ("the job grew, so it now completes earlier"). Rather than
//! removing events from the heap (expensive, and `BinaryHeap` offers no
//! handle), the standard trick is to stamp both the scheduled event and the
//! owning entity with a generation counter, bump the entity's counter when
//! the state changes, and discard popped events whose stamp is stale.

use std::fmt;

/// A monotonically increasing stamp owned by some simulated entity.
///
/// Copies of the current value travel inside scheduled events; when the
/// entity's state changes in a way that invalidates its pending events,
/// call [`Generation::bump`]. A popped event is valid only if its carried
/// stamp [`matches`](Generation::matches) the entity's current one.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Generation(u32);

impl Generation {
    /// The initial generation.
    pub const fn new() -> Self {
        Generation(0)
    }

    /// Invalidates every event carrying the current stamp.
    pub fn bump(&mut self) {
        self.0 = self.0.wrapping_add(1);
    }

    /// True when `stamp` (carried by a popped event) is still current.
    pub fn matches(self, stamp: Generation) -> bool {
        self == stamp
    }

    /// The raw counter value, for checkpointing.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Reconstructs a stamp from a captured [`Generation::raw`] value.
    pub fn from_raw(raw: u32) -> Self {
        Generation(raw)
    }
}

impl fmt::Debug for Generation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gen#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_invalidates_old_stamps() {
        let mut g = Generation::new();
        let stamp = g;
        assert!(g.matches(stamp));
        g.bump();
        assert!(!g.matches(stamp));
        assert!(g.matches(g));
    }

    #[test]
    fn raw_round_trip_preserves_the_stamp() {
        let mut g = Generation::new();
        g.bump();
        g.bump();
        assert_eq!(g.raw(), 2);
        assert_eq!(Generation::from_raw(g.raw()), g);
    }

    #[test]
    fn wraps_without_panicking() {
        let mut g = Generation(u32::MAX);
        g.bump();
        assert_eq!(g, Generation(0));
    }
}
