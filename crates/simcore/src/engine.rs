//! The simulation engine: clock + event queue + run bookkeeping.
//!
//! The engine intentionally does **not** own the simulated world. A typical
//! driver loop looks like:
//!
//! ```
//! use simcore::{Engine, SimDuration, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev { Tick(u32) }
//!
//! let mut engine: Engine<Ev> = Engine::new();
//! engine.schedule_in(SimDuration::from_secs(1), Ev::Tick(0));
//! let mut ticks = 0;
//! while let Some((now, ev)) = engine.pop() {
//!     match ev {
//!         Ev::Tick(n) if n < 3 => {
//!             ticks += 1;
//!             engine.schedule_in(SimDuration::from_secs(1), Ev::Tick(n + 1));
//!         }
//!         Ev::Tick(_) => { ticks += 1; }
//!     }
//!     assert_eq!(now, engine.now());
//! }
//! assert_eq!(ticks, 4);
//! assert_eq!(engine.now(), SimTime::from_secs(4));
//! ```
//!
//! Keeping the world outside the engine sidesteps every borrow conflict
//! between "handle this event" and "schedule follow-up events", and lets
//! each crate in the workspace define its own event enum.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Counters the engine maintains about a run; cheap enough to keep always.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events delivered through [`Engine::pop`].
    pub delivered: u64,
    /// Events scheduled (including not-yet-delivered ones).
    pub scheduled: u64,
    /// Events dropped because they were scheduled past the horizon.
    pub beyond_horizon: u64,
}

/// Discrete-event simulation engine.
///
/// Generic over the event type `E`; see the module docs for the driver
/// pattern. The clock only moves forward, in the order fixed by the
/// stable [`EventQueue`].
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    horizon: SimTime,
    stats: EngineStats,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine at time zero with an unbounded horizon.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            horizon: SimTime::MAX,
            stats: EngineStats::default(),
        }
    }

    /// Creates an engine that silently drops events scheduled at or after
    /// `horizon`. Useful for fixed-length experiments: periodic timers
    /// stop propagating themselves past the end instead of requiring an
    /// explicit cancellation pass.
    pub fn with_horizon(horizon: SimTime) -> Self {
        Engine {
            horizon,
            ..Engine::new()
        }
    }

    /// Creates an engine whose event queue has room for `cap` pending
    /// events before reallocating. Drivers that know their workload size
    /// up front (e.g. one arrival per job plus periodic timers) use this
    /// to keep the heap from growing incrementally during the run.
    pub fn with_capacity(cap: usize) -> Self {
        Engine {
            queue: EventQueue::with_capacity(cap),
            ..Engine::new()
        }
    }

    /// [`Engine::with_horizon`] and [`Engine::with_capacity`] combined.
    pub fn with_horizon_and_capacity(horizon: SimTime, cap: usize) -> Self {
        Engine {
            queue: EventQueue::with_capacity(cap),
            horizon,
            ..Engine::new()
        }
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event (or zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configured horizon ([`SimTime::MAX`] when unbounded).
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Run statistics so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// True when no events are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// Events in the past are clamped to `now` (they will still run, after
    /// the events already pending at `now`); events at or past the horizon
    /// are dropped and counted in [`EngineStats::beyond_horizon`].
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        if at >= self.horizon {
            self.stats.beyond_horizon += 1;
            return;
        }
        self.stats.scheduled += 1;
        self.queue.push(at, event);
    }

    /// Schedules `event` after the relative delay `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules `event` to run at the current instant, after everything
    /// already pending at this instant.
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// Pops the earliest event and advances the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop()?;
        debug_assert!(t >= self.now, "event queue went backwards");
        self.now = t;
        self.stats.delivered += 1;
        Some((t, e))
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Drops every pending event (the clock keeps its value).
    ///
    /// Bookkeeping semantics, pinned by regression tests:
    ///
    /// * [`EngineStats::scheduled`] **keeps counting the cleared
    ///   events** — it records how many events were ever accepted by
    ///   `schedule_*`, not how many are still pending or will be
    ///   delivered. After a clear, `scheduled` may permanently exceed
    ///   `delivered` even once the queue drains.
    /// * The underlying [`EventQueue`] keeps its sequence counter, so
    ///   FIFO tie-breaking stays stable across the clear (see
    ///   [`EventQueue::clear`]).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_pops() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_at(SimTime::from_secs(2), 2);
        e.schedule_at(SimTime::from_secs(1), 1);
        assert_eq!(e.now(), SimTime::ZERO);
        assert_eq!(e.pop(), Some((SimTime::from_secs(1), 1)));
        assert_eq!(e.now(), SimTime::from_secs(1));
        assert_eq!(e.pop(), Some((SimTime::from_secs(2), 2)));
        assert_eq!(e.now(), SimTime::from_secs(2));
        assert_eq!(e.pop(), None);
        // Popping from an empty queue leaves the clock alone.
        assert_eq!(e.now(), SimTime::from_secs(2));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule_at(SimTime::from_secs(10), "a");
        e.pop();
        e.schedule_at(SimTime::from_secs(3), "late-scheduled");
        let (t, ev) = e.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(10));
        assert_eq!(ev, "late-scheduled");
    }

    #[test]
    fn horizon_drops_far_events() {
        let mut e: Engine<u8> = Engine::with_horizon(SimTime::from_secs(100));
        e.schedule_at(SimTime::from_secs(99), 1);
        e.schedule_at(SimTime::from_secs(100), 2); // at horizon: dropped
        e.schedule_at(SimTime::from_secs(101), 3);
        assert_eq!(e.pending(), 1);
        assert_eq!(e.stats().beyond_horizon, 2);
        assert_eq!(e.pop(), Some((SimTime::from_secs(99), 1)));
        assert!(e.is_idle());
    }

    #[test]
    fn schedule_now_runs_after_pending_at_same_instant() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule_at(SimTime::from_secs(1), "first");
        e.schedule_at(SimTime::from_secs(1), "second");
        let (_, ev) = e.pop().unwrap();
        assert_eq!(ev, "first");
        e.schedule_now("third");
        assert_eq!(e.pop().unwrap().1, "second");
        assert_eq!(e.pop().unwrap().1, "third");
    }

    #[test]
    fn stats_count_scheduled_and_delivered() {
        let mut e: Engine<u8> = Engine::new();
        for i in 0..10 {
            e.schedule_in(SimDuration::from_millis(i as u64), i);
        }
        while e.pop().is_some() {}
        assert_eq!(e.stats().scheduled, 10);
        assert_eq!(e.stats().delivered, 10);
    }
}
