//! The simulation engine: clock + event queue + run bookkeeping.
//!
//! The engine intentionally does **not** own the simulated world. A typical
//! driver loop looks like:
//!
//! ```
//! use simcore::{Engine, SimDuration, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev { Tick(u32) }
//!
//! let mut engine: Engine<Ev> = Engine::new();
//! engine.schedule_in(SimDuration::from_secs(1), Ev::Tick(0));
//! let mut ticks = 0;
//! while let Some((now, ev)) = engine.pop() {
//!     match ev {
//!         Ev::Tick(n) if n < 3 => {
//!             ticks += 1;
//!             engine.schedule_in(SimDuration::from_secs(1), Ev::Tick(n + 1));
//!         }
//!         Ev::Tick(_) => { ticks += 1; }
//!     }
//!     assert_eq!(now, engine.now());
//! }
//! assert_eq!(ticks, 4);
//! assert_eq!(engine.now(), SimTime::from_secs(4));
//! ```
//!
//! Keeping the world outside the engine sidesteps every borrow conflict
//! between "handle this event" and "schedule follow-up events", and lets
//! each crate in the workspace define its own event enum.

use crate::calendar::{CalendarQueue, CalendarTuning};
use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Counters the engine maintains about a run; cheap enough to keep always.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events delivered through [`Engine::pop`].
    pub delivered: u64,
    /// Events scheduled (including not-yet-delivered ones).
    pub scheduled: u64,
    /// Events dropped because they were scheduled past the horizon.
    pub beyond_horizon: u64,
    /// Events removed by [`Engine::cancel`] before delivery.
    pub cancelled: u64,
}

/// Which event-queue implementation an [`Engine`] runs on.
///
/// Both produce *identical* pop orders — `(time, seq)` with FIFO
/// tie-breaking — which the differential suite pins; they differ only in
/// asymptotics. The calendar queue is the default for experiment drivers;
/// the heap is kept as the reference implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum QueueImpl {
    /// The binary-heap [`EventQueue`]: O(log n) push/pop, the reference.
    Heap,
    /// The [`CalendarQueue`]: O(1) amortized push/pop under the
    /// steady-state event mixes simulations produce.
    #[default]
    Calendar,
}

/// An opaque reference to a scheduled event, returned by
/// [`Engine::schedule_at_tracked`] and consumed by [`Engine::cancel`].
///
/// Handles are single-shot: once the event has been delivered (or
/// cancelled), the handle is dead and `cancel` returns `false`. Holding a
/// handle does not keep anything alive — it is just the `(time, sequence)`
/// coordinate of the entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventHandle {
    time: SimTime,
    seq: u64,
}

impl EventHandle {
    /// The instant the referenced event is scheduled for.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// The sequence number of the referenced entry — with
    /// [`EventHandle::time`], the full coordinate a checkpoint needs to
    /// persist a live handle.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Reconstructs a handle from a persisted `(time, seq)` coordinate.
    /// Only meaningful for coordinates previously captured from a live
    /// handle and restored together with the queue entries they point at.
    pub fn from_parts(time: SimTime, seq: u64) -> Self {
        EventHandle { time, seq }
    }
}

/// The queue backend: one of the two implementations behind a static
/// dispatch point (a two-arm match, not a vtable — the pop loop is the
/// hottest path in the workspace).
enum Backend<E> {
    Heap(EventQueue<E>),
    Calendar(CalendarQueue<E>),
}

impl<E> Backend<E> {
    fn with_capacity(queue: QueueImpl, cap: usize) -> Self {
        match queue {
            QueueImpl::Heap => Backend::Heap(EventQueue::with_capacity(cap)),
            QueueImpl::Calendar => Backend::Calendar(CalendarQueue::with_capacity(cap)),
        }
    }

    #[inline]
    fn push(&mut self, time: SimTime, event: E) -> u64 {
        match self {
            Backend::Heap(q) => q.push(time, event),
            Backend::Calendar(q) => q.push(time, event),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimTime, E)> {
        match self {
            Backend::Heap(q) => q.pop(),
            Backend::Calendar(q) => q.pop(),
        }
    }

    fn peek_time(&self) -> Option<SimTime> {
        match self {
            Backend::Heap(q) => q.peek_time(),
            Backend::Calendar(q) => q.peek_time(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Backend::Heap(q) => q.len(),
            Backend::Calendar(q) => q.len(),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            Backend::Heap(q) => q.is_empty(),
            Backend::Calendar(q) => q.is_empty(),
        }
    }

    fn cancel(&mut self, time: SimTime, seq: u64) -> bool {
        match self {
            Backend::Heap(q) => q.cancel(time, seq),
            Backend::Calendar(q) => q.cancel(time, seq),
        }
    }

    fn clear(&mut self) {
        match self {
            Backend::Heap(q) => q.clear(),
            Backend::Calendar(q) => q.clear(),
        }
    }

    fn queue_impl(&self) -> QueueImpl {
        match self {
            Backend::Heap(_) => QueueImpl::Heap,
            Backend::Calendar(_) => QueueImpl::Calendar,
        }
    }
}

/// A full capture of an [`Engine`]'s state, produced by
/// [`Engine::capture_state`] and consumed by [`Engine::restore_state`].
///
/// The entry list is in pop order (`(time, seq)` ascending) with heap
/// tombstones already dropped — cancelled events are gone from the
/// engine's observable behaviour, so they are not part of its state.
/// `calendar_tuning` is present exactly when `queue_impl` is
/// [`QueueImpl::Calendar`] (the calendar's adaptive layout is
/// history-dependent; see [`CalendarTuning`]).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSnapshot<E> {
    /// The clock at capture time.
    pub now: SimTime,
    /// The configured horizon ([`SimTime::MAX`] when unbounded).
    pub horizon: SimTime,
    /// Run counters at capture time.
    pub stats: EngineStats,
    /// Which queue implementation the engine ran on.
    pub queue_impl: QueueImpl,
    /// The sequence number the next push will assign.
    pub next_seq: u64,
    /// Pending live events in pop order.
    pub entries: Vec<(SimTime, u64, E)>,
    /// Calendar layout parameters; `None` on the heap backend.
    pub calendar_tuning: Option<CalendarTuning>,
}

/// Discrete-event simulation engine.
///
/// Generic over the event type `E`; see the module docs for the driver
/// pattern. The clock only moves forward, in the order fixed by the
/// stable queue (heap or calendar, per [`QueueImpl`] — the order is the
/// same either way).
pub struct Engine<E> {
    now: SimTime,
    queue: Backend<E>,
    horizon: SimTime,
    stats: EngineStats,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine at time zero with an unbounded horizon, on the
    /// default queue implementation ([`QueueImpl::Calendar`]).
    pub fn new() -> Self {
        Engine::configured(QueueImpl::default(), None, 0)
    }

    /// Creates an engine on an explicit queue implementation — the
    /// selection point the differential harness uses to run the same
    /// simulation on both backends.
    pub fn with_queue_impl(queue: QueueImpl) -> Self {
        Engine::configured(queue, None, 0)
    }

    /// Creates an engine that silently drops events scheduled at or after
    /// `horizon`. Useful for fixed-length experiments: periodic timers
    /// stop propagating themselves past the end instead of requiring an
    /// explicit cancellation pass.
    pub fn with_horizon(horizon: SimTime) -> Self {
        Engine::configured(QueueImpl::default(), Some(horizon), 0)
    }

    /// Creates an engine whose event queue has room for `cap` pending
    /// events before reallocating. Drivers that know their workload size
    /// up front (e.g. one arrival per job plus periodic timers) use this
    /// to keep the queue from growing incrementally during the run.
    pub fn with_capacity(cap: usize) -> Self {
        Engine::configured(QueueImpl::default(), None, cap)
    }

    /// [`Engine::with_horizon`] and [`Engine::with_capacity`] combined.
    pub fn with_horizon_and_capacity(horizon: SimTime, cap: usize) -> Self {
        Engine::configured(QueueImpl::default(), Some(horizon), cap)
    }

    /// The fully explicit constructor: queue implementation, optional
    /// horizon (`None` = unbounded), and initial queue capacity.
    pub fn configured(queue: QueueImpl, horizon: Option<SimTime>, cap: usize) -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: Backend::with_capacity(queue, cap),
            horizon: horizon.unwrap_or(SimTime::MAX),
            stats: EngineStats::default(),
        }
    }

    /// Which queue implementation this engine runs on.
    pub fn queue_impl(&self) -> QueueImpl {
        self.queue.queue_impl()
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event (or zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configured horizon ([`SimTime::MAX`] when unbounded).
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Run statistics so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// True when no events are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// Events in the past are clamped to `now` (they will still run, after
    /// the events already pending at `now`); events at or past the horizon
    /// are dropped and counted in [`EngineStats::beyond_horizon`].
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let _ = self.schedule_at_tracked(at, event);
    }

    /// Like [`Engine::schedule_at`], but returns a handle that can later
    /// be passed to [`Engine::cancel`]. Returns `None` when the event was
    /// dropped at the horizon (there is nothing to cancel).
    pub fn schedule_at_tracked(&mut self, at: SimTime, event: E) -> Option<EventHandle> {
        let at = at.max(self.now);
        if at >= self.horizon {
            self.stats.beyond_horizon += 1;
            return None;
        }
        self.stats.scheduled += 1;
        let seq = self.queue.push(at, event);
        Some(EventHandle { time: at, seq })
    }

    /// Schedules `event` after the relative delay `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Like [`Engine::schedule_in`], but returns a cancellation handle
    /// (see [`Engine::schedule_at_tracked`]).
    pub fn schedule_in_tracked(&mut self, delay: SimDuration, event: E) -> Option<EventHandle> {
        self.schedule_at_tracked(self.now + delay, event)
    }

    /// Removes a pending event before delivery. Returns `true` when the
    /// handle still referenced a pending event; `false` when it was
    /// already delivered or cancelled (a safe no-op). Cancelled events are
    /// counted in [`EngineStats::cancelled`] and never appear in
    /// [`EngineStats::delivered`] — on either queue implementation, so
    /// cancellation preserves the heap/calendar differential identity.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        let hit = self.queue.cancel(handle.time, handle.seq);
        if hit {
            self.stats.cancelled += 1;
        }
        hit
    }

    /// Schedules `event` to run at the current instant, after everything
    /// already pending at this instant.
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// Pops the earliest event and advances the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop()?;
        debug_assert!(t >= self.now, "event queue went backwards");
        self.now = t;
        self.stats.delivered += 1;
        Some((t, e))
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Drops every pending event (the clock keeps its value).
    ///
    /// Bookkeeping semantics, pinned by regression tests:
    ///
    /// * [`EngineStats::scheduled`] **keeps counting the cleared
    ///   events** — it records how many events were ever accepted by
    ///   `schedule_*`, not how many are still pending or will be
    ///   delivered. After a clear, `scheduled` may permanently exceed
    ///   `delivered` even once the queue drains.
    /// * The underlying [`EventQueue`] keeps its sequence counter, so
    ///   FIFO tie-breaking stays stable across the clear (see
    ///   [`EventQueue::clear`]).
    pub fn clear(&mut self) {
        self.queue.clear();
    }

    /// Captures the engine's complete state — clock, horizon, counters,
    /// pending entries in pop order, and (on the calendar backend) the
    /// adaptive layout parameters. The engine is untouched; feeding the
    /// result to [`Engine::restore_state`] yields an engine whose every
    /// future pop, push and resize decision matches this one's.
    pub fn capture_state(&self) -> EngineSnapshot<E>
    where
        E: Clone,
    {
        let (next_seq, entries, calendar_tuning) = match &self.queue {
            Backend::Heap(q) => (q.next_seq(), q.capture_entries(), None),
            Backend::Calendar(q) => (q.next_seq(), q.capture_entries(), Some(q.tuning())),
        };
        EngineSnapshot {
            now: self.now,
            horizon: self.horizon,
            stats: self.stats,
            queue_impl: self.queue.queue_impl(),
            next_seq,
            entries,
            calendar_tuning,
        }
    }

    /// Rebuilds an engine from a captured [`EngineSnapshot`].
    ///
    /// # Panics
    /// Panics when a calendar snapshot lacks its tuning (an impossible
    /// capture; deserializers validate before calling this).
    pub fn restore_state(snap: EngineSnapshot<E>) -> Self {
        let queue = match snap.queue_impl {
            QueueImpl::Heap => {
                Backend::Heap(EventQueue::restore_entries(snap.next_seq, snap.entries))
            }
            QueueImpl::Calendar => {
                let tuning = snap
                    .calendar_tuning
                    .expect("calendar snapshot carries its tuning");
                Backend::Calendar(CalendarQueue::restore_entries(
                    snap.next_seq,
                    tuning,
                    snap.entries,
                ))
            }
        };
        Engine {
            now: snap.now,
            queue,
            horizon: snap.horizon,
            stats: snap.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_pops() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_at(SimTime::from_secs(2), 2);
        e.schedule_at(SimTime::from_secs(1), 1);
        assert_eq!(e.now(), SimTime::ZERO);
        assert_eq!(e.pop(), Some((SimTime::from_secs(1), 1)));
        assert_eq!(e.now(), SimTime::from_secs(1));
        assert_eq!(e.pop(), Some((SimTime::from_secs(2), 2)));
        assert_eq!(e.now(), SimTime::from_secs(2));
        assert_eq!(e.pop(), None);
        // Popping from an empty queue leaves the clock alone.
        assert_eq!(e.now(), SimTime::from_secs(2));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule_at(SimTime::from_secs(10), "a");
        e.pop();
        e.schedule_at(SimTime::from_secs(3), "late-scheduled");
        let (t, ev) = e.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(10));
        assert_eq!(ev, "late-scheduled");
    }

    #[test]
    fn horizon_drops_far_events() {
        let mut e: Engine<u8> = Engine::with_horizon(SimTime::from_secs(100));
        e.schedule_at(SimTime::from_secs(99), 1);
        e.schedule_at(SimTime::from_secs(100), 2); // at horizon: dropped
        e.schedule_at(SimTime::from_secs(101), 3);
        assert_eq!(e.pending(), 1);
        assert_eq!(e.stats().beyond_horizon, 2);
        assert_eq!(e.pop(), Some((SimTime::from_secs(99), 1)));
        assert!(e.is_idle());
    }

    #[test]
    fn schedule_now_runs_after_pending_at_same_instant() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule_at(SimTime::from_secs(1), "first");
        e.schedule_at(SimTime::from_secs(1), "second");
        let (_, ev) = e.pop().unwrap();
        assert_eq!(ev, "first");
        e.schedule_now("third");
        assert_eq!(e.pop().unwrap().1, "second");
        assert_eq!(e.pop().unwrap().1, "third");
    }

    #[test]
    fn cancel_skips_delivery_on_both_queue_impls() {
        for qi in [QueueImpl::Heap, QueueImpl::Calendar] {
            let mut e: Engine<&str> = Engine::with_queue_impl(qi);
            assert_eq!(e.queue_impl(), qi);
            let h1 = e
                .schedule_at_tracked(SimTime::from_secs(1), "cancelled")
                .unwrap();
            e.schedule_at(SimTime::from_secs(2), "kept");
            assert_eq!(e.pending(), 2);
            assert!(e.cancel(h1));
            assert!(!e.cancel(h1), "handles are single-shot");
            assert_eq!(e.pending(), 1);
            assert_eq!(e.peek_time(), Some(SimTime::from_secs(2)));
            assert_eq!(e.pop(), Some((SimTime::from_secs(2), "kept")));
            assert_eq!(e.pop(), None);
            let s = e.stats();
            assert_eq!((s.scheduled, s.delivered, s.cancelled), (2, 1, 1));
        }
    }

    #[test]
    fn cancel_after_delivery_is_a_safe_noop() {
        for qi in [QueueImpl::Heap, QueueImpl::Calendar] {
            let mut e: Engine<u8> = Engine::with_queue_impl(qi);
            let h = e.schedule_at_tracked(SimTime::from_secs(1), 1).unwrap();
            assert_eq!(e.pop(), Some((SimTime::from_secs(1), 1)));
            assert!(!e.cancel(h));
            assert_eq!(e.stats().cancelled, 0);
        }
    }

    #[test]
    fn tracked_schedule_past_horizon_returns_no_handle() {
        let mut e: Engine<u8> = Engine::with_horizon(SimTime::from_secs(1));
        assert!(e.schedule_at_tracked(SimTime::from_secs(5), 1).is_none());
        assert_eq!(e.stats().beyond_horizon, 1);
    }

    #[test]
    fn capture_restore_resumes_identically_on_both_impls() {
        for qi in [QueueImpl::Heap, QueueImpl::Calendar] {
            let mut e: Engine<u64> = Engine::configured(qi, Some(SimTime::from_secs(5_000)), 8);
            for i in 0..300u64 {
                e.schedule_at(SimTime::from_millis(i * 37 % 20_000), i);
            }
            let h = e
                .schedule_at_tracked(SimTime::from_millis(19_999), 999)
                .unwrap();
            for _ in 0..80 {
                e.pop();
            }
            let snap = e.capture_state();
            assert_eq!(snap.queue_impl, qi);
            assert_eq!(snap.calendar_tuning.is_some(), qi == QueueImpl::Calendar);
            let mut r = Engine::restore_state(snap.clone());
            assert_eq!(r.now(), e.now());
            assert_eq!(r.horizon(), e.horizon());
            assert_eq!(r.stats(), e.stats());
            assert_eq!(r.pending(), e.pending());
            // A persisted handle still cancels after restore.
            let rh = EventHandle::from_parts(h.time(), h.seq());
            assert!(r.cancel(rh));
            assert!(e.cancel(h));
            // Lockstep continuation: schedules and pops stay identical.
            let mut step = 0u64;
            loop {
                let a = e.pop();
                let b = r.pop();
                assert_eq!(a, b);
                let Some((t, _)) = a else { break };
                if step.is_multiple_of(5) {
                    e.schedule_at(t + SimDuration::from_millis(step * 11), 10_000 + step);
                    r.schedule_at(t + SimDuration::from_millis(step * 11), 10_000 + step);
                }
                step += 1;
            }
            assert_eq!(e.stats(), r.stats());
        }
    }

    #[test]
    fn snapshot_is_a_fixed_point_of_capture() {
        let mut e: Engine<u32> = Engine::new();
        for i in 0..50 {
            e.schedule_at(SimTime::from_millis(i as u64 * 97), i);
        }
        e.pop();
        let snap = e.capture_state();
        let r = Engine::restore_state(snap.clone());
        assert_eq!(r.capture_state(), snap);
    }

    #[test]
    fn stats_count_scheduled_and_delivered() {
        let mut e: Engine<u8> = Engine::new();
        for i in 0..10 {
            e.schedule_in(SimDuration::from_millis(i as u64), i);
        }
        while e.pop().is_some() {}
        assert_eq!(e.stats().scheduled, 10);
        assert_eq!(e.stats().delivered, 10);
    }
}
