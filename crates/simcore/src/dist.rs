//! Analytic probability distributions for workload modelling.
//!
//! Grid-workload literature (e.g. Iosup et al., JSSPP'06 — reference \[3\]
//! of the paper) models inter-arrival times, job sizes, and runtimes with
//! a small family of distributions. The reproduction's headline workloads
//! use fixed inter-arrival times, but the workload generator also supports
//! these distributions for the ablation experiments and for
//! background-load modelling.
//!
//! Everything here is implemented from first principles (inverse-CDF or
//! Box–Muller) over [`SimRng`] so the streams are portable and stable.

use crate::rng::SimRng;

/// A distribution over `f64` that can be sampled with a [`SimRng`].
pub trait Distribution {
    /// Draws one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// The distribution's mean, if finite and known in closed form.
    fn mean(&self) -> Option<f64>;
}

/// Degenerate distribution: always `value`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f64);

impl Distribution for Constant {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.0
    }
    fn mean(&self) -> Option<f64> {
        Some(self.0)
    }
}

/// Continuous uniform on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution; panics if the interval is empty or
    /// inverted.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "Uniform requires lo < hi");
        Uniform { lo, hi }
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.f64()
    }
    fn mean(&self) -> Option<f64> {
        Some(0.5 * (self.lo + self.hi))
    }
}

/// Exponential with rate `lambda` (mean `1/lambda`). The canonical model
/// for Poisson arrival processes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Rate parameter (events per unit time).
    pub lambda: f64,
}

impl Exponential {
    /// From a rate; panics unless `lambda > 0`.
    pub fn with_rate(lambda: f64) -> Self {
        assert!(lambda > 0.0, "Exponential rate must be positive");
        Exponential { lambda }
    }

    /// From a mean; panics unless `mean > 0`.
    pub fn with_mean(mean: f64) -> Self {
        Self::with_rate(1.0 / mean)
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        -rng.f64_open0().ln() / self.lambda
    }
    fn mean(&self) -> Option<f64> {
        Some(1.0 / self.lambda)
    }
}

/// Normal via Box–Muller (one value per draw; the antithetic twin is
/// discarded to keep the stream stateless).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Location.
    pub mu: f64,
    /// Scale; must be non-negative.
    pub sigma: f64,
}

impl Normal {
    /// Creates a normal distribution; panics on negative `sigma`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "Normal sigma must be non-negative");
        Normal { mu, sigma }
    }

    fn standard(rng: &mut SimRng) -> f64 {
        let u1 = rng.f64_open0();
        let u2 = rng.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.mu + self.sigma * Self::standard(rng)
    }
    fn mean(&self) -> Option<f64> {
        Some(self.mu)
    }
}

/// Log-normal: `exp(N(mu, sigma))`. The classic heavy-tailed model for
/// parallel-job runtimes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Location of the underlying normal.
    pub mu: f64,
    /// Scale of the underlying normal.
    pub sigma: f64,
}

impl LogNormal {
    /// From underlying-normal parameters.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "LogNormal sigma must be non-negative");
        LogNormal { mu, sigma }
    }

    /// Parameterized by the desired mean and coefficient of variation of
    /// the log-normal itself (not of the underlying normal).
    pub fn with_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(mean > 0.0 && cv >= 0.0);
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        LogNormal {
            mu,
            sigma: sigma2.sqrt(),
        }
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * Normal::standard(rng)).exp()
    }
    fn mean(&self) -> Option<f64> {
        Some((self.mu + 0.5 * self.sigma * self.sigma).exp())
    }
}

/// Weibull with shape `k` and scale `lambda`; models machine availability
/// intervals in multicluster traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    /// Shape parameter.
    pub k: f64,
    /// Scale parameter.
    pub lambda: f64,
}

impl Weibull {
    /// Creates a Weibull distribution; panics unless both parameters are
    /// positive.
    pub fn new(k: f64, lambda: f64) -> Self {
        assert!(
            k > 0.0 && lambda > 0.0,
            "Weibull parameters must be positive"
        );
        Weibull { k, lambda }
    }
}

impl Distribution for Weibull {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.lambda * (-rng.f64_open0().ln()).powf(1.0 / self.k)
    }
    fn mean(&self) -> Option<f64> {
        // lambda * Gamma(1 + 1/k); use the Lanczos approximation.
        Some(self.lambda * gamma(1.0 + 1.0 / self.k))
    }
}

/// Bounded Pareto on `[lo, hi]` with tail index `alpha`; a standard model
/// for heavy-tailed service demands that still need a finite support.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    /// Tail index.
    pub alpha: f64,
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto; panics unless `0 < lo < hi` and `alpha > 0`.
    pub fn new(alpha: f64, lo: f64, hi: f64) -> Self {
        assert!(alpha > 0.0 && lo > 0.0 && lo < hi, "invalid BoundedPareto");
        BoundedPareto { alpha, lo, hi }
    }
}

impl BoundedPareto {
    /// `(lo/hi)^k` evaluated as `exp(k·(ln lo − ln hi))`. The ratio is in
    /// `(0, 1)`, so this never overflows, unlike `lo^k`/`hi^k` which hit
    /// `inf` (and then `inf/inf = NaN`) for large `k` or `hi`.
    fn ratio_pow(&self, k: f64) -> f64 {
        (k * (self.lo.ln() - self.hi.ln())).exp()
    }
}

impl Distribution for BoundedPareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = rng.f64();
        // Inverse CDF of the truncated Pareto, kept in log space:
        //   x = lo · (1 − u·(1 − (lo/hi)^α))^(−1/α)
        // which is algebraically the textbook form but only ever touches
        // the bounded ratio (lo/hi)^α.
        let r = self.ratio_pow(self.alpha);
        let t = 1.0 - u * (1.0 - r);
        self.lo * (-t.ln() / self.alpha).exp()
    }
    fn mean(&self) -> Option<f64> {
        let a = self.alpha;
        let (l, h) = (self.lo, self.hi);
        if (a - 1.0).abs() < 1e-12 {
            // E[X] = lo · (ln hi − ln lo) / (1 − lo/hi) at α = 1.
            Some(l * (h.ln() - l.ln()) / (1.0 - l / h))
        } else {
            // E[X] = α/(α−1) · lo · (1 − (lo/hi)^(α−1)) / (1 − (lo/hi)^α):
            // the closed form rewritten over bounded ratios.
            let ra1 = self.ratio_pow(a - 1.0);
            let ra = self.ratio_pow(a);
            Some(a / (a - 1.0) * l * (1.0 - ra1) / (1.0 - ra))
        }
    }
}

/// Zipf over `{1, …, n}` with exponent `s`; used to skew cluster/file
/// popularity in the Close-to-Files experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    n: usize,
    s: f64,
    /// Precomputed cumulative weights for inverse-CDF sampling.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `{1, …, n}`; panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over an empty support");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { n, s, cdf }
    }

    /// Draws a rank in `{1, …, n}`.
    pub fn sample_rank(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        let i = self.cdf.partition_point(|&c| c <= u);
        (i + 1).min(self.n)
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Exponent.
    pub fn s(&self) -> f64 {
        self.s
    }
}

impl Distribution for Zipf {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.sample_rank(rng) as f64
    }
    fn mean(&self) -> Option<f64> {
        Some(
            (1..=self.n)
                .map(|k| k as f64 / (k as f64).powf(self.s))
                .sum::<f64>()
                / (1..=self.n)
                    .map(|k| 1.0 / (k as f64).powf(self.s))
                    .sum::<f64>(),
        )
    }
}

/// Lanczos approximation of the gamma function (g = 7, n = 9), accurate to
/// ~15 significant digits for positive arguments — plenty for Weibull
/// means in reports.
fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        let t = x + G + 0.5;
        for (i, &c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean(d: &impl Distribution, seed: u64, n: usize) -> f64 {
        let mut rng = SimRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let mut rng = SimRng::seed_from_u64(0);
        let d = Constant(42.0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 42.0);
        }
    }

    #[test]
    fn uniform_stays_in_bounds_and_mean_matches() {
        let d = Uniform::new(10.0, 20.0);
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((10.0..20.0).contains(&x));
        }
        let m = empirical_mean(&d, 2, 100_000);
        assert!((m - 15.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::with_mean(30.0);
        let m = empirical_mean(&d, 3, 200_000);
        assert!((m - 30.0).abs() < 0.5, "mean {m}");
        assert_eq!(d.mean(), Some(30.0));
    }

    #[test]
    fn normal_mean_and_spread() {
        let d = Normal::new(5.0, 2.0);
        let mut rng = SimRng::seed_from_u64(4);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_with_mean_cv_hits_requested_mean() {
        let d = LogNormal::with_mean_cv(100.0, 1.5);
        let m = empirical_mean(&d, 5, 400_000);
        assert!((m - 100.0).abs() < 2.0, "mean {m}");
        assert!((d.mean().unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn weibull_mean_matches_closed_form() {
        let d = Weibull::new(1.5, 50.0);
        let m = empirical_mean(&d, 6, 300_000);
        let closed = d.mean().unwrap();
        assert!((m - closed).abs() / closed < 0.02, "mean {m} vs {closed}");
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let d = Weibull::new(1.0, 25.0);
        assert!((d.mean().unwrap() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let d = BoundedPareto::new(1.2, 1.0, 1000.0);
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..50_000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=1000.0).contains(&x), "sample {x}");
        }
    }

    #[test]
    fn bounded_pareto_mean_matches() {
        let d = BoundedPareto::new(1.5, 1.0, 100.0);
        let m = empirical_mean(&d, 8, 400_000);
        let closed = d.mean().unwrap();
        assert!((m - closed).abs() / closed < 0.03, "mean {m} vs {closed}");
    }

    #[test]
    fn bounded_pareto_survives_extreme_parameters() {
        // Regression: the pre-log-space implementation computed
        // `lo^alpha`/`hi^alpha` directly; with alpha = 400 (hi^alpha =
        // inf) or hi = 1e300 every sample and the mean degenerated to
        // NaN. The log-space form must stay finite and in bounds.
        for d in [
            BoundedPareto::new(400.0, 1.5, 1_000.0),
            BoundedPareto::new(2.5, 1.0, 1e300),
            BoundedPareto::new(0.5, 1.0, 1e12),
        ] {
            let mut rng = SimRng::seed_from_u64(12);
            for _ in 0..10_000 {
                let x = d.sample(&mut rng);
                assert!(x.is_finite(), "sample {x} for {d:?}");
                assert!((d.lo..=d.hi).contains(&x), "sample {x} for {d:?}");
            }
            let mean = d.mean().unwrap();
            assert!(mean.is_finite(), "mean {mean} for {d:?}");
            assert!((d.lo..=d.hi).contains(&mean), "mean {mean} for {d:?}");
        }
        // With a huge tail index virtually all mass sits at `lo`.
        let spiky = BoundedPareto::new(400.0, 1.5, 1_000.0);
        let m = empirical_mean(&spiky, 13, 50_000);
        assert!((m - spiky.mean().unwrap()).abs() < 0.01, "mean {m}");
    }

    #[test]
    fn zipf_ranks_in_support_and_skewed() {
        let d = Zipf::new(10, 1.0);
        let mut rng = SimRng::seed_from_u64(9);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            let r = d.sample_rank(&mut rng);
            assert!((1..=10).contains(&r));
            counts[r - 1] += 1;
        }
        assert!(counts[0] > counts[4] && counts[4] > counts[9], "{counts:?}");
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(5.0) - 24.0).abs() < 1e-8);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }
}
