//! # simcore — deterministic discrete-event simulation engine
//!
//! This crate is the foundation of the reproduction of *Scheduling
//! Malleable Applications in Multicluster Systems* (CLUSTER 2007). Every
//! other crate in the workspace builds on the primitives defined here:
//!
//! * [`SimTime`] / [`SimDuration`] — an integer millisecond clock. Integer
//!   time makes runs bit-reproducible across platforms; a millisecond is
//!   fine-grained enough for the latencies the paper discusses (GRAM
//!   submission seconds, message round-trips tens of milliseconds).
//! * [`EventQueue`] — a priority queue that breaks ties in insertion order,
//!   so simultaneous events execute deterministically.
//! * [`Engine`] — clock + queue + bookkeeping. The engine deliberately does
//!   *not* own the simulated world; callers pop events and dispatch them to
//!   their own state, which keeps borrow checking trivial and lets each
//!   crate define its own event type.
//! * [`SimRng`] and the [`dist`] module — a seeded random-number generator
//!   plus the analytic distributions needed for workload modelling
//!   (exponential, log-normal, Weibull, bounded Pareto, Zipf, …).
//! * [`Generation`] — cheap invalidation tokens for events that may be
//!   superseded (e.g. a job-completion event scheduled before the job was
//!   grown must be ignored once the growth changes the completion time).
//! * [`Periodic`] — helper for fixed-period timers (KIS polling, placement
//!   queue scans, utilization sampling).
//! * [`Trace`] — bounded, near-free-when-disabled event tracing with CSV
//!   export.
//!
//! ## Determinism contract
//!
//! Given the same seed and the same sequence of `schedule` calls, a
//! simulation built on this crate produces bit-identical results: the
//! queue is totally ordered by `(time, sequence number)`, the clock is an
//! integer, and all randomness flows from [`SimRng`]. The integration test
//! suite of the workspace asserts this end-to-end.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod calendar;
mod engine;
mod generation;
mod queue;
mod rng;
mod time;
mod timer;
mod trace;

pub mod dist;

pub use calendar::{CalendarQueue, CalendarTuning};
pub use engine::{Engine, EngineSnapshot, EngineStats, EventHandle, QueueImpl};
pub use generation::Generation;
pub use queue::EventQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use timer::Periodic;
pub use trace::{Trace, TraceEvent};
