//! Seeded randomness.
//!
//! All randomness in a simulation must flow from a single seeded source
//! per run — that is the determinism contract. [`SimRng`] wraps a small,
//! fast, portable PRNG (xoshiro256++ implemented locally so the stream is
//! stable regardless of `rand` version bumps) and exposes the handful of
//! primitive draws the workspace needs. Analytic distributions live in
//! [`crate::dist`] and are parameterized over `SimRng`.

/// Portable seeded PRNG (xoshiro256++).
///
/// The generator is split-friendly: [`SimRng::fork`] derives an
/// independent stream for a subcomponent (e.g. one per cluster's
/// background-load generator) so that adding draws in one component does
/// not perturb another's stream.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64,
    /// the recommended seeding procedure for xoshiro).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent generator for a subcomponent. The `label`
    /// keeps forks with different purposes on different streams even when
    /// forked from identical parent states.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let mut sm = self.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `(0, 1]` — safe as an argument to `ln`.
    pub fn f64_open0(&mut self) -> f64 {
        1.0 - self.f64()
    }

    /// Uniform integer in `[0, bound)` via Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "u64_below(0)");
        // Lemire's multiply-shift with rejection to remove bias.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // low < bound: possible bias zone; reject if below threshold.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64: lo > hi");
        lo + self.u64_below(hi - lo + 1)
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn usize_below(&mut self, bound: usize) -> usize {
        self.u64_below(bound as u64) as usize
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.usize_below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element, if the slice is non-empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.usize_below(xs.len())])
        }
    }

    /// The generator's internal state, for checkpointing. Restoring via
    /// [`SimRng::from_state`] resumes the stream at exactly this
    /// position.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Reconstructs a generator from a captured [`SimRng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        SimRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.f64_open0();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn u64_below_respects_bound_and_hits_all_values() {
        let mut r = SimRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let x = r.u64_below(7);
            assert!(x < 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_is_inclusive() {
        let mut r = SimRng::seed_from_u64(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let x = r.range_u64(5, 8);
            assert!((5..=8).contains(&x));
            lo_seen |= x == 5;
            hi_seen |= x == 8;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        // fork(label) must give distinct streams for distinct labels.
        let mut parent = SimRng::seed_from_u64(11);
        let mut f1 = parent.fork(1);
        let mut f2 = parent.fork(2);
        let matches = (0..64).filter(|_| f1.next_u64() == f2.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = SimRng::seed_from_u64(77);
        for _ in 0..100 {
            a.next_u64();
        }
        let mut b = SimRng::from_state(a.state());
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn mean_of_f64_is_near_half() {
        let mut r = SimRng::seed_from_u64(123);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
