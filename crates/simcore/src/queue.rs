//! The event queue: a binary heap ordered by `(time, sequence)`.
//!
//! Two events scheduled for the same instant pop in the order they were
//! scheduled. This FIFO tie-break is what makes whole-simulation runs
//! reproducible: `BinaryHeap` alone is not stable, and an unstable order
//! among simultaneous events (job arrival vs. poll tick, say) would make
//! results depend on heap internals.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A stable-order priority queue of timestamped events.
///
/// This type is time-agnostic about "now"; pairing it with a clock is the
/// job of [`crate::Engine`]. It is exposed separately so substrates can be
/// unit-tested against a bare queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Inserts `event` at instant `time`. Events inserted at equal times
    /// pop in insertion order.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events but **keeps the sequence counter**:
    /// events pushed after a `clear` still order after anything pushed
    /// before it, so FIFO tie-breaking at equal timestamps remains stable
    /// across the clear. Resetting `next_seq` here would let a post-clear
    /// push overtake the ordering position of a pre-clear push replayed at
    /// the same instant — a reproducibility hazard. The backing
    /// allocation is also retained for reuse.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), "late");
        q.push(SimTime::from_secs(1), "early");
        q.push(SimTime::from_secs(3), "middle");
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.pop().unwrap().1, "middle");
        assert_eq!(q.pop().unwrap().1, "late");
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(7);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn fifo_survives_interleaving_with_other_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(2);
        q.push(t, "a");
        q.push(SimTime::from_secs(1), "x");
        q.push(t, "b");
        q.push(t + SimDuration::from_secs(1), "y");
        q.push(t, "c");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["x", "a", "b", "c", "y"]);
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(42), ());
        q.push(SimTime::from_millis(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(42)));
    }

    #[test]
    fn clear_preserves_stable_ordering() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
        let t = SimTime::from_secs(1);
        q.push(t, 2);
        q.push(t, 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }
}
