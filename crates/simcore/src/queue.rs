//! The event queue: a binary heap ordered by `(time, sequence)`.
//!
//! Two events scheduled for the same instant pop in the order they were
//! scheduled. This FIFO tie-break is what makes whole-simulation runs
//! reproducible: `BinaryHeap` alone is not stable, and an unstable order
//! among simultaneous events (job arrival vs. poll tick, say) would make
//! results depend on heap internals.

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

pub(crate) struct Entry<E> {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A stable-order priority queue of timestamped events.
///
/// This type is time-agnostic about "now"; pairing it with a clock is the
/// job of [`crate::Engine`]. It is exposed separately so substrates can be
/// unit-tested against a bare queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    /// Sequence numbers cancelled while still buried in the heap. A
    /// cancelled entry is dropped lazily when it reaches the top, and the
    /// top is re-drained on every mutation so [`EventQueue::peek_time`]
    /// never observes a dead entry.
    cancelled: HashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: HashSet::new(),
        }
    }

    /// Creates an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            cancelled: HashSet::new(),
        }
    }

    /// Inserts `event` at instant `time` and returns the sequence number
    /// assigned to it. Events inserted at equal times pop in insertion
    /// order.
    pub fn push(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
        seq
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let out = self.heap.pop().map(|Reverse(e)| (e.time, e.event));
        self.drain_cancelled_top();
        out
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sequence number the next [`EventQueue::push`] will assign.
    /// Monotone over the queue's lifetime (it survives
    /// [`EventQueue::clear`]); exposed so differential tests can assert
    /// both queue implementations assign identical sequences.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Cancels the pending event identified by `(time, seq)` — the values
    /// a [`crate::Engine`] event handle carries — and returns whether it
    /// was found. A cancelled event is never popped. The removal is lazy
    /// (a tombstone dropped when the entry surfaces), but the heap top is
    /// always kept live so `peek_time` stays exact.
    ///
    /// Cancelling an event that was already popped returns `false` and
    /// leaves the queue untouched.
    pub fn cancel(&mut self, time: SimTime, seq: u64) -> bool {
        let _ = time; // the heap locates entries by sequence alone
        if self.cancelled.contains(&seq) || !self.heap.iter().any(|Reverse(e)| e.seq == seq) {
            return false;
        }
        self.cancelled.insert(seq);
        self.drain_cancelled_top();
        true
    }

    /// Drops cancelled entries sitting at the heap top, restoring the
    /// invariant that the top (what `peek_time`/`pop` observe first) is a
    /// live event.
    fn drain_cancelled_top(&mut self) {
        while let Some(Reverse(top)) = self.heap.peek() {
            if self.cancelled.remove(&top.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }

    /// Number of cancelled entries still buried in the heap. Tombstones
    /// are invisible to `len`/`pop`/`peek_time` but occupy heap slots; a
    /// checkpoint must know the count so it can assert the captured
    /// entries account for everything live.
    pub fn tombstone_count(&self) -> usize {
        self.cancelled.len()
    }

    /// The pending **live** events in pop order (`(time, seq)`
    /// ascending), tombstones excluded — the canonical form a checkpoint
    /// serializes. The queue itself is untouched.
    pub fn capture_entries(&self) -> Vec<(SimTime, u64, E)>
    where
        E: Clone,
    {
        let mut out: Vec<(SimTime, u64, E)> = self
            .heap
            .iter()
            .filter(|Reverse(e)| !self.cancelled.contains(&e.seq))
            .map(|Reverse(e)| (e.time, e.seq, e.event.clone()))
            .collect();
        out.sort_by_key(|&(t, s, _)| (t, s));
        out
    }

    /// Rebuilds a queue from a captured entry list and sequence counter.
    /// The entries keep their original sequence numbers, so previously
    /// issued `(time, seq)` handles remain cancellable; `next_seq` must
    /// be at least one past every restored sequence.
    pub fn restore_entries(next_seq: u64, entries: Vec<(SimTime, u64, E)>) -> Self {
        debug_assert!(
            entries.iter().all(|&(_, s, _)| s < next_seq),
            "restored sequence numbers must precede next_seq"
        );
        let heap = entries
            .into_iter()
            .map(|(time, seq, event)| Reverse(Entry { time, seq, event }))
            .collect();
        EventQueue {
            heap,
            next_seq,
            cancelled: HashSet::new(),
        }
    }

    /// Drops all pending events but **keeps the sequence counter**:
    /// events pushed after a `clear` still order after anything pushed
    /// before it, so FIFO tie-breaking at equal timestamps remains stable
    /// across the clear. Resetting `next_seq` here would let a post-clear
    /// push overtake the ordering position of a pre-clear push replayed at
    /// the same instant — a reproducibility hazard. The backing
    /// allocation is also retained for reuse.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), "late");
        q.push(SimTime::from_secs(1), "early");
        q.push(SimTime::from_secs(3), "middle");
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.pop().unwrap().1, "middle");
        assert_eq!(q.pop().unwrap().1, "late");
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(7);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn fifo_survives_interleaving_with_other_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(2);
        q.push(t, "a");
        q.push(SimTime::from_secs(1), "x");
        q.push(t, "b");
        q.push(t + SimDuration::from_secs(1), "y");
        q.push(t, "c");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["x", "a", "b", "c", "y"]);
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(42), ());
        q.push(SimTime::from_millis(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(42)));
    }

    #[test]
    fn cancel_is_lazy_but_never_visible() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(3);
        let s_a = q.push(t, "a");
        q.push(t, "b");
        let s_c = q.push(SimTime::from_secs(1), "c");
        // Cancel the current top: it must be drained eagerly so peek_time
        // reflects the next live entry.
        assert!(q.cancel(SimTime::from_secs(1), s_c));
        assert_eq!(q.peek_time(), Some(t));
        // Cancel a buried entry: removed lazily, but len/pop never see it.
        assert!(q.cancel(t, s_a));
        assert!(!q.cancel(t, s_a), "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn capture_skips_tombstones_and_restore_round_trips() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(2);
        q.push(t, "a");
        let s_b = q.push(t, "b");
        q.push(SimTime::from_secs(1), "c");
        assert!(q.cancel(t, s_b));
        assert_eq!(q.tombstone_count(), 1, "b is buried, not drained");
        let entries = q.capture_entries();
        assert_eq!(
            entries.iter().map(|&(_, _, e)| e).collect::<Vec<_>>(),
            vec!["c", "a"],
            "pop order, tombstone excluded"
        );
        let mut r = EventQueue::restore_entries(q.next_seq(), entries);
        assert_eq!(r.next_seq(), q.next_seq());
        assert_eq!(r.tombstone_count(), 0, "tombstones are not carried over");
        let order: Vec<_> = std::iter::from_fn(|| r.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["c", "a"]);
        // Sequence numbering continues from where the original left off:
        // a post-restore push at the same instant pops after "a".
        let mut r2 = EventQueue::restore_entries(q.next_seq(), q.capture_entries());
        r2.push(t, "d");
        let order: Vec<_> = std::iter::from_fn(|| r2.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["c", "a", "d"]);
    }

    #[test]
    fn clear_preserves_stable_ordering() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
        let t = SimTime::from_secs(1);
        q.push(t, 2);
        q.push(t, 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }
}
