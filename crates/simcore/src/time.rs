//! Integer simulation time.
//!
//! The clock counts milliseconds since the start of the simulation in a
//! `u64`. That covers ~584 million years of simulated time, is cheap to
//! copy and compare, and — unlike a floating-point clock — is associative
//! under addition, which the determinism contract relies on.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant in simulated time (milliseconds since simulation
/// start).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

/// A span of simulated time (milliseconds).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Builds an instant from whole seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1000)
    }

    /// Builds an instant from fractional seconds, rounding to the nearest
    /// millisecond. Negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_to_millis(s))
    }

    /// Milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only;
    /// never feed this back into the clock).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// The span from `earlier` to `self`, saturating at zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The largest representable duration; used as the "maximally stale"
    /// age of information that has never been refreshed.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1000)
    }

    /// Builds a span from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// Builds a span from fractional seconds, rounding to the nearest
    /// millisecond. Negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(secs_to_millis(s))
    }

    /// Length of the span in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Length of the span in fractional seconds (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// True when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

fn secs_to_millis(s: f64) -> u64 {
    if !s.is_finite() || s <= 0.0 {
        return 0;
    }
    // Round half-up; the cast saturates at u64::MAX for huge values.
    (s * 1000.0).round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs <= self, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ms", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(3), SimTime::from_millis(3000));
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimTime::from_secs_f64(1.5), SimTime::from_millis(1500));
        assert_eq!(
            SimDuration::from_secs_f64(0.0015),
            SimDuration::from_millis(2)
        );
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-4.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
        assert_eq!((t + d).checked_since(t), Some(d));
        assert_eq!(t.checked_since(t + d), None);
    }

    #[test]
    fn saturation_at_the_top() {
        let t = SimTime::MAX;
        assert_eq!(t + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration::from_millis(u64::MAX).saturating_mul(3),
            SimDuration::from_millis(u64::MAX)
        );
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_millis(999) < SimTime::from_secs(1));
        assert!(SimDuration::from_mins(1) > SimDuration::from_secs(59));
    }

    #[test]
    fn display_is_in_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250s");
    }
}
