//! Lightweight event tracing.
//!
//! A simulation bug usually shows up as a *sequence* problem — an offer
//! sent to a job that had already completed, a completion firing during
//! a reconfiguration. [`Trace`] records timestamped, categorized entries
//! with near-zero cost when disabled (the detail string is built lazily),
//! bounded memory when enabled, and CSV export for timeline tools.
//!
//! The scheduler world records every job-lifecycle transition and
//! malleability operation when tracing is enabled; see
//! `koala::World::enable_trace`.

use std::fmt::Write as _;

use crate::time::SimTime;

/// One trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// Category label (e.g. `"place"`, `"grow"`, `"complete"`).
    pub category: &'static str,
    /// The subject entity (job id, cluster id, …).
    pub subject: u64,
    /// Free-form detail.
    pub detail: String,
}

/// A bounded trace recorder.
///
/// Disabled recorders ignore everything; enabled ones keep the most
/// recent `capacity` entries (older entries are dropped from the front
/// in batches, keeping amortized O(1) appends).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl Trace {
    /// A recorder that ignores everything (the default).
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// A recorder keeping the most recent `capacity` entries.
    pub fn enabled(capacity: usize) -> Self {
        Trace {
            enabled: true,
            capacity: capacity.max(1),
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an entry; `detail` is only evaluated when enabled.
    pub fn record(
        &mut self,
        at: SimTime,
        category: &'static str,
        subject: u64,
        detail: impl FnOnce() -> String,
    ) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            // Drop the oldest half in one move to amortize.
            let keep = self.capacity / 2;
            let cut = self.events.len() - keep;
            self.dropped += cut as u64;
            self.events.drain(..cut);
        }
        self.events.push(TraceEvent {
            at,
            category,
            subject,
            detail: detail(),
        });
    }

    /// The recorded entries, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Entries of one category.
    pub fn of_category<'a>(&'a self, category: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.category == category)
    }

    /// Entries concerning one subject.
    pub fn of_subject(&self, subject: u64) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.subject == subject)
    }

    /// Entries dropped due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// CSV rendering (`t_seconds,category,subject,detail`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_seconds,category,subject,detail\n");
        for e in &self.events {
            let detail = if e.detail.contains([',', '"', '\n']) {
                format!("\"{}\"", e.detail.replace('"', "\"\""))
            } else {
                e.detail.clone()
            };
            let _ = writeln!(
                out,
                "{:.3},{},{},{}",
                e.at.as_secs_f64(),
                e.category,
                e.subject,
                detail
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn disabled_records_nothing_and_skips_detail() {
        let mut tr = Trace::disabled();
        let mut evaluated = false;
        tr.record(t(1), "x", 0, || {
            evaluated = true;
            "detail".into()
        });
        assert!(tr.events().is_empty());
        assert!(!evaluated, "detail closure must not run when disabled");
    }

    #[test]
    fn enabled_records_in_order() {
        let mut tr = Trace::enabled(16);
        tr.record(t(1), "place", 7, || "J7 on C0".into());
        tr.record(t(2), "grow", 7, || "+4".into());
        assert_eq!(tr.events().len(), 2);
        assert_eq!(tr.events()[0].category, "place");
        assert_eq!(tr.of_subject(7).count(), 2);
        assert_eq!(tr.of_category("grow").count(), 1);
    }

    #[test]
    fn capacity_bound_drops_oldest() {
        let mut tr = Trace::enabled(8);
        for i in 0..20u64 {
            tr.record(t(i), "tick", i, || format!("{i}"));
        }
        assert!(tr.events().len() <= 8);
        assert!(tr.dropped() > 0);
        // The newest entry always survives.
        assert_eq!(tr.events().last().unwrap().subject, 19);
        // And order is preserved.
        let subjects: Vec<u64> = tr.events().iter().map(|e| e.subject).collect();
        let mut sorted = subjects.clone();
        sorted.sort_unstable();
        assert_eq!(subjects, sorted);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut tr = Trace::enabled(4);
        tr.record(t(1), "msg", 1, || "a,b".into());
        let csv = tr.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.starts_with("t_seconds,category"));
    }
}
