//! A calendar (bucket) queue: the O(1)-amortized alternative to the
//! binary-heap [`EventQueue`](crate::EventQueue).
//!
//! The timeline is divided into fixed-width *days*; day `d` covers
//! `[d·width, (d+1)·width)` milliseconds and hashes onto bucket
//! `d mod nbuckets`, so the bucket array is a *year* of `nbuckets · width`
//! milliseconds that wraps around. Each bucket keeps its entries sorted by
//! `(time, seq)` — because [`CalendarQueue::push`] assigns monotonically
//! increasing sequence numbers, sorted insertion is a back-of-the-bucket
//! append in the common case, and FIFO order among same-instant events is
//! preserved *exactly*: two events at the same instant land in the same
//! bucket and sort by sequence, which is insertion order. The pop order is
//! therefore provably identical to the heap's `(time, seq)` order; the
//! differential suite in `tests/queue_differential.rs` drives both
//! implementations in lockstep to pin this.
//!
//! Popping scans days forward from a cursor. The cursor invariant — it
//! never sits past the earliest pending event's day — holds because pops
//! move it to the popped event's day (the global minimum at that moment)
//! and pushes pull it back when an earlier event arrives. If a full year
//! passes without a hit (every pending event is far in the future), a
//! direct search over the bucket heads finds the minimum and teleports the
//! cursor to it.
//!
//! The day width adapts: whenever the queue grows past `2·nbuckets`
//! entries (or shrinks below a quarter), the bucket array is resized and
//! the width is recomputed from the *inter-event gap statistics* of the
//! live entries — the mean gap `(max − min) / len`, clamped to at least
//! one tick — so a day holds about one event regardless of whether the
//! workload spaces events by milliseconds or hours.
//!
//! Size-triggered resizes alone are not enough: a simulator in steady
//! state (pop one, push one) never crosses the length thresholds, so a
//! stale width would pile every live event into one or two buckets and
//! degrade each operation to a linear scan. Pushing into a bucket
//! holding far more than its fair share therefore also triggers a
//! rebuild at the *same* bucket count — re-deriving the width from the
//! current gap statistics — rate-limited to one rebuild per `len`
//! pushes so adversarial mixes (e.g. thousands of events at one
//! instant, which no width can spread) amortize to O(1) per operation.

use std::collections::VecDeque;

use crate::queue::Entry;
use crate::time::SimTime;

/// Buckets never shrink below this (kept a power of two so the day→bucket
/// map is a mask).
const MIN_BUCKETS: usize = 4;

/// Day width used before the first statistics-driven resize: one simulated
/// second, the order of the schedulers' periodic timers.
const INITIAL_WIDTH_MS: u64 = 1_000;

/// The calendar's adaptive-layout parameters, exposed for checkpointing.
///
/// The bucket count, day width, scan cursor and resize rate-limiter are
/// all *history-dependent* — they reflect the resize decisions made along
/// the exact push/pop trajectory — so a faithful restore must reinstate
/// them verbatim rather than rebuild from entry statistics: a rebuilt
/// width would legally differ, and while the pop *order* would survive
/// (it never depends on layout), the subsequent resize trajectory would
/// diverge from the uninterrupted queue's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalendarTuning {
    /// Number of buckets (always a power of two, ≥ 4).
    pub buckets: usize,
    /// Day width in milliseconds (≥ 1).
    pub width_ms: u64,
    /// The day the pop scan starts from.
    pub cursor_day: u64,
    /// Pushes since the last resize (the overload-rebuild rate limiter).
    pub pushes_since_resize: usize,
}

/// A calendar-queue implementation of the stable event queue.
///
/// API-compatible with [`EventQueue`](crate::EventQueue) — including the
/// [`clear`](CalendarQueue::clear) semantics (the sequence counter and the
/// backing allocation survive) — so the two can be swapped behind
/// [`Engine`](crate::Engine) and differentially tested against each other.
pub struct CalendarQueue<E> {
    /// `buckets.len()` is always a power of two.
    buckets: Vec<VecDeque<Entry<E>>>,
    /// Day width in milliseconds (≥ 1).
    width: u64,
    /// Live entry count across all buckets.
    len: usize,
    next_seq: u64,
    /// The day the pop scan starts from; invariant: no pending entry has
    /// an earlier day.
    cursor_day: u64,
    /// Pushes since the last resize; rate-limits the bucket-overload
    /// width rebuild (see the module docs).
    pushes_since_resize: usize,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue sized for about `cap` pending events: the
    /// bucket count starts near `cap` (clamped to at least
    /// `MIN_BUCKETS`), so a driver that knows its steady-state queue depth
    /// avoids the first few doubling resizes. `cap == 0` is valid and
    /// simply starts from the minimum bucket count.
    pub fn with_capacity(cap: usize) -> Self {
        let n = cap.next_power_of_two().clamp(MIN_BUCKETS, 1 << 22);
        CalendarQueue {
            buckets: (0..n).map(|_| VecDeque::new()).collect(),
            width: INITIAL_WIDTH_MS,
            len: 0,
            next_seq: 0,
            cursor_day: 0,
            pushes_since_resize: 0,
        }
    }

    fn day_of(&self, t: SimTime) -> u64 {
        t.as_millis() / self.width
    }

    fn bucket_of_day(&self, day: u64) -> usize {
        (day & (self.buckets.len() as u64 - 1)) as usize
    }

    /// Inserts `event` at instant `time` and returns the sequence number
    /// assigned to it. Events inserted at equal times pop in insertion
    /// order.
    pub fn push(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let day = self.day_of(time);
        if self.len == 0 || day < self.cursor_day {
            self.cursor_day = day;
        }
        let b = self.insert(Entry { time, seq, event });
        self.len += 1;
        self.pushes_since_resize += 1;
        if self.len > self.buckets.len() * 2 {
            self.resize(self.buckets.len() * 2);
        } else if self.buckets[b].len() > 32
            && self.buckets[b].len() * 4 > self.len
            && self.pushes_since_resize >= self.len
        {
            // Width degeneracy: a steady-state queue never crosses the
            // length thresholds, so the width can go stale and funnel
            // the whole queue into one bucket. Rebuild at the same
            // bucket count to re-derive the width (rate-limited — see
            // the module docs).
            self.resize(self.buckets.len());
        }
        seq
    }

    /// Sorted insertion by `(time, seq)`. Sequences are assigned
    /// monotonically, so an in-order push lands at the back in O(1); the
    /// backward scan only walks when an earlier-time event arrives late.
    /// Returns the index of the bucket the entry landed in.
    fn insert(&mut self, entry: Entry<E>) -> usize {
        let b = self.bucket_of_day(entry.time.as_millis() / self.width);
        let bucket = &mut self.buckets[b];
        let key = (entry.time, entry.seq);
        let mut idx = bucket.len();
        while idx > 0 {
            let prev = &bucket[idx - 1];
            if (prev.time, prev.seq) < key {
                break;
            }
            idx -= 1;
        }
        bucket.insert(idx, entry);
        b
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        let mut day = self.cursor_day;
        for _ in 0..self.buckets.len() {
            let b = self.bucket_of_day(day);
            if let Some(head) = self.buckets[b].front() {
                if head.time.as_millis() / self.width == day {
                    let e = self.buckets[b].pop_front().expect("head exists");
                    self.cursor_day = day;
                    self.len -= 1;
                    self.maybe_shrink();
                    return Some((e.time, e.event));
                }
            }
            match day.checked_add(1) {
                Some(d) => day = d,
                None => break,
            }
        }
        // A whole year without a hit: every pending event is beyond the
        // current year. Direct search over the bucket heads (each bucket is
        // sorted, so its head is its minimum).
        let (best, _, _) = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.front().map(|h| (i, h.time, h.seq)))
            .min_by_key(|&(_, t, s)| (t, s))
            .expect("len > 0 implies a pending entry");
        let e = self.buckets[best].pop_front().expect("head exists");
        self.cursor_day = self.day_of(e.time);
        self.len -= 1;
        self.maybe_shrink();
        Some((e.time, e.event))
    }

    /// Timestamp of the earliest pending event, if any. Read-only version
    /// of the [`CalendarQueue::pop`] scan (the cursor does not move).
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        let mut day = self.cursor_day;
        for _ in 0..self.buckets.len() {
            let b = self.bucket_of_day(day);
            if let Some(head) = self.buckets[b].front() {
                if head.time.as_millis() / self.width == day {
                    return Some(head.time);
                }
            }
            match day.checked_add(1) {
                Some(d) => day = d,
                None => break,
            }
        }
        self.buckets
            .iter()
            .filter_map(|b| b.front().map(|h| (h.time, h.seq)))
            .min()
            .map(|(t, _)| t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The sequence number the next [`CalendarQueue::push`] will assign;
    /// see [`EventQueue::next_seq`](crate::EventQueue::next_seq).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Cancels the pending event identified by `(time, seq)` and returns
    /// whether it was found. Unlike the heap's lazy tombstones, the
    /// calendar removes the entry directly: the bucket is located from
    /// `time`, the entry by its unique sequence number.
    pub fn cancel(&mut self, time: SimTime, seq: u64) -> bool {
        let b = self.bucket_of_day(self.day_of(time));
        let Some(idx) = self.buckets[b]
            .iter()
            .position(|e| e.seq == seq && e.time == time)
        else {
            return false;
        };
        self.buckets[b].remove(idx);
        self.len -= 1;
        true
    }

    /// Drops all pending events but **keeps the sequence counter** (FIFO
    /// tie-breaking stays stable across the clear) and the bucket
    /// allocations — the same contract as
    /// [`EventQueue::clear`](crate::EventQueue::clear).
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
        self.cursor_day = 0;
    }

    /// The current adaptive-layout parameters (see [`CalendarTuning`]).
    pub fn tuning(&self) -> CalendarTuning {
        CalendarTuning {
            buckets: self.buckets.len(),
            width_ms: self.width,
            cursor_day: self.cursor_day,
            pushes_since_resize: self.pushes_since_resize,
        }
    }

    /// The pending events in pop order (`(time, seq)` ascending) — the
    /// canonical form a checkpoint serializes. The queue is untouched.
    pub fn capture_entries(&self) -> Vec<(SimTime, u64, E)>
    where
        E: Clone,
    {
        let mut out: Vec<(SimTime, u64, E)> = self
            .buckets
            .iter()
            .flatten()
            .map(|e| (e.time, e.seq, e.event.clone()))
            .collect();
        out.sort_by_key(|&(t, s, _)| (t, s));
        out
    }

    /// Rebuilds a queue from a captured entry list, sequence counter and
    /// [`CalendarTuning`]. The tuning is reinstated **verbatim** and the
    /// entries are placed by sorted insertion only — none of `push`'s
    /// growth/overload resize heuristics fire, so the restored queue's
    /// layout (and therefore its future resize trajectory) is exactly the
    /// captured queue's.
    ///
    /// # Panics
    /// Panics when the tuning is not a power-of-two bucket count or the
    /// width is zero (a corrupt checkpoint; callers validate first).
    pub fn restore_entries(
        next_seq: u64,
        tuning: CalendarTuning,
        entries: Vec<(SimTime, u64, E)>,
    ) -> Self {
        assert!(
            tuning.buckets.is_power_of_two() && tuning.buckets >= MIN_BUCKETS,
            "calendar bucket count must be a power of two ≥ {MIN_BUCKETS}"
        );
        assert!(tuning.width_ms >= 1, "calendar day width must be ≥ 1 ms");
        debug_assert!(
            entries.iter().all(|&(_, s, _)| s < next_seq),
            "restored sequence numbers must precede next_seq"
        );
        let mut q = CalendarQueue {
            buckets: (0..tuning.buckets).map(|_| VecDeque::new()).collect(),
            width: tuning.width_ms,
            len: 0,
            next_seq,
            cursor_day: tuning.cursor_day,
            pushes_since_resize: tuning.pushes_since_resize,
        };
        for (time, seq, event) in entries {
            q.insert(Entry { time, seq, event });
            q.len += 1;
        }
        q
    }

    fn maybe_shrink(&mut self) {
        if self.len > 0 && self.buckets.len() > MIN_BUCKETS && self.len < self.buckets.len() / 4 {
            self.resize(self.buckets.len() / 2);
        }
    }

    /// Rebuilds the bucket array at `new_n` buckets with a day width
    /// recomputed from the live entries' inter-event gap statistics: the
    /// mean gap `(max − min) / len`, clamped to ≥ 1 ms. Entries keep their
    /// `(time, seq)` keys, so re-inserting them sorted leaves the pop
    /// order untouched.
    fn resize(&mut self, new_n: usize) {
        let new_n = new_n.next_power_of_two().max(MIN_BUCKETS);
        let mut min_t = u64::MAX;
        let mut max_t = 0u64;
        for bucket in &self.buckets {
            for e in bucket {
                let ms = e.time.as_millis();
                min_t = min_t.min(ms);
                max_t = max_t.max(ms);
            }
        }
        let span = max_t.saturating_sub(min_t);
        self.width = (span / self.len.max(1) as u64).max(1);
        self.pushes_since_resize = 0;
        let old = std::mem::replace(
            &mut self.buckets,
            (0..new_n).map(|_| VecDeque::new()).collect(),
        );
        for mut bucket in old {
            for e in bucket.drain(..) {
                self.insert(e);
            }
        }
        self.cursor_day = min_t / self.width;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order_across_resizes() {
        let mut q = CalendarQueue::new();
        // Push enough descending-time events to force growth resizes and
        // the late-insertion path.
        for i in (0..200u64).rev() {
            q.push(SimTime::from_secs(i * 7), i);
        }
        for i in 0..200u64 {
            assert_eq!(q.pop().unwrap().1, i);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = CalendarQueue::new();
        let t = SimTime::from_secs(7);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn far_future_events_use_direct_search() {
        let mut q = CalendarQueue::new();
        // One event a decade out: beyond any initial year, so the first
        // pop must fall through to the head search.
        q.push(SimTime::from_secs(315_000_000), "far");
        q.push(SimTime::from_secs(630_000_000), "farther");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(315_000_000)));
        assert_eq!(q.pop().unwrap().1, "far");
        assert_eq!(q.pop().unwrap().1, "farther");
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_pushes_and_pops_stay_ordered() {
        let mut q = CalendarQueue::new();
        let t = SimTime::from_secs(2);
        q.push(t, "a");
        q.push(SimTime::from_secs(1), "x");
        q.push(t, "b");
        q.push(t + SimDuration::from_secs(1), "y");
        q.push(t, "c");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["x", "a", "b", "c", "y"]);
    }

    #[test]
    fn push_earlier_than_cursor_is_found() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_secs(100), "later");
        assert_eq!(q.pop().unwrap().1, "later");
        // The raw queue (unlike the Engine) accepts pushes in the past of
        // the last pop; the cursor must rewind.
        q.push(SimTime::from_secs(1), "past");
        q.push(SimTime::from_secs(200), "future");
        assert_eq!(q.pop().unwrap().1, "past");
        assert_eq!(q.pop().unwrap().1, "future");
    }

    #[test]
    fn clear_keeps_sequence_counter_and_capacity() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        let seq_before = q.next_seq();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.next_seq(), seq_before, "clear must not reset sequences");
        let t = SimTime::from_secs(1);
        q.push(t, 3);
        q.push(t, 4);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
    }

    #[test]
    fn cancel_removes_exactly_the_named_event() {
        let mut q = CalendarQueue::new();
        let t = SimTime::from_secs(5);
        let s1 = q.push(t, "a");
        q.push(t, "b");
        assert!(q.cancel(t, s1));
        assert!(!q.cancel(t, s1), "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn restore_reinstates_tuning_and_trajectory() {
        // Drive a queue through growth resizes, capture it mid-stream,
        // restore, then continue both copies in lockstep: pops, tuning
        // and sequence numbering must stay identical — the restored
        // queue resumes the *same* adaptive trajectory.
        let mut q = CalendarQueue::new();
        for i in 0..500u64 {
            q.push(SimTime::from_millis(i * 997 % 40_000), i);
        }
        for _ in 0..123 {
            q.pop();
        }
        let tuning = q.tuning();
        let mut r = CalendarQueue::restore_entries(q.next_seq(), tuning, q.capture_entries());
        assert_eq!(r.tuning(), tuning, "tuning is reinstated verbatim");
        assert_eq!(r.len(), q.len());
        assert_eq!(r.next_seq(), q.next_seq());
        for i in 500..1200u64 {
            let t = SimTime::from_millis(40_000 + i * 131 % 90_000);
            assert_eq!(q.push(t, i), r.push(t, i));
            if i % 3 == 0 {
                let (qt, qe) = q.pop().unwrap();
                let (rt, re) = r.pop().unwrap();
                assert_eq!((qt, qe), (rt, re));
            }
            assert_eq!(q.tuning(), r.tuning(), "resize trajectory diverged");
        }
        while let Some(a) = q.pop() {
            assert_eq!(Some(a), r.pop());
        }
        assert!(r.is_empty());
    }

    #[test]
    fn capture_lists_entries_in_pop_order() {
        let mut q = CalendarQueue::new();
        let t = SimTime::from_secs(3);
        q.push(t, "b1");
        q.push(SimTime::from_secs(1), "a");
        q.push(t, "b2");
        let got: Vec<_> = q.capture_entries().into_iter().map(|(_, _, e)| e).collect();
        assert_eq!(got, vec!["a", "b1", "b2"]);
        assert_eq!(q.len(), 3, "capture is read-only");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn restore_rejects_corrupt_bucket_count() {
        let tuning = CalendarTuning {
            buckets: 3,
            width_ms: 1,
            cursor_day: 0,
            pushes_since_resize: 0,
        };
        CalendarQueue::<()>::restore_entries(0, tuning, Vec::new());
    }

    #[test]
    fn shrink_resize_keeps_order() {
        let mut q = CalendarQueue::with_capacity(1024);
        for i in 0..4096u64 {
            q.push(SimTime::from_millis(i * 13), i);
        }
        // Drain most of it so shrink resizes trigger, interleaving a few
        // fresh pushes to exercise post-shrink insertion.
        for i in 0..4096u64 {
            assert_eq!(q.pop().unwrap().1, i);
        }
        assert!(q.is_empty());
    }
}
