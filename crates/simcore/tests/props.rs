//! Property-based tests for the simulation engine's core guarantees.

use proptest::prelude::*;
use simcore::dist::{BoundedPareto, Distribution, Exponential, LogNormal, Uniform, Weibull};
use simcore::{Engine, EventQueue, Periodic, SimDuration, SimRng, SimTime};

proptest! {
    /// The event queue pops in exactly the order of a stable sort by time.
    #[test]
    fn queue_matches_stable_sort(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_millis(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().copied().enumerate().map(|(i, t)| (t, i)).collect();
        expected.sort_by_key(|&(t, i)| (t, i)); // stable by construction
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_millis(), i));
        }
        prop_assert_eq!(popped, expected);
    }

    /// The engine clock never goes backwards and delivers every event
    /// scheduled before the horizon.
    #[test]
    fn engine_clock_is_monotone(
        times in prop::collection::vec(0u64..100_000, 1..200),
        horizon in 1_000u64..200_000,
    ) {
        let mut e: Engine<usize> = Engine::with_horizon(SimTime::from_millis(horizon));
        let expected = times.iter().filter(|&&t| t < horizon).count();
        for (i, &t) in times.iter().enumerate() {
            e.schedule_at(SimTime::from_millis(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut delivered = 0;
        while let Some((t, _)) = e.pop() {
            prop_assert!(t >= last);
            last = t;
            delivered += 1;
        }
        prop_assert_eq!(delivered, expected);
        prop_assert_eq!(e.stats().delivered as usize, expected);
    }

    /// Periodic timers always return grid points strictly in the future.
    #[test]
    fn periodic_next_is_on_grid_and_future(
        start in 0u64..10_000,
        period in 1u64..5_000,
        now in 0u64..100_000,
    ) {
        let p = Periodic::new(SimTime::from_millis(start), SimDuration::from_millis(period));
        let now = SimTime::from_millis(now);
        let next = p.next_after(now);
        prop_assert!(next > now);
        let offset = next.as_millis().checked_sub(start.min(next.as_millis())).unwrap();
        if next.as_millis() >= start {
            prop_assert_eq!(offset % period, 0, "next tick must be on the grid");
        }
    }

    /// Every distribution produces finite, in-range samples for any seed.
    #[test]
    fn distributions_produce_finite_samples(seed in any::<u64>()) {
        let mut rng = SimRng::seed_from_u64(seed);
        let u = Uniform::new(5.0, 10.0);
        let e = Exponential::with_mean(100.0);
        let l = LogNormal::with_mean_cv(50.0, 2.0);
        let w = Weibull::new(1.5, 30.0);
        let bp = BoundedPareto::new(1.1, 2.0, 500.0);
        for _ in 0..100 {
            let x = u.sample(&mut rng);
            prop_assert!((5.0..10.0).contains(&x));
            let x = e.sample(&mut rng);
            prop_assert!(x.is_finite() && x >= 0.0);
            let x = l.sample(&mut rng);
            prop_assert!(x.is_finite() && x > 0.0);
            let x = w.sample(&mut rng);
            prop_assert!(x.is_finite() && x >= 0.0);
            let x = bp.sample(&mut rng);
            prop_assert!((2.0..=500.0).contains(&x));
        }
    }

    /// `u64_below` is unbiased enough to hit every residue and never
    /// exceeds its bound.
    #[test]
    fn rng_bounds_hold(seed in any::<u64>(), bound in 1u64..1_000) {
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(rng.u64_below(bound) < bound);
        }
    }

    /// Forked streams never reproduce their sibling's output prefix.
    #[test]
    fn forks_diverge(seed in any::<u64>()) {
        let mut parent = SimRng::seed_from_u64(seed);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        let equal = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        prop_assert!(equal < 4, "sibling forks should not track each other");
    }
}
