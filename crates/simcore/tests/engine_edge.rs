//! Edge-case coverage for `simcore::Engine` beyond the module's unit tests:
//! horizon boundary behaviour, same-timestamp FIFO stability under
//! interleaved scheduling, and `EngineStats` counter accounting across
//! mixed operation sequences.

use simcore::{Engine, EngineStats, SimDuration, SimTime};

#[test]
fn zero_horizon_drops_everything_including_clamped_events() {
    let mut e: Engine<u32> = Engine::with_horizon(SimTime::ZERO);
    e.schedule_at(SimTime::ZERO, 1);
    e.schedule_now(2);
    e.schedule_in(SimDuration::from_secs(5), 3);
    assert!(e.is_idle());
    assert_eq!(e.pop(), None);
    assert_eq!(
        e.stats(),
        EngineStats {
            delivered: 0,
            scheduled: 0,
            beyond_horizon: 3,
            cancelled: 0
        }
    );
}

#[test]
fn horizon_is_exclusive_one_tick_before_is_kept() {
    let h = SimTime::from_millis(1_000);
    let mut e: Engine<&str> = Engine::with_horizon(h);
    e.schedule_at(SimTime::from_millis(999), "kept");
    e.schedule_at(SimTime::from_millis(1_000), "dropped-at");
    e.schedule_at(SimTime::from_millis(1_001), "dropped-past");
    assert_eq!(e.pending(), 1);
    assert_eq!(e.pop(), Some((SimTime::from_millis(999), "kept")));
    assert_eq!(e.stats().beyond_horizon, 2);
}

#[test]
fn clamping_past_events_can_push_them_over_the_horizon() {
    // A past-time event is clamped to `now`; when `now` has already reached
    // the horizon the clamped event must be dropped, not delivered.
    let mut e: Engine<&str> = Engine::with_horizon(SimTime::from_secs(10));
    e.schedule_at(SimTime::from_secs(9), "advance");
    e.pop();
    assert_eq!(e.now(), SimTime::from_secs(9));
    e.schedule_at(SimTime::from_secs(1), "clamped-ok"); // clamps to 9 < 10: kept
    assert_eq!(e.pending(), 1);
    e.pop();
    // Move the clock to exactly one tick before the horizon, then confirm a
    // same-instant reschedule still fits while anything later is dropped.
    e.schedule_at(SimTime::from_millis(9_999), "edge");
    e.pop();
    e.schedule_now("still-fits");
    e.schedule_in(SimDuration::from_millis(1), "at-horizon");
    assert_eq!(e.pending(), 1);
    assert_eq!(e.pop().unwrap().1, "still-fits");
    assert_eq!(e.stats().beyond_horizon, 1);
}

#[test]
fn unbounded_engine_never_counts_horizon_drops() {
    let mut e: Engine<u64> = Engine::new();
    assert_eq!(e.horizon(), SimTime::MAX);
    for i in 0..100u64 {
        e.schedule_at(SimTime::from_secs(i * 1_000_000), i);
    }
    while e.pop().is_some() {}
    assert_eq!(e.stats().beyond_horizon, 0);
    assert_eq!(e.stats().delivered, 100);
}

#[test]
fn same_timestamp_events_pop_in_insertion_order_at_scale() {
    let t = SimTime::from_secs(42);
    let mut e: Engine<usize> = Engine::new();
    // Interleave two instants to make sure stability is per-timestamp, not
    // global insertion order.
    for i in 0..500 {
        e.schedule_at(t, i);
        e.schedule_at(t + SimDuration::from_secs(1), 1_000 + i);
    }
    let mut popped = Vec::with_capacity(1_000);
    while let Some((_, i)) = e.pop() {
        popped.push(i);
    }
    let expected: Vec<usize> = (0..500).chain(1_000..1_500).collect();
    assert_eq!(popped, expected);
}

#[test]
fn schedule_now_during_same_instant_processing_stays_fifo() {
    // While draining instant T, newly scheduled same-instant work must land
    // after everything already pending at T — even when repeated.
    let mut e: Engine<u32> = Engine::new();
    e.schedule_at(SimTime::from_secs(1), 0);
    e.schedule_at(SimTime::from_secs(1), 1);
    let mut order = Vec::new();
    while let Some((_, i)) = e.pop() {
        order.push(i);
        if i < 2 {
            e.schedule_now(i + 10); // 10, 11 queue behind 1 and each other
        }
    }
    assert_eq!(order, vec![0, 1, 10, 11]);
    assert_eq!(
        e.now(),
        SimTime::from_secs(1),
        "clock never left the instant"
    );
}

#[test]
fn stats_balance_scheduled_drops_and_clears() {
    let mut e: Engine<u32> = Engine::with_horizon(SimTime::from_secs(60));
    let mut attempts = 0u64;
    let mut expect_dropped = 0u64;
    for i in 0..50u64 {
        let t = SimTime::from_secs(i * 2); // 0, 2, …, 98: half beyond horizon
        attempts += 1;
        if t >= SimTime::from_secs(60) {
            expect_dropped += 1;
        }
        e.schedule_at(t, i as u32);
    }
    let s = e.stats();
    assert_eq!(s.scheduled + s.beyond_horizon, attempts);
    assert_eq!(s.beyond_horizon, expect_dropped);
    assert_eq!(e.pending() as u64, s.scheduled);

    // Deliver a few, then clear: delivered/scheduled must be preserved and
    // pending events must not leak into `delivered`.
    for _ in 0..5 {
        e.pop().unwrap();
    }
    e.clear();
    assert!(e.is_idle());
    let s = e.stats();
    assert_eq!(s.delivered, 5);
    assert_eq!(s.scheduled + s.beyond_horizon, attempts);
    assert_eq!(e.pop(), None);
    assert_eq!(e.stats().delivered, 5, "pop on empty does not count");
}

#[test]
fn peek_time_tracks_next_delivery() {
    let mut e: Engine<u8> = Engine::new();
    assert_eq!(e.peek_time(), None);
    e.schedule_at(SimTime::from_secs(5), 5);
    e.schedule_at(SimTime::from_secs(3), 3);
    assert_eq!(e.peek_time(), Some(SimTime::from_secs(3)));
    let (t, _) = e.pop().unwrap();
    assert_eq!(t, SimTime::from_secs(3));
    assert_eq!(e.peek_time(), Some(SimTime::from_secs(5)));
    e.pop();
    assert_eq!(e.peek_time(), None);
}

#[test]
fn clear_keeps_scheduled_count_and_sequence_stability() {
    // Pins the documented clear semantics on both layers:
    //
    // 1. `Engine::clear` leaves `stats.scheduled` counting the cleared
    //    events — `scheduled` means "ever accepted", not "pending or
    //    delivered", so it may permanently exceed `delivered`.
    // 2. `EventQueue::clear` keeps `next_seq`, so events pushed after the
    //    clear never overtake the FIFO position of same-instant pushes
    //    made before it.
    let mut e: Engine<&str> = Engine::new();
    e.schedule_at(SimTime::from_secs(1), "a");
    e.schedule_at(SimTime::from_secs(1), "b");
    assert_eq!(e.stats().scheduled, 2);
    e.clear();
    assert!(e.is_idle());
    assert_eq!(
        e.stats().scheduled,
        2,
        "clear must not retroactively un-count cleared events"
    );
    assert_eq!(e.stats().delivered, 0);

    // Reschedule at the same instant: the engine drains fully, yet
    // scheduled stays ahead of delivered by exactly the cleared events.
    e.schedule_at(SimTime::from_secs(1), "c");
    e.schedule_at(SimTime::from_secs(1), "d");
    assert_eq!(e.pop().unwrap().1, "c");
    assert_eq!(e.pop().unwrap().1, "d");
    assert_eq!(e.pop(), None);
    let s = e.stats();
    assert_eq!(s.scheduled, 4);
    assert_eq!(s.delivered, 2);

    // The bare queue: sequence numbers survive the clear.
    let mut q: simcore::EventQueue<u32> = simcore::EventQueue::new();
    let t = SimTime::from_secs(9);
    q.push(t, 0);
    q.push(t, 1);
    q.clear();
    q.push(t, 2);
    q.push(t, 3);
    let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
    assert_eq!(order, vec![2, 3], "post-clear pushes keep insertion order");
}
