//! Differential harness: the calendar queue must be observationally
//! identical to the binary-heap reference.
//!
//! Random operation sequences — pushes (including same-timestamp bursts
//! and far-future horizon events), pops, cancels, and `clear`-then-reuse —
//! are driven through [`EventQueue`] and [`CalendarQueue`] in lockstep,
//! asserting at every step that the pop sequences, `peek_time`, `len`,
//! and the `next_seq` counters agree. This pins the documented `clear`
//! semantics (sequence counter and FIFO stability survive the clear) on
//! *both* implementations, and pins the `(time, seq)` pop order the whole
//! workspace's determinism guarantee rests on.

use proptest::prelude::*;
use simcore::{CalendarQueue, Engine, EventQueue, QueueImpl, SimDuration, SimTime};

/// One scripted queue operation. Times are raw milliseconds so the
/// generator can aim bursts at identical instants.
#[derive(Debug, Clone)]
enum Op {
    /// Push at `t` ms; payload is the op index.
    Push(u64),
    /// Push a burst of `n` events at the same instant `t`.
    Burst(u64, u8),
    /// Push one event a year past everything else (bucket-wrap stress).
    FarFuture(u64),
    /// Pop once and compare.
    Pop,
    /// Cancel the `k`-th oldest still-pending tracked event (if any).
    Cancel(u8),
    /// Drop everything; the sequence counter must survive.
    Clear,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..50_000).prop_map(Op::Push),
        ((0u64..50_000), (2u8..20)).prop_map(|(t, n)| Op::Burst(t, n)),
        (0u64..1_000).prop_map(Op::FarFuture),
        Just(Op::Pop),
        (0u8..32).prop_map(Op::Cancel),
        Just(Op::Clear),
    ]
}

/// Drives both queues through `ops`, asserting lockstep equality of every
/// observable. Returns the number of events both queues popped.
fn run_lockstep(ops: &[Op]) -> usize {
    let mut heap: EventQueue<usize> = EventQueue::new();
    let mut cal: CalendarQueue<usize> = CalendarQueue::new();
    // (time, seq) of tracked pushes still believed pending — kept in push
    // order so Cancel(k) picks a deterministic victim on both queues.
    let mut pending: Vec<(SimTime, u64)> = Vec::new();
    let mut popped = 0usize;
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Push(t) => {
                let t = SimTime::from_millis(t);
                let sh = heap.push(t, i);
                let sc = cal.push(t, i);
                prop_assert_eq!(sh, sc, "sequence assignment diverged");
                pending.push((t, sh));
            }
            Op::Burst(t, n) => {
                let t = SimTime::from_millis(t);
                for _ in 0..n {
                    let sh = heap.push(t, i);
                    let sc = cal.push(t, i);
                    prop_assert_eq!(sh, sc);
                    pending.push((t, sh));
                }
            }
            Op::FarFuture(t) => {
                // A year-ish beyond the 50 s working window: exercises the
                // calendar's direct-search pop path and cursor teleport.
                let t = SimTime::from_millis(40_000_000_000 + t);
                let sh = heap.push(t, i);
                let sc = cal.push(t, i);
                prop_assert_eq!(sh, sc);
                pending.push((t, sh));
            }
            Op::Pop => {
                let h = heap.pop();
                let c = cal.pop();
                match (&h, &c) {
                    (Some((th, eh)), Some((tc, ec))) => {
                        prop_assert_eq!(th, tc, "pop times diverged");
                        prop_assert_eq!(eh, ec, "pop payloads diverged");
                        popped += 1;
                    }
                    (None, None) => {}
                    _ => prop_assert!(false, "one queue popped, the other did not"),
                }
                if let Some((t, _)) = h {
                    // The popped entry is the oldest pending one with the
                    // smallest (time, seq); drop it from the model.
                    let victim = pending
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(pt, ps))| (pt, ps))
                        .map(|(idx, _)| idx);
                    if let Some(idx) = victim {
                        prop_assert_eq!(pending[idx].0, t);
                        pending.remove(idx);
                    }
                }
            }
            Op::Cancel(k) => {
                if pending.is_empty() {
                    // Cancelling nothing must be a no-op on both.
                    prop_assert!(!heap.cancel(SimTime::ZERO, u64::MAX));
                    prop_assert!(!cal.cancel(SimTime::ZERO, u64::MAX));
                    continue;
                }
                let idx = (k as usize) % pending.len();
                let (t, seq) = pending.remove(idx);
                let rh = heap.cancel(t, seq);
                let rc = cal.cancel(t, seq);
                prop_assert_eq!(rh, rc, "cancel outcome diverged");
                prop_assert!(rh, "model said pending; queues disagreed");
            }
            Op::Clear => {
                heap.clear();
                cal.clear();
                pending.clear();
                prop_assert!(heap.is_empty() && cal.is_empty());
            }
        }
        prop_assert_eq!(heap.len(), cal.len(), "len diverged after op {}", i);
        prop_assert_eq!(heap.peek_time(), cal.peek_time(), "peek diverged");
        prop_assert_eq!(heap.next_seq(), cal.next_seq(), "next_seq diverged");
    }
    // Drain both to the end: the full residual pop sequences must match.
    loop {
        match (heap.pop(), cal.pop()) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(a, b);
                popped += 1;
            }
            (None, None) => break,
            _ => prop_assert!(false, "drain lengths diverged"),
        }
    }
    popped
}

proptest! {
    /// Random op scripts keep both implementations in lockstep.
    #[test]
    fn heap_and_calendar_agree_on_random_scripts(
        ops in prop::collection::vec(op_strategy(), 1..120)
    ) {
        run_lockstep(&ops);
    }

    /// Engine-level differential: identical schedules on both backends
    /// deliver identical `(time, payload)` streams and identical
    /// `scheduled`/`delivered`/`beyond_horizon` counters.
    #[test]
    fn engines_on_both_backends_deliver_identically(
        times in prop::collection::vec(0u64..100_000, 1..200),
        horizon in 1_000u64..150_000,
    ) {
        let horizon = SimTime::from_millis(horizon);
        let mut heap: Engine<usize> = Engine::configured(QueueImpl::Heap, Some(horizon), 8);
        let mut cal: Engine<usize> = Engine::configured(QueueImpl::Calendar, Some(horizon), 8);
        for (i, &t) in times.iter().enumerate() {
            heap.schedule_at(SimTime::from_millis(t), i);
            cal.schedule_at(SimTime::from_millis(t), i);
        }
        loop {
            let (a, b) = (heap.pop(), cal.pop());
            prop_assert_eq!(a, b);
            if a.is_none() { break; }
        }
        prop_assert_eq!(heap.stats(), cal.stats());
    }
}

/// Deterministic regression: a clear in the middle of a same-instant burst
/// must leave FIFO positions stable on both implementations — post-clear
/// pushes may never overtake where a pre-clear push would have sorted.
#[test]
fn clear_then_reuse_keeps_fifo_on_both() {
    let ops = vec![
        Op::Burst(5_000, 8),
        Op::Pop,
        Op::Clear,
        Op::Burst(5_000, 8),
        Op::Push(5_000),
        Op::Pop,
        Op::Pop,
    ];
    run_lockstep(&ops);
}

/// `with_capacity(0)` is pinned as a valid, working queue on both
/// implementations — and pushing far beyond any pre-sized capacity must
/// grow transparently (the `with_capacity` trust fix).
#[test]
fn zero_capacity_and_growth_beyond_capacity() {
    let mut heap: EventQueue<u64> = EventQueue::with_capacity(0);
    let mut cal: CalendarQueue<u64> = CalendarQueue::with_capacity(0);
    for i in 0..5_000u64 {
        // Reversed times so the calendar also exercises front insertion.
        let t = SimTime::from_millis(10_000_000 - i * 13);
        assert_eq!(heap.push(t, i), cal.push(t, i));
    }
    let mut last = None;
    for _ in 0..5_000 {
        let a = heap.pop().expect("heap has 5000 events");
        let b = cal.pop().expect("calendar has 5000 events");
        assert_eq!(a, b);
        if let Some(prev) = last {
            assert!(a.0 >= prev, "pop order regressed");
        }
        last = Some(a.0);
    }
    assert!(heap.pop().is_none() && cal.pop().is_none());
}

/// Pre-sized queues behave identically to default-sized ones.
#[test]
fn presized_queues_match_default_sized() {
    let mut small: CalendarQueue<u32> = CalendarQueue::with_capacity(0);
    let mut big: CalendarQueue<u32> = CalendarQueue::with_capacity(16_384);
    for i in 0..2_000u32 {
        let t = SimTime::from_millis((i as u64 * 7_919) % 100_000);
        small.push(t, i);
        big.push(t, i);
    }
    while let Some(a) = small.pop() {
        assert_eq!(Some(a), big.pop());
    }
    assert!(big.is_empty());
}

/// An engine burst at one instant interleaved with horizon-dropped far
/// events: `scheduled`/`beyond_horizon` accounting must match the heap
/// reference exactly.
#[test]
fn horizon_accounting_matches_across_backends() {
    let h = SimTime::from_secs(60);
    let mut heap: Engine<u32> = Engine::configured(QueueImpl::Heap, Some(h), 0);
    let mut cal: Engine<u32> = Engine::configured(QueueImpl::Calendar, Some(h), 0);
    for e in [&mut heap, &mut cal] {
        for i in 0..100u32 {
            let t = SimTime::from_secs((i as u64 * 37) % 120);
            e.schedule_at(t, i);
        }
        e.schedule_in(SimDuration::from_secs(1_000), 999);
    }
    loop {
        let (a, b) = (heap.pop(), cal.pop());
        assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
    assert_eq!(heap.stats(), cal.stats());
    assert!(heap.stats().beyond_horizon > 0);
}
