//! Per-job lifecycle records and the derived metrics the paper reports.
//!
//! For every job the experiments track submission, placement, start and
//! completion instants plus the allocation-size history. From these the
//! four per-job quantities of Figs. 7/8(a–d) follow:
//!
//! * **execution time** — completion − start (the paper's Figs. 7c/8c);
//! * **response time** — completion − submission (Figs. 7d/8d);
//! * **time-averaged size** — time-weighted mean of the size history over
//!   the execution (Figs. 7a/8a);
//! * **maximum size** — peak of the size history (Figs. 7b/8b).

use crate::ecdf::Ecdf;
use crate::series::StepSeries;
use simcore::SimTime;

/// Terminal state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// Completed normally.
    Completed,
    /// Dropped after exceeding the placement-retry threshold.
    PlacementFailed,
    /// Killed by a node crash (elasticity experiments with
    /// `FailurePolicy::Kill`).
    Killed,
    /// Still in the system when the experiment ended.
    Unfinished,
}

/// Lifecycle record of one job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Stable identifier (the workload index).
    pub id: u64,
    /// Free-form application label (`"FT"`, `"GADGET2"`, …).
    pub app: String,
    /// `true` for malleable jobs, `false` for rigid/moldable ones.
    pub malleable: bool,
    /// Submission instant.
    pub submitted: SimTime,
    /// Instant the job was successfully placed (allocation decided).
    pub placed: Option<SimTime>,
    /// Instant execution actually started (resources claimed and held).
    pub started: Option<SimTime>,
    /// Completion instant.
    pub completed: Option<SimTime>,
    /// Terminal state.
    pub outcome: JobOutcome,
    /// Processor allocation over the job's execution.
    pub size_history: StepSeries,
    /// Number of grow operations the job underwent.
    pub grows: u32,
    /// Number of shrink operations the job underwent.
    pub shrinks: u32,
}

impl JobRecord {
    /// Creates a record for a job submitted at `submitted`.
    pub fn new(id: u64, app: impl Into<String>, malleable: bool, submitted: SimTime) -> Self {
        JobRecord {
            id,
            app: app.into(),
            malleable,
            submitted,
            placed: None,
            started: None,
            completed: None,
            outcome: JobOutcome::Unfinished,
            size_history: StepSeries::new(),
            grows: 0,
            shrinks: 0,
        }
    }

    /// Execution time in seconds (completion − start), if the job ran to
    /// completion.
    pub fn execution_time(&self) -> Option<f64> {
        Some((self.completed? - self.started?).as_secs_f64())
    }

    /// Response time in seconds (completion − submission).
    pub fn response_time(&self) -> Option<f64> {
        Some((self.completed? - self.submitted).as_secs_f64())
    }

    /// Wait time in seconds (start − submission).
    pub fn wait_time(&self) -> Option<f64> {
        Some((self.started? - self.submitted).as_secs_f64())
    }

    /// Bounded slowdown: `max(1, response / max(tau, execution))` — the
    /// standard scheduling metric (Feitelson), with the `tau` floor
    /// keeping very short jobs from dominating.
    pub fn bounded_slowdown(&self, tau_s: f64) -> Option<f64> {
        let resp = self.response_time()?;
        let exec = self.execution_time()?;
        Some((resp / exec.max(tau_s)).max(1.0))
    }

    /// Time-weighted average allocation size over the execution.
    pub fn average_size(&self) -> Option<f64> {
        let (s, e) = (self.started?, self.completed?);
        Some(self.size_history.time_weighted_mean(s, e, 0.0))
    }

    /// Maximum allocation size reached during the execution.
    pub fn max_size(&self) -> Option<f64> {
        let (s, e) = (self.started?, self.completed?);
        self.size_history.max_in(s, e)
    }
}

/// A collection of job records with the aggregations the figures need.
#[derive(Debug, Clone, Default)]
pub struct JobTable {
    records: Vec<JobRecord>,
}

impl JobTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a record.
    pub fn push(&mut self, r: JobRecord) {
        self.records.push(r);
    }

    /// All records.
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records that completed.
    pub fn completed(&self) -> impl Iterator<Item = &JobRecord> {
        self.records
            .iter()
            .filter(|r| r.outcome == JobOutcome::Completed)
    }

    /// Fraction of submitted jobs that completed.
    pub fn completion_ratio(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.completed().count() as f64 / self.records.len() as f64
    }

    /// ECDF of a per-job metric over completed jobs.
    pub fn ecdf_of(&self, f: impl Fn(&JobRecord) -> Option<f64>) -> Ecdf {
        Ecdf::from_iter(self.completed().filter_map(f))
    }

    /// ECDF of execution times (Fig. 7c/8c).
    pub fn execution_time_ecdf(&self) -> Ecdf {
        self.ecdf_of(JobRecord::execution_time)
    }

    /// ECDF of response times (Fig. 7d/8d).
    pub fn response_time_ecdf(&self) -> Ecdf {
        self.ecdf_of(JobRecord::response_time)
    }

    /// ECDF of time-averaged sizes (Fig. 7a/8a).
    pub fn average_size_ecdf(&self) -> Ecdf {
        self.ecdf_of(JobRecord::average_size)
    }

    /// ECDF of maximum sizes (Fig. 7b/8b).
    pub fn max_size_ecdf(&self) -> Ecdf {
        self.ecdf_of(JobRecord::max_size)
    }

    /// ECDF of bounded slowdowns with a 10 s floor.
    pub fn slowdown_ecdf(&self) -> Ecdf {
        self.ecdf_of(|r| r.bounded_slowdown(10.0))
    }

    /// Restricts to jobs whose application label matches.
    pub fn filter_app(&self, app: &str) -> JobTable {
        JobTable {
            records: self
                .records
                .iter()
                .filter(|r| r.app == app)
                .cloned()
                .collect(),
        }
    }

    /// Total grow operations across all jobs.
    pub fn total_grows(&self) -> u64 {
        self.records.iter().map(|r| r.grows as u64).sum()
    }

    /// Total shrink operations across all jobs.
    pub fn total_shrinks(&self) -> u64 {
        self.records.iter().map(|r| r.shrinks as u64).sum()
    }

    /// Per-job CSV dump (one row per record, derived metrics included).
    pub fn to_csv(&self) -> String {
        let mut csv = crate::csv::Csv::with_header(&[
            "id",
            "app",
            "malleable",
            "submit_s",
            "start_s",
            "complete_s",
            "exec_s",
            "response_s",
            "wait_s",
            "avg_size",
            "max_size",
            "grows",
            "shrinks",
        ]);
        let fmt = |v: Option<f64>| v.map_or_else(|| "-1".to_string(), |x| format!("{x:.3}"));
        for r in &self.records {
            csv.row(&[
                &r.id.to_string(),
                &r.app,
                if r.malleable { "1" } else { "0" },
                &format!("{:.3}", r.submitted.as_secs_f64()),
                &fmt(r.started.map(|t| t.as_secs_f64())),
                &fmt(r.completed.map(|t| t.as_secs_f64())),
                &fmt(r.execution_time()),
                &fmt(r.response_time()),
                &fmt(r.wait_time()),
                &fmt(r.average_size()),
                &fmt(r.max_size()),
                &r.grows.to_string(),
                &r.shrinks.to_string(),
            ]);
        }
        csv.into_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimTime;

    fn s(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn record(id: u64, submit: u64, start: u64, end: u64, sizes: &[(u64, f64)]) -> JobRecord {
        let mut r = JobRecord::new(id, "FT", true, s(submit));
        r.placed = Some(s(start));
        r.started = Some(s(start));
        r.completed = Some(s(end));
        r.outcome = JobOutcome::Completed;
        for &(t, v) in sizes {
            r.size_history.set(s(t), v);
        }
        r
    }

    #[test]
    fn derived_times() {
        let r = record(1, 0, 10, 110, &[(10, 2.0)]);
        assert_eq!(r.execution_time(), Some(100.0));
        assert_eq!(r.response_time(), Some(110.0));
        assert_eq!(r.wait_time(), Some(10.0));
    }

    #[test]
    fn size_metrics_are_time_weighted() {
        // size 2 for 50 s, then 8 for 50 s → avg 5, max 8.
        let r = record(1, 0, 0, 100, &[(0, 2.0), (50, 8.0)]);
        assert_eq!(r.average_size(), Some(5.0));
        assert_eq!(r.max_size(), Some(8.0));
    }

    #[test]
    fn incomplete_jobs_yield_none() {
        let r = JobRecord::new(1, "FT", true, s(0));
        assert_eq!(r.execution_time(), None);
        assert_eq!(r.average_size(), None);
    }

    #[test]
    fn table_ecdfs_cover_only_completed() {
        let mut t = JobTable::new();
        t.push(record(1, 0, 0, 100, &[(0, 2.0)]));
        t.push(record(2, 0, 0, 200, &[(0, 4.0)]));
        let mut unfinished = JobRecord::new(3, "FT", true, s(0));
        unfinished.outcome = JobOutcome::Unfinished;
        t.push(unfinished);
        assert_eq!(t.len(), 3);
        assert_eq!(t.execution_time_ecdf().len(), 2);
        assert!((t.completion_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn filter_by_app() {
        let mut t = JobTable::new();
        t.push(record(1, 0, 0, 100, &[(0, 2.0)]));
        let mut g = record(2, 0, 0, 600, &[(0, 2.0)]);
        g.app = "GADGET2".into();
        t.push(g);
        assert_eq!(t.filter_app("GADGET2").len(), 1);
        assert_eq!(t.filter_app("FT").len(), 1);
        assert_eq!(t.filter_app("nope").len(), 0);
    }

    #[test]
    fn bounded_slowdown_floors_at_one() {
        // Response 110 s, execution 100 s: slowdown 1.1.
        let r = record(1, 0, 10, 110, &[(10, 2.0)]);
        assert!((r.bounded_slowdown(10.0).unwrap() - 1.1).abs() < 1e-12);
        // A job with no wait has slowdown exactly 1.
        let r = record(2, 0, 0, 100, &[(0, 2.0)]);
        assert_eq!(r.bounded_slowdown(10.0), Some(1.0));
        // The tau floor caps the effect of tiny executions.
        let r = record(3, 0, 100, 101, &[(100, 2.0)]); // exec 1s, resp 101s
        assert!((r.bounded_slowdown(10.0).unwrap() - 10.1).abs() < 1e-12);
    }

    #[test]
    fn csv_dump_has_one_row_per_record() {
        let mut t = JobTable::new();
        t.push(record(1, 0, 10, 110, &[(10, 2.0)]));
        let mut unfinished = JobRecord::new(2, "GADGET2", true, s(5));
        t.push(unfinished.clone());
        unfinished.id = 3;
        t.push(unfinished);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 4, "header + 3 rows");
        assert!(csv.contains("1,FT,1,0.000,10.000,110.000,100.000,110.000,10.000"));
        assert!(csv.contains("2,GADGET2,1,5.000,-1,-1,-1,-1,-1,-1,-1,0,0"));
    }

    #[test]
    fn grow_shrink_totals() {
        let mut t = JobTable::new();
        let mut r = record(1, 0, 0, 100, &[(0, 2.0)]);
        r.grows = 3;
        r.shrinks = 1;
        t.push(r);
        let mut r2 = record(2, 0, 0, 100, &[(0, 2.0)]);
        r2.grows = 2;
        t.push(r2);
        assert_eq!(t.total_grows(), 5);
        assert_eq!(t.total_shrinks(), 1);
    }
}
