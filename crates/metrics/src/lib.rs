//! # koala-metrics — measurement toolkit for the reproduction
//!
//! The evaluation section of the paper reports, per experiment:
//!
//! * cumulative distributions (Figs. 7/8 a–d) of per-job quantities:
//!   time-averaged size, maximum size, execution time, response time;
//! * utilization over time (Figs. 7/8 e): the total number of used
//!   processors as a step function;
//! * malleability-manager activity over time (Figs. 7/8 f): cumulative
//!   counts of grow/shrink messages.
//!
//! This crate provides exactly those abstractions, independent of the
//! scheduler so they can be unit-tested in isolation:
//!
//! * [`Ecdf`] — empirical CDFs with quantiles.
//! * [`StepSeries`] — right-continuous step functions of simulated time
//!   with exact integrals and time-weighted means (used for utilization
//!   and per-job size histories).
//! * [`CumulativeCounter`] — event-count time series (manager activity).
//! * [`Summary`] — five-number summaries with mean/std.
//! * [`JobRecord`] / [`JobTable`] — per-job lifecycle records and derived
//!   metrics.
//! * [`stream`] — allocation-light, **mergeable** online accumulators
//!   ([`StreamStats`], [`StreamQuantiles`], [`MeanCi`]) for
//!   memory-bounded summary reports over large experiment matrices.
//! * [`csv`] — tiny dependency-free CSV export.
//! * [`plot`] — ASCII rendering of CDFs and time series for terminal
//!   reports (the examples and the figure binaries use it).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod counter;
mod ecdf;
mod jobs;
mod series;
mod summary;

pub mod csv;
pub mod plot;
pub mod stream;

pub use counter::CumulativeCounter;
pub use ecdf::Ecdf;
pub use jobs::{JobOutcome, JobRecord, JobTable};
pub use series::StepSeries;
pub use stream::{
    mean_ci95, MeanCi, MetricStream, StreamQuantiles, StreamQuantilesState, StreamStats,
    StreamStatsState,
};
pub use summary::Summary;
