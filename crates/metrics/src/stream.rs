//! Streaming, **mergeable** statistics for memory-bounded reports.
//!
//! A production-scale experiment matrix runs thousands of
//! `(scenario × seed)` cells; materializing a full job table per cell
//! makes memory grow linearly with matrix size. This module provides the
//! constant-memory alternative: online accumulators that summarize a
//! metric while it streams past and can later be **merged** across cells
//! — the parallel runner combines shards in submission order and the
//! result is identical to the sequential loop.
//!
//! * [`StreamStats`] — count, mean, variance (Welford), min/max. The
//!   mean is computed from an **exact** floating-point sum (Shewchuk
//!   partials with correct final rounding, the `math.fsum` algorithm),
//!   so count and mean are *bit-identical under any merge order*;
//!   variance merges with Chan's parallel formula and is
//!   tolerance-equal across orders.
//! * [`StreamQuantiles`] — a bounded-memory quantile estimator: a
//!   fixed-size **deterministic reservoir** (bottom-*k* by a hash
//!   priority keyed off the cell seed). Merging keeps the *k* smallest
//!   priorities of the union, which is a set operation — order- and
//!   sharding-insensitive by construction. With at most `capacity`
//!   samples the reservoir holds *all* of them and quantiles are exact.
//! * [`MetricStream`] — the two bundled, as reports use them.
//! * [`MeanCi`] / [`mean_ci95`] — mean ± 95 % confidence interval
//!   (Student-t) across replications.
//!
//! ```
//! use koala_metrics::stream::{mean_ci95, MetricStream};
//!
//! // Two cells of a sweep stream their samples independently ...
//! let mut a = MetricStream::new(0xA5EED, 128);
//! let mut b = MetricStream::new(0xB5EED, 128);
//! for x in [1.0, 2.0, 3.0] {
//!     a.push(x);
//! }
//! for x in [4.0, 5.0] {
//!     b.push(x);
//! }
//! // ... and merge into the pooled summary: counts add, the mean is the
//! // exact-sum mean, quantiles stay exact while n <= capacity.
//! a.merge(&b);
//! assert_eq!(a.count(), 5);
//! assert_eq!(a.mean(), Some(3.0));
//! assert_eq!(a.quantiles.ecdf().median(), Some(3.0));
//! // Replication scalars aggregate into a mean ± 95 % CI (Student-t).
//! let ci = mean_ci95(&[10.0, 12.0, 14.0]).unwrap();
//! assert_eq!(ci.mean, 12.0);
//! assert!(ci.half_width.unwrap() > 0.0);
//! ```

use crate::ecdf::Ecdf;

// ---------------------------------------------------------------------
// Exact summation (Shewchuk partials, math.fsum final rounding)
// ---------------------------------------------------------------------

/// Adds `x` to a list of non-overlapping partials (increasing
/// magnitude), keeping the represented real value exact.
fn grow_partials(partials: &mut Vec<f64>, mut x: f64) {
    let mut i = 0;
    for j in 0..partials.len() {
        let mut y = partials[j];
        if x.abs() < y.abs() {
            std::mem::swap(&mut x, &mut y);
        }
        let hi = x + y;
        let lo = y - (hi - x);
        if lo != 0.0 {
            partials[i] = lo;
            i += 1;
        }
        x = hi;
    }
    partials.truncate(i);
    partials.push(x);
}

/// Rounds a partials list to the nearest `f64` — the correctly rounded
/// value of the *exact* sum, hence independent of accumulation order.
/// Port of CPython's `math.fsum` final loop (incl. the half-even
/// correction across partials).
fn round_partials(partials: &[f64]) -> f64 {
    let mut n = partials.len();
    if n == 0 {
        return 0.0;
    }
    n -= 1;
    let mut hi = partials[n];
    let mut lo = 0.0;
    while n > 0 {
        let x = hi;
        n -= 1;
        let y = partials[n];
        debug_assert!(y.abs() <= x.abs());
        hi = x + y;
        let yr = hi - x;
        lo = y - yr;
        if lo != 0.0 {
            break;
        }
    }
    // Half-way cases: if the truncated tail agrees in sign with `lo`,
    // the exact value lies strictly beyond the half-way point.
    if n > 0 && ((lo < 0.0 && partials[n - 1] < 0.0) || (lo > 0.0 && partials[n - 1] > 0.0)) {
        let y = lo * 2.0;
        let x = hi + y;
        if y == x - hi {
            hi = x;
        }
    }
    hi
}

// ---------------------------------------------------------------------
// StreamStats
// ---------------------------------------------------------------------

/// Online count / mean / variance / min / max with order-insensitive
/// merging.
///
/// `count` and [`StreamStats::mean`] are bit-identical regardless of how
/// a sample stream is sharded and in which order the shards are merged
/// (exact summation); variance uses Welford's update and Chan's merge,
/// which is equal across orders up to floating-point tolerance. NaN
/// samples are skipped, like [`Ecdf`] construction.
///
/// ```
/// use koala_metrics::StreamStats;
/// let mut a = StreamStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] { a.push(x); }
/// assert_eq!(a.mean(), Some(2.5));
/// let mut left = StreamStats::new();
/// left.push(1.0); left.push(2.0);
/// let mut right = StreamStats::new();
/// right.push(3.0); right.push(4.0);
/// left.merge(&right);
/// assert_eq!(left.mean(), a.mean());
/// assert_eq!(left.count(), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamStats {
    count: u64,
    /// Non-overlapping partials of the exact sample sum (tiny in
    /// practice: a handful of entries).
    partials: Vec<f64>,
    /// Welford running mean (used for the variance recurrence only; the
    /// reported mean comes from the exact sum).
    w_mean: f64,
    /// Welford sum of squared deviations.
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        StreamStats {
            count: 0,
            partials: Vec::new(),
            w_mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feeds one sample (NaN is skipped).
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.count += 1;
        grow_partials(&mut self.partials, x);
        let delta = x - self.w_mean;
        self.w_mean += delta / self.count as f64;
        self.m2 += delta * (x - self.w_mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one. Count, mean, min and
    /// max are exactly order-insensitive; variance merges with Chan's
    /// parallel formula (tolerance-equal across merge orders).
    pub fn merge(&mut self, other: &StreamStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let (na, nb) = (self.count as f64, other.count as f64);
        let delta = other.w_mean - self.w_mean;
        self.w_mean += delta * nb / (na + nb);
        self.m2 += other.m2 + delta * delta * na * nb / (na + nb);
        self.count += other.count;
        for &p in &other.partials {
            grow_partials(&mut self.partials, p);
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (exact sum, correctly rounded); `None` when
    /// empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| round_partials(&self.partials) / self.count as f64)
    }

    /// The correctly rounded exact sum of all samples.
    pub fn sum(&self) -> f64 {
        round_partials(&self.partials)
    }

    /// Population variance (`m2 / n`); `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| (self.m2 / self.count as f64).max(0.0))
    }

    /// Sample variance (`m2 / (n - 1)`); `None` with fewer than two
    /// samples.
    pub fn sample_variance(&self) -> Option<f64> {
        (self.count > 1).then(|| (self.m2 / (self.count - 1) as f64).max(0.0))
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Half-width of the 95 % Student-t confidence interval of the mean
    /// (`t₀.₉₇₅,ₙ₋₁ · s/√n`); `None` with fewer than two samples.
    pub fn ci95_half_width(&self) -> Option<f64> {
        let s2 = self.sample_variance()?;
        let n = self.count as f64;
        Some(t_critical_975(self.count - 1) * (s2 / n).sqrt())
    }

    /// The accumulator's complete internal state, for checkpointing.
    pub fn state(&self) -> StreamStatsState {
        StreamStatsState {
            count: self.count,
            partials: self.partials.clone(),
            w_mean: self.w_mean,
            m2: self.m2,
            min: self.min,
            max: self.max,
        }
    }

    /// Reconstructs an accumulator from a captured [`StreamStats::state`].
    pub fn from_state(s: StreamStatsState) -> Self {
        StreamStats {
            count: s.count,
            partials: s.partials,
            w_mean: s.w_mean,
            m2: s.m2,
            min: s.min,
            max: s.max,
        }
    }
}

/// The raw internals of a [`StreamStats`], exposed for checkpointing.
///
/// The Shewchuk partials list is part of the state: it is what makes the
/// mean bit-identical under any merge order, so a restore must carry the
/// exact list, not a re-rounded sum.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStatsState {
    /// Number of samples.
    pub count: u64,
    /// Non-overlapping partials of the exact sample sum.
    pub partials: Vec<f64>,
    /// Welford running mean.
    pub w_mean: f64,
    /// Welford sum of squared deviations.
    pub m2: f64,
    /// Smallest sample (`+∞` when empty).
    pub min: f64,
    /// Largest sample (`−∞` when empty).
    pub max: f64,
}

// ---------------------------------------------------------------------
// StreamQuantiles
// ---------------------------------------------------------------------

/// SplitMix64 finalizer: the per-sample priority hash.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A bounded-memory quantile estimator: a fixed-capacity deterministic
/// reservoir.
///
/// Every sample gets a pseudo-random priority derived from the
/// accumulator's `seed` and the sample's index; the reservoir keeps the
/// `capacity` samples with the *smallest* priorities (a bottom-*k*
/// sketch). Because "keep the k smallest of the union" is a pure set
/// operation, [`StreamQuantiles::merge`] is exactly order- and
/// sharding-insensitive (give distinct shards distinct seeds, as the
/// experiment runner does with its cell seeds). Priorities are uniform,
/// so the kept set is a uniform subsample: quantile estimates converge
/// at `O(1/√capacity)` in rank, and are **exact** whenever the total
/// sample count does not exceed the capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamQuantiles {
    seed: u64,
    capacity: usize,
    pushed: u64,
    /// `(priority, value)`, kept sorted ascending by `(priority, value
    /// bits)`; at most `capacity` entries.
    entries: Vec<(u64, f64)>,
}

impl StreamQuantiles {
    /// An empty reservoir holding at most `capacity` samples, with
    /// priorities keyed off `seed` (use the experiment cell's seed so
    /// shards never collide).
    ///
    /// # Panics
    /// Panics on zero capacity.
    pub fn new(seed: u64, capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        StreamQuantiles {
            seed,
            capacity,
            pushed: 0,
            entries: Vec::new(),
        }
    }

    /// Total order on entries: priority first, then the value's bit
    /// pattern (total, so merging is deterministic even on priority
    /// collisions).
    fn key(e: &(u64, f64)) -> (u64, u64) {
        (e.0, e.1.to_bits())
    }

    /// Feeds one sample (NaN is skipped).
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        let priority = mix64(self.seed ^ mix64(self.pushed));
        self.pushed += 1;
        let e = (priority, x);
        let at = self
            .entries
            .partition_point(|p| Self::key(p) < Self::key(&e));
        if at >= self.capacity {
            return; // larger than every kept priority, reservoir full
        }
        self.entries.insert(at, e);
        self.entries.truncate(self.capacity);
    }

    /// Merges another reservoir: keeps the `capacity` smallest
    /// priorities of the union (the merged capacity is the larger of
    /// the two). Exactly order-insensitive.
    pub fn merge(&mut self, other: &StreamQuantiles) {
        self.capacity = self.capacity.max(other.capacity);
        self.pushed += other.pushed;
        let mut merged =
            Vec::with_capacity((self.entries.len() + other.entries.len()).min(self.capacity));
        let (mut i, mut j) = (0, 0);
        while merged.len() < self.capacity {
            match (self.entries.get(i), other.entries.get(j)) {
                (Some(a), Some(b)) => {
                    if Self::key(a) <= Self::key(b) {
                        merged.push(*a);
                        i += 1;
                    } else {
                        merged.push(*b);
                        j += 1;
                    }
                }
                (Some(a), None) => {
                    merged.push(*a);
                    i += 1;
                }
                (None, Some(b)) => {
                    merged.push(*b);
                    j += 1;
                }
                (None, None) => break,
            }
        }
        self.entries = merged;
    }

    /// Number of samples fed in (across merges).
    pub fn count(&self) -> u64 {
        self.pushed
    }

    /// Number of samples currently retained (`≤ capacity`).
    pub fn retained(&self) -> usize {
        self.entries.len()
    }

    /// The reservoir's capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when every sample ever pushed is still retained — quantiles
    /// are then exact, not estimates.
    pub fn is_exact(&self) -> bool {
        self.pushed as usize == self.entries.len()
    }

    /// The retained subsample as an [`Ecdf`] (exact when
    /// [`StreamQuantiles::is_exact`]).
    pub fn ecdf(&self) -> Ecdf {
        Ecdf::from_iter(self.entries.iter().map(|&(_, v)| v))
    }

    /// Estimated `q`-quantile (nearest rank on the retained subsample);
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.ecdf().quantile(q)
    }

    /// Estimated median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The reservoir's complete internal state, for checkpointing.
    pub fn state(&self) -> StreamQuantilesState {
        StreamQuantilesState {
            seed: self.seed,
            capacity: self.capacity,
            pushed: self.pushed,
            entries: self.entries.clone(),
        }
    }

    /// Reconstructs a reservoir from a captured
    /// [`StreamQuantiles::state`].
    ///
    /// # Panics
    /// Panics on zero capacity, like [`StreamQuantiles::new`].
    pub fn from_state(s: StreamQuantilesState) -> Self {
        assert!(s.capacity > 0, "reservoir capacity must be positive");
        StreamQuantiles {
            seed: s.seed,
            capacity: s.capacity,
            pushed: s.pushed,
            entries: s.entries,
        }
    }
}

/// The raw internals of a [`StreamQuantiles`], exposed for checkpointing.
///
/// `pushed` indexes the priority-hash stream, so restoring it exactly is
/// what makes post-restore pushes draw the same priorities the
/// uninterrupted accumulator would have drawn.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamQuantilesState {
    /// The priority-stream seed.
    pub seed: u64,
    /// Reservoir capacity bound.
    pub capacity: usize,
    /// Samples fed in so far (the priority-stream position).
    pub pushed: u64,
    /// Retained `(priority, value)` pairs, sorted ascending.
    pub entries: Vec<(u64, f64)>,
}

// ---------------------------------------------------------------------
// MetricStream
// ---------------------------------------------------------------------

/// One metric's full streaming summary: moments and quantiles together.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricStream {
    /// Count / mean / variance / min / max.
    pub stats: StreamStats,
    /// Bounded-memory quantile reservoir.
    pub quantiles: StreamQuantiles,
}

impl MetricStream {
    /// An empty stream whose reservoir is keyed off `seed`.
    pub fn new(seed: u64, capacity: usize) -> Self {
        MetricStream {
            stats: StreamStats::new(),
            quantiles: StreamQuantiles::new(seed, capacity),
        }
    }

    /// Feeds one sample into both accumulators.
    pub fn push(&mut self, x: f64) {
        self.stats.push(x);
        self.quantiles.push(x);
    }

    /// Merges another stream into this one.
    pub fn merge(&mut self, other: &MetricStream) {
        self.stats.merge(&other.stats);
        self.quantiles.merge(&other.quantiles);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Mean (exact sum; `None` when empty).
    pub fn mean(&self) -> Option<f64> {
        self.stats.mean()
    }

    /// Estimated median.
    pub fn median(&self) -> Option<f64> {
        self.quantiles.median()
    }
}

// ---------------------------------------------------------------------
// Confidence intervals
// ---------------------------------------------------------------------

/// Two-sided 97.5 % critical value of Student's t distribution with
/// `df` degrees of freedom (the multiplier of a 95 % confidence
/// interval). Exact table for `df ≤ 30`, linear interpolation through
/// the standard 40/60/120 anchors above, and the normal limit 1.960
/// beyond. `df = 0` yields NaN (no interval from one sample).
pub fn t_critical_975(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    let interp = |lo_df: u64, hi_df: u64, lo: f64, hi: f64| {
        lo + (hi - lo) * (df - lo_df) as f64 / (hi_df - lo_df) as f64
    };
    match df {
        0 => f64::NAN,
        1..=30 => TABLE[(df - 1) as usize],
        31..=40 => interp(30, 40, 2.042, 2.021),
        41..=60 => interp(40, 60, 2.021, 2.000),
        61..=120 => interp(60, 120, 2.000, 1.980),
        _ => 1.960,
    }
}

/// A replication aggregate: mean over `n` values with the 95 % Student-t
/// confidence half-width (`None` when `n < 2`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanCi {
    /// Number of values aggregated.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Half-width of the 95 % confidence interval; `None` with fewer
    /// than two values.
    pub half_width: Option<f64>,
}

impl MeanCi {
    /// Lower edge of the interval (the mean itself when `n < 2`).
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width.unwrap_or(0.0)
    }

    /// Upper edge of the interval (the mean itself when `n < 2`).
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width.unwrap_or(0.0)
    }
}

impl std::fmt::Display for MeanCi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Honour an explicit precision (`{:.1}`), defaulting to 2.
        let prec = f.precision().unwrap_or(2);
        match self.half_width {
            Some(h) => write!(f, "{:.p$} ± {:.p$}", self.mean, h, p = prec),
            None => write!(f, "{:.p$} ± n/a", self.mean, p = prec),
        }
    }
}

/// Mean ± 95 % CI (Student-t) of a value list — the per-metric
/// aggregation of replication cells. NaNs are dropped; `None` when no
/// finite value remains.
pub fn mean_ci95(values: &[f64]) -> Option<MeanCi> {
    let mut stats = StreamStats::new();
    for &v in values {
        stats.push(v);
    }
    let mean = stats.mean()?;
    Some(MeanCi {
        n: stats.count() as usize,
        mean,
        half_width: stats.ci95_half_width(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_match_hand_computation() {
        let mut s = StreamStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), Some(5.0));
        assert!((s.variance().unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_stats_are_none() {
        let s = StreamStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.ci95_half_width(), None);
    }

    #[test]
    fn nan_samples_are_skipped() {
        let mut s = StreamStats::new();
        s.push(f64::NAN);
        s.push(1.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), Some(1.0));
    }

    #[test]
    fn mean_is_bit_identical_across_shardings() {
        // A sum that plain left-to-right f64 addition gets wrong
        // differently per order; the exact sum does not.
        let xs = [1e16, 1.0, -1e16, 1.0, 3.0, 1e-9, -2.0, 7.5];
        let mut whole = StreamStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = StreamStats::new();
        let mut b = StreamStats::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(
            whole.mean().unwrap().to_bits(),
            ab.mean().unwrap().to_bits()
        );
        assert_eq!(ab.mean().unwrap().to_bits(), ba.mean().unwrap().to_bits());
        assert_eq!(ab.count(), ba.count());
        assert_eq!(whole.sum(), 10.5 + 1e-9);
    }

    #[test]
    fn merge_into_empty_adopts_the_other() {
        let mut a = StreamStats::new();
        let mut b = StreamStats::new();
        b.push(3.0);
        b.push(5.0);
        a.merge(&b);
        assert_eq!(a.mean(), Some(4.0));
        let before = b.clone();
        b.merge(&StreamStats::new());
        assert_eq!(b, before);
    }

    #[test]
    fn reservoir_is_exact_below_capacity() {
        let mut q = StreamQuantiles::new(42, 16);
        for x in [5.0, 1.0, 9.0, 3.0, 7.0] {
            q.push(x);
        }
        assert!(q.is_exact());
        assert_eq!(q.retained(), 5);
        assert_eq!(q.median(), Some(5.0));
        assert_eq!(q.quantile(0.0), Some(1.0));
        assert_eq!(q.quantile(1.0), Some(9.0));
    }

    #[test]
    fn reservoir_stays_bounded() {
        let mut q = StreamQuantiles::new(7, 32);
        for i in 0..10_000 {
            q.push(i as f64);
        }
        assert_eq!(q.retained(), 32);
        assert_eq!(q.count(), 10_000);
        assert!(!q.is_exact());
        // A uniform subsample of 0..10000: the median estimate must land
        // well inside the bulk.
        let med = q.median().unwrap();
        assert!((1_000.0..9_000.0).contains(&med), "median estimate {med}");
    }

    #[test]
    fn reservoir_merge_is_order_insensitive() {
        let mut a = StreamQuantiles::new(1, 8);
        let mut b = StreamQuantiles::new(2, 8);
        let mut c = StreamQuantiles::new(3, 8);
        for i in 0..50 {
            a.push(i as f64);
            b.push(100.0 + i as f64);
            c.push(200.0 + i as f64);
        }
        let mut abc = a.clone();
        abc.merge(&b);
        abc.merge(&c);
        let mut cba = c.clone();
        cba.merge(&b);
        cba.merge(&a);
        // The kept sample set is identical whatever the merge order (the
        // receiving accumulator's own seed only matters for later
        // pushes, not for what is retained).
        assert_eq!(abc.ecdf(), cba.ecdf());
        assert_eq!(abc.count(), cba.count());
        let mut acb = a.clone();
        acb.merge(&c);
        acb.merge(&b);
        assert_eq!(abc.ecdf(), acb.ecdf());
        assert_eq!(abc.count(), 150);
        assert_eq!(abc.retained(), 8);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_reservoir_panics() {
        StreamQuantiles::new(0, 0);
    }

    #[test]
    fn metric_stream_bundles_both() {
        let mut m = MetricStream::new(9, 64);
        for x in [10.0, 20.0, 30.0] {
            m.push(x);
        }
        assert_eq!(m.count(), 3);
        assert_eq!(m.mean(), Some(20.0));
        assert_eq!(m.median(), Some(20.0));
        let mut other = MetricStream::new(10, 64);
        other.push(40.0);
        m.merge(&other);
        assert_eq!(m.count(), 4);
        assert_eq!(m.mean(), Some(25.0));
    }

    #[test]
    fn state_round_trip_resumes_both_accumulators() {
        let mut m = MetricStream::new(0x5EED, 8);
        for i in 0..40 {
            m.push(i as f64 * 1.75 - 3.0);
        }
        let mut r = MetricStream {
            stats: StreamStats::from_state(m.stats.state()),
            quantiles: StreamQuantiles::from_state(m.quantiles.state()),
        };
        assert_eq!(m, r);
        // Post-restore pushes draw the same priority stream, so the two
        // stay bit-identical — including the retained reservoir set.
        for i in 40..200 {
            let x = (i as f64).sin() * 50.0;
            m.push(x);
            r.push(x);
        }
        assert_eq!(m, r);
        assert_eq!(m.mean().unwrap().to_bits(), r.mean().unwrap().to_bits());
    }

    #[test]
    fn t_table_values_and_limits() {
        assert!((t_critical_975(1) - 12.706).abs() < 1e-12);
        assert!((t_critical_975(3) - 3.182).abs() < 1e-12);
        assert!((t_critical_975(30) - 2.042).abs() < 1e-12);
        assert!((t_critical_975(1_000_000) - 1.960).abs() < 1e-12);
        assert!(t_critical_975(0).is_nan());
        // Interpolated region is monotone decreasing.
        for df in 30..200 {
            assert!(t_critical_975(df + 1) <= t_critical_975(df) + 1e-12);
        }
    }

    #[test]
    fn mean_ci_matches_hand_computation() {
        // 4 replications, the paper's repetition count.
        let ci = mean_ci95(&[10.0, 12.0, 11.0, 13.0]).unwrap();
        assert_eq!(ci.n, 4);
        assert_eq!(ci.mean, 11.5);
        // s = sqrt(5/3), t_{0.975,3} = 3.182.
        let expect = 3.182 * (5.0f64 / 3.0).sqrt() / 2.0;
        assert!((ci.half_width.unwrap() - expect).abs() < 1e-12);
        assert!(ci.lo() < 11.5 && ci.hi() > 11.5);
        assert_eq!(format!("{ci:.1}"), "11.5 ± 2.1");
    }

    #[test]
    fn mean_ci_degenerate_cases() {
        assert_eq!(mean_ci95(&[]), None);
        assert_eq!(mean_ci95(&[f64::NAN]), None);
        let one = mean_ci95(&[7.0]).unwrap();
        assert_eq!(one.n, 1);
        assert_eq!(one.half_width, None);
        assert_eq!(one.lo(), 7.0);
        assert_eq!(one.hi(), 7.0);
        assert_eq!(format!("{one}"), "7.00 ± n/a");
    }
}
