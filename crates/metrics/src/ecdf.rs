//! Empirical cumulative distribution functions.
//!
//! Figures 7(a–d) and 8(a–d) of the paper are ECDFs over per-job metrics.
//! [`Ecdf`] stores the sorted sample and answers both directions of the
//! curve: `fraction_at_or_below(x)` (the y-value the figures plot) and
//! `quantile(q)` (for summaries such as "the median GADGET-2 execution
//! time").

/// An empirical CDF over a set of `f64` samples.
///
/// NaN samples are rejected at construction; infinities are allowed (they
/// sort to the ends).
///
/// ```
/// use koala_metrics::Ecdf;
/// let e = Ecdf::new(vec![120.0, 60.0, 240.0, 120.0]);
/// assert_eq!(e.percent_at_or_below(120.0), 75.0);
/// assert_eq!(e.median(), Some(120.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples. NaNs are filtered out.
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| !x.is_nan());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// `P[X ≤ x]` as a fraction in `[0, 1]`; 0 for an empty ECDF.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&s| s <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// `P[X ≤ x]` in percent — the y-axis of the paper's figures.
    pub fn percent_at_or_below(&self, x: f64) -> f64 {
        100.0 * self.fraction_at_or_below(x)
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) using the nearest-rank method;
    /// `None` when the ECDF is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.sorted[rank - 1])
    }

    /// Median (0.5-quantile).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// The full curve as `(x, percent)` steps — one point per distinct
    /// sample value, suitable for CSV export of the paper's figures.
    pub fn curve_points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let mut pts = Vec::new();
        let mut i = 0;
        while i < n {
            let x = self.sorted[i];
            let mut j = i + 1;
            while j < n && self.sorted[j] == x {
                j += 1;
            }
            pts.push((x, 100.0 * j as f64 / n as f64));
            i = j;
        }
        pts
    }

    /// Samples the curve at `k + 1` evenly spaced x positions spanning
    /// `[min, max]`; used for fixed-grid CSV output so different runs
    /// align. Empty ECDFs return an empty vector.
    pub fn curve_on_grid(&self, k: usize) -> Vec<(f64, f64)> {
        let (Some(lo), Some(hi)) = (self.min(), self.max()) else {
            return Vec::new();
        };
        if k == 0 || lo == hi {
            return vec![(lo, self.percent_at_or_below(lo))];
        }
        (0..=k)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / k as f64;
                (x, self.percent_at_or_below(x))
            })
            .collect()
    }
}

impl FromIterator<f64> for Ecdf {
    /// Builds an ECDF from an iterator of samples. NaNs are filtered out.
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_count_inclusively() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(e.fraction_at_or_below(0.5), 0.0);
        assert_eq!(e.fraction_at_or_below(1.0), 0.25);
        assert_eq!(e.fraction_at_or_below(2.0), 0.75);
        assert_eq!(e.fraction_at_or_below(10.0), 1.0);
        assert_eq!(e.percent_at_or_below(2.0), 75.0);
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(e.quantile(0.0), Some(10.0));
        assert_eq!(e.quantile(0.25), Some(10.0));
        assert_eq!(e.quantile(0.5), Some(20.0));
        assert_eq!(e.quantile(0.75), Some(30.0));
        assert_eq!(e.quantile(1.0), Some(40.0));
        assert_eq!(e.median(), Some(20.0));
    }

    #[test]
    fn nan_samples_are_dropped() {
        let e = Ecdf::new(vec![f64::NAN, 1.0, f64::NAN, 2.0]);
        assert_eq!(e.len(), 2);
        assert_eq!(e.min(), Some(1.0));
    }

    #[test]
    fn empty_ecdf_is_harmless() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.fraction_at_or_below(1.0), 0.0);
        assert_eq!(e.quantile(0.5), None);
        assert_eq!(e.mean(), None);
        assert!(e.curve_points().is_empty());
        assert!(e.curve_on_grid(10).is_empty());
    }

    #[test]
    fn curve_points_deduplicate() {
        let e = Ecdf::new(vec![5.0, 5.0, 7.0]);
        let pts = e.curve_points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].0, 5.0);
        assert!((pts[0].1 - 200.0 / 3.0).abs() < 1e-9);
        assert_eq!(pts[1], (7.0, 100.0));
    }

    #[test]
    fn grid_curve_is_monotone() {
        let e = Ecdf::from_iter((1..=100).map(|i| (i * i) as f64));
        let pts = e.curve_on_grid(50);
        assert_eq!(pts.len(), 51);
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be monotone");
            assert!(w[1].0 >= w[0].0);
        }
        assert_eq!(pts.last().unwrap().1, 100.0);
    }

    #[test]
    fn mean_matches_hand_computation() {
        let e = Ecdf::new(vec![2.0, 4.0, 6.0]);
        assert_eq!(e.mean(), Some(4.0));
    }
}
