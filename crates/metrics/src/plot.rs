//! ASCII rendering of the paper's figure types.
//!
//! The figure binaries and examples run in a terminal; these helpers give
//! an at-a-glance view of the curves (the CSV export carries the precise
//! data). Output style:
//!
//! ```text
//! 100 |                        ****###
//!     |                 ****###
//!  50 |         ****####
//!     |  ****###
//!   0 +--------------------------------
//!     0                             42
//! ```

use crate::ecdf::Ecdf;

/// Renders several ECDFs into one fixed-size ASCII chart.
///
/// Each series is drawn with its own glyph; later series overwrite earlier
/// ones where they collide (curves near each other is itself informative).
pub fn ecdf_chart(series: &[(&str, &Ecdf)], width: usize, height: usize) -> String {
    let glyphs = ['*', '#', 'o', '+', 'x', '%', '@', '&'];
    let lo = series
        .iter()
        .filter_map(|(_, e)| e.min())
        .fold(f64::INFINITY, f64::min);
    let hi = series
        .iter()
        .filter_map(|(_, e)| e.max())
        .fold(f64::NEG_INFINITY, f64::max);
    if !lo.is_finite() || !hi.is_finite() {
        return String::from("(no data)\n");
    }
    let hi = if hi > lo { hi } else { lo + 1.0 };
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, e)) in series.iter().enumerate() {
        let g = glyphs[si % glyphs.len()];
        // Indexing is row-major but each column lands on its own row, so the
        // write target is grid[row][col] with row a function of col.
        #[allow(clippy::needless_range_loop)]
        for col in 0..width {
            let x = lo + (hi - lo) * col as f64 / (width.max(2) - 1) as f64;
            let pct = e.percent_at_or_below(x);
            let row = ((pct / 100.0) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row.min(height - 1);
            grid[row][col] = g;
        }
    }
    let mut out = String::new();
    for (ri, row) in grid.iter().enumerate() {
        let label = if ri == 0 {
            "100 |"
        } else if ri == height - 1 {
            "  0 |"
        } else if ri == height / 2 {
            " 50 |"
        } else {
            "    |"
        };
        out.push_str(label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("    +");
    out.extend(std::iter::repeat_n('-', width));
    out.push('\n');
    out.push_str(&format!(
        "     {:<10.1}{:>w$.1}\n",
        lo,
        hi,
        w = width.saturating_sub(10)
    ));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("     {} {}\n", glyphs[si % glyphs.len()], name));
    }
    out
}

/// Renders time series `(t_seconds, value)` into an ASCII chart.
pub fn timeseries_chart(series: &[(&str, &[(f64, f64)])], width: usize, height: usize) -> String {
    let glyphs = ['*', '#', 'o', '+', 'x', '%', '@', '&'];
    let mut tmin = f64::INFINITY;
    let mut tmax = f64::NEG_INFINITY;
    let mut vmax = f64::NEG_INFINITY;
    for (_, pts) in series {
        for &(t, v) in *pts {
            tmin = tmin.min(t);
            tmax = tmax.max(t);
            vmax = vmax.max(v);
        }
    }
    if !tmin.is_finite() || !tmax.is_finite() || tmax <= tmin {
        return String::from("(no data)\n");
    }
    let vmax = if vmax > 0.0 { vmax } else { 1.0 };
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let g = glyphs[si % glyphs.len()];
        for &(t, v) in *pts {
            let col = (((t - tmin) / (tmax - tmin)) * (width - 1) as f64).round() as usize;
            let row = ((v / vmax) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row.min(height - 1);
            grid[row][col.min(width - 1)] = g;
        }
    }
    let mut out = String::new();
    for (ri, row) in grid.iter().enumerate() {
        let label = if ri == 0 {
            format!("{:>5.0} |", vmax)
        } else if ri == height - 1 {
            format!("{:>5} |", 0)
        } else {
            "      |".to_string()
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("      +");
    out.extend(std::iter::repeat_n('-', width));
    out.push('\n');
    out.push_str(&format!(
        "       {:<10.0}{:>w$.0}\n",
        tmin,
        tmax,
        w = width.saturating_sub(10)
    ));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("      {} {}\n", glyphs[si % glyphs.len()], name));
    }
    out
}

/// Renders an ASCII Gantt chart of job lifecycles: one row per job,
/// `.` for queue wait, `=` for execution, `#` for the portion of the run
/// at more than twice the job's starting size (growth made visible).
pub fn gantt(jobs: &[&crate::JobRecord], width: usize) -> String {
    let mut t0 = f64::INFINITY;
    let mut t1 = f64::NEG_INFINITY;
    for j in jobs {
        t0 = t0.min(j.submitted.as_secs_f64());
        if let Some(c) = j.completed {
            t1 = t1.max(c.as_secs_f64());
        }
    }
    if !t0.is_finite() || !t1.is_finite() || t1 <= t0 {
        return String::from("(no completed jobs)\n");
    }
    let col_t = |col: usize| t0 + (t1 - t0) * col as f64 / (width.max(2) - 1) as f64;
    let mut out = String::new();
    for j in jobs {
        let (Some(start), Some(end)) = (j.started, j.completed) else {
            continue;
        };
        let submit = j.submitted.as_secs_f64();
        let start = start.as_secs_f64();
        let end = end.as_secs_f64();
        let base = j.size_history.value_at(j.started.unwrap(), 0.0).max(1.0);
        let mut row = String::with_capacity(width);
        for col in 0..width {
            let t = col_t(col);
            let ch = if t < submit || t > end {
                ' '
            } else if t < start {
                '.'
            } else {
                let sz = j
                    .size_history
                    .value_at(simcore::SimTime::from_secs_f64(t), base);
                if sz >= 2.0 * base {
                    '#'
                } else {
                    '='
                }
            };
            row.push(ch);
        }
        out.push_str(&format!("{:>6} |{}|\n", format!("J{}", j.id), row));
    }
    out.push_str(&format!(
        "{:>6}  {:<10.0}{:>w$.0}\n",
        "t(s)",
        t0,
        t1,
        w = width.saturating_sub(10)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_has_expected_dimensions() {
        let e = Ecdf::from_iter((1..=50).map(|i| i as f64));
        let chart = ecdf_chart(&[("test", &e)], 40, 10);
        let lines: Vec<&str> = chart.lines().collect();
        // 10 grid rows + axis + scale + 1 legend line.
        assert_eq!(lines.len(), 13);
        assert!(lines[0].starts_with("100 |"));
        assert!(chart.contains("test"));
    }

    #[test]
    fn empty_series_say_no_data() {
        let e = Ecdf::new(vec![]);
        assert_eq!(ecdf_chart(&[("x", &e)], 20, 5), "(no data)\n");
        assert_eq!(timeseries_chart(&[("x", &[][..])], 20, 5), "(no data)\n");
    }

    #[test]
    fn gantt_renders_lifecycle_glyphs() {
        use crate::{JobOutcome, JobRecord};
        use simcore::SimTime;
        let mut j = JobRecord::new(3, "FT", true, SimTime::ZERO);
        j.started = Some(SimTime::from_secs(100));
        j.completed = Some(SimTime::from_secs(300));
        j.outcome = JobOutcome::Completed;
        j.size_history.set(SimTime::from_secs(100), 2.0);
        j.size_history.set(SimTime::from_secs(200), 8.0); // grew 4x
        let chart = gantt(&[&j], 40);
        assert!(chart.contains("J3"));
        assert!(chart.contains('.'), "wait phase rendered");
        assert!(chart.contains('='), "base-size execution rendered");
        assert!(chart.contains('#'), "grown execution rendered");
    }

    #[test]
    fn gantt_with_no_jobs_is_harmless() {
        assert_eq!(gantt(&[], 20), "(no completed jobs)\n");
    }

    #[test]
    fn timeseries_chart_renders_points() {
        let pts = vec![(0.0, 0.0), (50.0, 5.0), (100.0, 10.0)];
        let chart = timeseries_chart(&[("u", &pts)], 30, 8);
        assert!(chart.contains('*'));
        assert!(chart.contains("u"));
    }
}
