//! Cumulative event counters over time.
//!
//! Figures 7(f) and 8(f) of the paper plot the *activity of the
//! malleability manager*: the cumulative number of grow messages (7f) and
//! of all malleability operations (8f) as a function of time.
//! [`CumulativeCounter`] records event instants and renders that curve.

use simcore::{SimDuration, SimTime};

/// A monotone step function counting events over time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CumulativeCounter {
    /// Sorted instants at which events occurred (duplicates allowed).
    instants: Vec<SimTime>,
}

impl CumulativeCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event at `t`. Events must be recorded in
    /// non-decreasing time order (the simulation clock guarantees this).
    ///
    /// # Panics
    /// Panics on out-of-order recording.
    pub fn record(&mut self, t: SimTime) {
        if let Some(&last) = self.instants.last() {
            assert!(t >= last, "CumulativeCounter events must be time-ordered");
        }
        self.instants.push(t);
    }

    /// Records `n` simultaneous events at `t`.
    pub fn record_n(&mut self, t: SimTime, n: usize) {
        for _ in 0..n {
            self.record(t);
        }
    }

    /// Total number of events recorded.
    pub fn total(&self) -> usize {
        self.instants.len()
    }

    /// True when no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.instants.is_empty()
    }

    /// Number of events at or before `t`.
    pub fn count_at(&self, t: SimTime) -> usize {
        self.instants.partition_point(|&i| i <= t)
    }

    /// Number of events in the half-open window `(from, to]`.
    pub fn count_in(&self, from: SimTime, to: SimTime) -> usize {
        self.count_at(to).saturating_sub(self.count_at(from))
    }

    /// The raw event instants.
    pub fn instants(&self) -> &[SimTime] {
        &self.instants
    }

    /// The cumulative curve sampled on a fixed grid, as `(t, count)`.
    pub fn curve(&self, from: SimTime, to: SimTime, step: SimDuration) -> Vec<(SimTime, usize)> {
        assert!(!step.is_zero(), "curve step must be non-zero");
        let mut out = Vec::new();
        let mut t = from;
        loop {
            out.push((t, self.count_at(t)));
            if t >= to {
                break;
            }
            t = (t + step).min(to);
        }
        out
    }

    /// Merges another counter into this one (e.g. per-cluster counters
    /// into a platform-wide one).
    pub fn merge(&mut self, other: &CumulativeCounter) {
        self.instants.extend_from_slice(&other.instants);
        self.instants.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn counts_accumulate() {
        let mut c = CumulativeCounter::new();
        c.record(s(1));
        c.record(s(1));
        c.record(s(5));
        assert_eq!(c.total(), 3);
        assert_eq!(c.count_at(s(0)), 0);
        assert_eq!(c.count_at(s(1)), 2);
        assert_eq!(c.count_at(s(10)), 3);
        assert_eq!(c.count_in(s(1), s(5)), 1);
    }

    #[test]
    fn record_n_is_simultaneous() {
        let mut c = CumulativeCounter::new();
        c.record_n(s(2), 4);
        assert_eq!(c.count_at(s(2)), 4);
        assert_eq!(c.count_at(s(1)), 0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_panics() {
        let mut c = CumulativeCounter::new();
        c.record(s(5));
        c.record(s(1));
    }

    #[test]
    fn curve_is_monotone() {
        let mut c = CumulativeCounter::new();
        for i in [1u64, 3, 3, 8, 13] {
            c.record(s(i));
        }
        let curve = c.curve(s(0), s(15), SimDuration::from_secs(5));
        assert_eq!(curve.len(), 4);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(curve.last().unwrap().1, 5);
    }

    #[test]
    fn merge_interleaves_sorted() {
        let mut a = CumulativeCounter::new();
        a.record(s(1));
        a.record(s(5));
        let mut b = CumulativeCounter::new();
        b.record(s(3));
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count_at(s(3)), 2);
        // Still usable after merge.
        a.record(s(9));
        assert_eq!(a.total(), 4);
    }
}
