//! Right-continuous step functions of simulated time.
//!
//! Two of the paper's reported quantities are step functions:
//!
//! * platform utilization — "total number of used processors" over time
//!   (Figs. 7e/8e);
//! * a job's processor allocation over its lifetime, whose *time-weighted
//!   mean* is the x-axis of Figs. 7a/8a and whose max is Figs. 7b/8b.
//!
//! [`StepSeries`] records `(time, value)` transitions and integrates them
//! exactly in integer-millisecond × value space.

use simcore::{SimDuration, SimTime};

/// A right-continuous step function `f(t)` recorded as transitions.
///
/// The value at a transition instant is the *new* value. Transitions must
/// be appended in non-decreasing time order (enforced with a panic, since
/// out-of-order appends indicate a simulation bug).
///
/// ```
/// use koala_metrics::StepSeries;
/// use simcore::SimTime;
/// // A job at 2 processors for 100 s, then 8 processors for 100 s:
/// let mut sizes = StepSeries::new();
/// sizes.set(SimTime::ZERO, 2.0);
/// sizes.set(SimTime::from_secs(100), 8.0);
/// let avg = sizes.time_weighted_mean(SimTime::ZERO, SimTime::from_secs(200), 0.0);
/// assert_eq!(avg, 5.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepSeries {
    /// `(t, v)`: from `t` (inclusive) onwards, the value is `v`.
    points: Vec<(SimTime, f64)>,
}

impl StepSeries {
    /// Creates an empty series (value undefined before the first point;
    /// queries before the first transition return `initial`, see
    /// [`StepSeries::value_at`]).
    pub fn new() -> Self {
        StepSeries { points: Vec::new() }
    }

    /// Creates a series with an initial value at time zero.
    pub fn with_initial(v: f64) -> Self {
        StepSeries {
            points: vec![(SimTime::ZERO, v)],
        }
    }

    /// Appends a transition: from `t` on, the value is `v`.
    ///
    /// Consecutive equal values are coalesced; a transition at the same
    /// instant as the previous one overwrites it (last-write-wins within
    /// an event instant).
    ///
    /// # Panics
    /// Panics if `t` precedes the last recorded transition.
    pub fn set(&mut self, t: SimTime, v: f64) {
        if let Some(&mut (last_t, ref mut last_v)) = self.points.last_mut() {
            assert!(t >= last_t, "StepSeries transitions must be time-ordered");
            if last_t == t {
                *last_v = v;
                // Coalesce with the predecessor if the overwrite made it redundant.
                if self.points.len() >= 2 && self.points[self.points.len() - 2].1 == v {
                    self.points.pop();
                }
                return;
            }
            if *last_v == v {
                return; // no-op transition
            }
        }
        self.points.push((t, v));
    }

    /// Adds `delta` to the current value at time `t` (starting from 0 if
    /// the series is empty).
    pub fn add(&mut self, t: SimTime, delta: f64) {
        let cur = self.points.last().map(|&(_, v)| v).unwrap_or(0.0);
        self.set(t, cur + delta);
    }

    /// The recorded transitions.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of transitions recorded.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no transitions have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Value at instant `t`; `initial` before the first transition.
    pub fn value_at(&self, t: SimTime, initial: f64) -> f64 {
        match self.points.partition_point(|&(pt, _)| pt <= t) {
            0 => initial,
            i => self.points[i - 1].1,
        }
    }

    /// Latest value, if any transition has been recorded.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Largest value attained in `[from, to]` (considering the value
    /// holding at `from`), or `None` if the series is empty.
    pub fn max_in(&self, from: SimTime, to: SimTime) -> Option<f64> {
        if self.points.is_empty() || to < from {
            return None;
        }
        let mut best: Option<f64> = None;
        let start_idx = self.points.partition_point(|&(pt, _)| pt <= from);
        if start_idx > 0 {
            best = Some(self.points[start_idx - 1].1);
        }
        for &(pt, v) in &self.points[start_idx..] {
            if pt > to {
                break;
            }
            best = Some(best.map_or(v, |b: f64| b.max(v)));
        }
        best
    }

    /// Exact integral `∫ f(t) dt` over `[from, to]`, in value ×
    /// seconds. The value before the first transition is taken as
    /// `initial`.
    pub fn integral(&self, from: SimTime, to: SimTime, initial: f64) -> f64 {
        if to <= from {
            return 0.0;
        }
        let mut acc = 0.0;
        let mut cur_t = from;
        let mut cur_v = self.value_at(from, initial);
        let start_idx = self.points.partition_point(|&(pt, _)| pt <= from);
        for &(pt, v) in &self.points[start_idx..] {
            if pt >= to {
                break;
            }
            acc += cur_v * (pt - cur_t).as_secs_f64();
            cur_t = pt;
            cur_v = v;
        }
        acc += cur_v * (to - cur_t).as_secs_f64();
        acc
    }

    /// Time-weighted mean of the value over `[from, to]`.
    pub fn time_weighted_mean(&self, from: SimTime, to: SimTime, initial: f64) -> f64 {
        let span = (to.saturating_since(from)).as_secs_f64();
        if span == 0.0 {
            return self.value_at(from, initial);
        }
        self.integral(from, to, initial) / span
    }

    /// Resamples the series on a fixed grid for plotting/CSV: `(t, value)`
    /// at `from, from+step, …, to`.
    pub fn resample(
        &self,
        from: SimTime,
        to: SimTime,
        step: SimDuration,
        initial: f64,
    ) -> Vec<(SimTime, f64)> {
        assert!(!step.is_zero(), "resample step must be non-zero");
        let mut out = Vec::new();
        let mut t = from;
        loop {
            out.push((t, self.value_at(t, initial)));
            if t >= to {
                break;
            }
            t = (t + step).min(to);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn value_at_follows_steps() {
        let mut f = StepSeries::new();
        f.set(s(10), 4.0);
        f.set(s(20), 7.0);
        assert_eq!(f.value_at(s(0), 1.0), 1.0);
        assert_eq!(f.value_at(s(10), 1.0), 4.0);
        assert_eq!(f.value_at(s(15), 1.0), 4.0);
        assert_eq!(f.value_at(s(20), 1.0), 7.0);
        assert_eq!(f.value_at(s(100), 1.0), 7.0);
    }

    #[test]
    fn integral_is_exact_for_rectangles() {
        let mut f = StepSeries::with_initial(2.0);
        f.set(s(10), 5.0); // 2 for 10s, then 5
        assert_eq!(f.integral(s(0), s(10), 0.0), 20.0);
        assert_eq!(f.integral(s(0), s(20), 0.0), 20.0 + 50.0);
        assert_eq!(f.integral(s(5), s(15), 0.0), 10.0 + 25.0);
    }

    #[test]
    fn integral_respects_initial_before_first_point() {
        let mut f = StepSeries::new();
        f.set(s(10), 3.0);
        assert_eq!(f.integral(s(0), s(20), 1.0), 10.0 + 30.0);
    }

    #[test]
    fn time_weighted_mean_of_job_size_history() {
        // A job at size 2 for 100 s then size 8 for 300 s: mean 6.5.
        let mut f = StepSeries::new();
        f.set(s(0), 2.0);
        f.set(s(100), 8.0);
        let m = f.time_weighted_mean(s(0), s(400), 0.0);
        assert!((m - 6.5).abs() < 1e-12, "mean {m}");
    }

    #[test]
    fn add_accumulates() {
        let mut f = StepSeries::new();
        f.add(s(1), 4.0);
        f.add(s(2), -1.0);
        f.add(s(3), 2.0);
        assert_eq!(f.last_value(), Some(5.0));
        assert_eq!(f.value_at(s(2), 0.0), 3.0);
    }

    #[test]
    fn same_instant_overwrites_not_appends() {
        let mut f = StepSeries::new();
        f.set(s(5), 1.0);
        f.set(s(5), 2.0);
        assert_eq!(f.len(), 1);
        assert_eq!(f.value_at(s(5), 0.0), 2.0);
    }

    #[test]
    fn overwrite_coalesces_with_predecessor() {
        let mut f = StepSeries::new();
        f.set(s(1), 3.0);
        f.set(s(5), 9.0);
        f.set(s(5), 3.0); // back to the previous value: point removed
        assert_eq!(f.len(), 1);
        assert_eq!(f.value_at(s(10), 0.0), 3.0);
    }

    #[test]
    fn redundant_transitions_coalesce() {
        let mut f = StepSeries::new();
        f.set(s(1), 3.0);
        f.set(s(2), 3.0);
        assert_eq!(f.len(), 1);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_panics() {
        let mut f = StepSeries::new();
        f.set(s(10), 1.0);
        f.set(s(5), 2.0);
    }

    #[test]
    fn max_in_window() {
        let mut f = StepSeries::new();
        f.set(s(0), 1.0);
        f.set(s(10), 9.0);
        f.set(s(20), 3.0);
        assert_eq!(f.max_in(s(0), s(5)), Some(1.0));
        assert_eq!(f.max_in(s(0), s(30)), Some(9.0));
        assert_eq!(f.max_in(s(15), s(30)), Some(9.0)); // value holding at 15 is 9
        assert_eq!(f.max_in(s(21), s(30)), Some(3.0));
        assert_eq!(StepSeries::new().max_in(s(0), s(1)), None);
    }

    #[test]
    fn resample_grid() {
        let mut f = StepSeries::new();
        f.set(s(0), 1.0);
        f.set(s(10), 2.0);
        let g = f.resample(s(0), s(20), SimDuration::from_secs(10), 0.0);
        assert_eq!(g, vec![(s(0), 1.0), (s(10), 2.0), (s(20), 2.0)]);
    }
}
