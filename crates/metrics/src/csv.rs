//! Minimal CSV export.
//!
//! The figure binaries write their series as CSV so the curves can be
//! re-plotted with any external tool. Values never contain separators or
//! quotes (they are numbers and simple labels), so a full CSV
//! implementation is unnecessary — but fields are still escaped
//! defensively.

use std::fmt::Write as _;

/// An in-memory CSV document.
#[derive(Debug, Clone, Default)]
pub struct Csv {
    buf: String,
    columns: usize,
}

impl Csv {
    /// Starts a document with a header row.
    pub fn with_header(cols: &[&str]) -> Self {
        let mut c = Csv {
            buf: String::new(),
            columns: cols.len(),
        };
        c.raw_row(cols.iter().copied());
        c
    }

    fn raw_row<'a>(&mut self, fields: impl Iterator<Item = &'a str>) {
        let mut first = true;
        for f in fields {
            if !first {
                self.buf.push(',');
            }
            first = false;
            push_escaped(&mut self.buf, f);
        }
        self.buf.push('\n');
    }

    /// Appends a row of string fields.
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, fields: &[&str]) {
        assert_eq!(fields.len(), self.columns, "CSV row arity mismatch");
        self.raw_row(fields.iter().copied());
    }

    /// Appends a row of numeric fields formatted with `{:.prec$}`.
    pub fn row_f64(&mut self, fields: &[f64], prec: usize) {
        assert_eq!(fields.len(), self.columns, "CSV row arity mismatch");
        let mut first = true;
        for f in fields {
            if !first {
                self.buf.push(',');
            }
            first = false;
            let _ = write!(self.buf, "{f:.prec$}");
        }
        self.buf.push('\n');
    }

    /// The document text.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Consumes the document into a `String`.
    pub fn into_string(self) -> String {
        self.buf
    }

    /// Number of data rows (excluding the header).
    pub fn data_rows(&self) -> usize {
        self.buf.lines().count().saturating_sub(1)
    }
}

fn push_escaped(buf: &mut String, field: &str) {
    if field.contains([',', '"', '\n']) {
        buf.push('"');
        for ch in field.chars() {
            if ch == '"' {
                buf.push('"');
            }
            buf.push(ch);
        }
        buf.push('"');
    } else {
        buf.push_str(field);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_rows() {
        let mut c = Csv::with_header(&["x", "y"]);
        c.row(&["1", "2"]);
        c.row_f64(&[1.23456, 2.76543], 2);
        assert_eq!(c.as_str(), "x,y\n1,2\n1.23,2.77\n");
        assert_eq!(c.data_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut c = Csv::with_header(&["a"]);
        c.row(&["1", "2"]);
    }

    #[test]
    fn quoting_when_needed() {
        let mut c = Csv::with_header(&["label"]);
        c.row(&["has,comma"]);
        c.row(&["has\"quote"]);
        assert_eq!(c.as_str(), "label\n\"has,comma\"\n\"has\"\"quote\"\n");
    }
}
