//! Scalar sample summaries.

use std::fmt;

/// Mean/std/five-number summary of a sample of `f64`s.
///
/// Used by `EXPERIMENTS.md` generation and the figure binaries to compress
/// a distribution into one table row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// First quartile (nearest rank).
    pub p25: f64,
    /// Median (nearest rank).
    pub median: f64,
    /// Third quartile (nearest rank).
    pub p75: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample; `None` when it is empty (NaNs are dropped).
    pub fn of(samples: &[f64]) -> Option<Summary> {
        let mut xs: Vec<f64> = samples.iter().copied().filter(|x| !x.is_nan()).collect();
        if xs.is_empty() {
            return None;
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("NaNs dropped"));
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let rank = |q: f64| xs[(((q * n as f64).ceil() as usize).clamp(1, n)) - 1];
        Some(Summary {
            n,
            mean,
            std: var.sqrt(),
            min: xs[0],
            p25: rank(0.25),
            median: rank(0.5),
            p75: rank(0.75),
            max: xs[n - 1],
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} std={:.2} min={:.2} p25={:.2} med={:.2} p75={:.2} max={:.2}",
            self.n, self.mean, self.std, self.min, self.p25, self.median, self.p75, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_summary() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.p25, 1.0);
        assert_eq!(s.p75, 3.0);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_nan_only_are_none() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[f64::NAN]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn display_is_compact() {
        let s = Summary::of(&[1.0, 2.0]).unwrap();
        let out = s.to_string();
        assert!(out.contains("n=2"));
        assert!(out.contains("mean=1.50"));
    }
}
