//! Property tests for the streaming accumulators: they must agree with
//! the exact (`Ecdf`/`Summary`) computations on the same samples, and
//! their `merge` must be order-insensitive — the guarantee the parallel
//! experiment runner's bit-identical-to-sequential contract rests on.

use koala_metrics::{mean_ci95, Ecdf, StreamQuantiles, StreamStats, Summary};
use proptest::prelude::*;

/// Splits `samples` into `shards` contiguous shards, accumulates each in
/// its own `StreamStats`, and returns the per-shard accumulators.
fn stat_shards(samples: &[f64], shards: usize) -> Vec<StreamStats> {
    let per = samples.len().div_ceil(shards.max(1));
    samples
        .chunks(per.max(1))
        .map(|chunk| {
            let mut s = StreamStats::new();
            for &x in chunk {
                s.push(x);
            }
            s
        })
        .collect()
}

proptest! {
    /// Streaming mean/min/max equal the exact sample computation, and
    /// streaming variance matches `Summary`'s exact two-pass variance
    /// within floating-point tolerance.
    #[test]
    fn stats_agree_with_exact_summary(samples in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut s = StreamStats::new();
        for &x in &samples {
            s.push(x);
        }
        let exact = Summary::of(&samples).unwrap();
        prop_assert_eq!(s.count() as usize, exact.n);
        prop_assert_eq!(s.min().unwrap(), exact.min);
        prop_assert_eq!(s.max().unwrap(), exact.max);
        let mean = s.mean().unwrap();
        prop_assert!((mean - exact.mean).abs() <= 1e-9 * exact.mean.abs().max(1.0));
        let var = s.variance().unwrap();
        let exact_var = exact.std * exact.std;
        prop_assert!(
            (var - exact_var).abs() <= 1e-6 * exact_var.max(1.0),
            "streaming var {var} vs exact {exact_var}"
        );
    }

    /// Sequential accumulation, in-order shard merging and reversed
    /// shard merging all yield **bit-identical** count/mean/min/max and
    /// tolerance-equal variance.
    #[test]
    fn stats_merge_is_order_insensitive(
        samples in prop::collection::vec(-1e9f64..1e9, 2..300),
        shards in 2usize..8,
    ) {
        let mut sequential = StreamStats::new();
        for &x in &samples {
            sequential.push(x);
        }
        let parts = stat_shards(&samples, shards);
        // In submission order (what the parallel runner does)...
        let mut in_order = StreamStats::new();
        for p in &parts {
            in_order.merge(p);
        }
        // ...and fully reversed (what it never does, but merge must not care).
        let mut reversed = StreamStats::new();
        for p in parts.iter().rev() {
            reversed.merge(p);
        }
        for merged in [&in_order, &reversed] {
            prop_assert_eq!(merged.count(), sequential.count());
            prop_assert_eq!(
                merged.mean().unwrap().to_bits(),
                sequential.mean().unwrap().to_bits(),
                "exact-sum mean must be bit-identical under any sharding"
            );
            prop_assert_eq!(merged.min(), sequential.min());
            prop_assert_eq!(merged.max(), sequential.max());
            let (v, sv) = (merged.variance().unwrap(), sequential.variance().unwrap());
            prop_assert!((v - sv).abs() <= 1e-6 * sv.max(1.0), "var {v} vs {sv}");
        }
    }

    /// Below capacity the reservoir is exact: every quantile equals the
    /// `Ecdf` nearest-rank quantile on the same samples, bit for bit.
    #[test]
    fn quantiles_exact_below_capacity(
        samples in prop::collection::vec(-1e6f64..1e6, 1..256),
        seed in 0u64..1_000,
    ) {
        let mut q = StreamQuantiles::new(seed, 256);
        for &x in &samples {
            q.push(x);
        }
        prop_assert!(q.is_exact());
        let exact = Ecdf::new(samples);
        for i in 0..=20 {
            let p = i as f64 / 20.0;
            prop_assert_eq!(q.quantile(p), exact.quantile(p));
        }
    }

    /// Above capacity the reservoir is a uniform subsample: its
    /// quantile estimates stay within a rank-error window of the exact
    /// distribution (±0.2 rank at capacity 256 is > 6 standard errors).
    #[test]
    fn quantiles_within_rank_tolerance_above_capacity(
        samples in prop::collection::vec(-1e6f64..1e6, 600..1500),
        seed in 0u64..1_000,
    ) {
        let mut q = StreamQuantiles::new(seed, 256);
        for &x in &samples {
            q.push(x);
        }
        prop_assert_eq!(q.retained(), 256);
        let exact = Ecdf::new(samples);
        for i in 1..10 {
            let p = i as f64 / 10.0;
            let est = q.quantile(p).unwrap();
            let lo = exact.quantile((p - 0.2).max(0.0)).unwrap();
            let hi = exact.quantile((p + 0.2).min(1.0)).unwrap();
            prop_assert!(
                (lo..=hi).contains(&est),
                "q{p}: estimate {est} outside exact band [{lo}, {hi}]"
            );
        }
    }

    /// Reservoir merging is order-insensitive: any merge order of
    /// distinct-seed shards retains the identical sample set (hence
    /// bit-identical quantiles), and the total count is exact.
    #[test]
    fn reservoir_merge_is_order_insensitive(
        samples in prop::collection::vec(-1e6f64..1e6, 10..600),
        shards in 2usize..6,
        capacity in 16usize..128,
    ) {
        let per = samples.len().div_ceil(shards);
        let parts: Vec<StreamQuantiles> = samples
            .chunks(per.max(1))
            .enumerate()
            .map(|(i, chunk)| {
                // Distinct per-shard seeds, like the runner's cell seeds.
                let mut q = StreamQuantiles::new(1000 + i as u64, capacity);
                for &x in chunk {
                    q.push(x);
                }
                q
            })
            .collect();
        let mut in_order = parts[0].clone();
        for p in &parts[1..] {
            in_order.merge(p);
        }
        let mut reversed = parts[parts.len() - 1].clone();
        for p in parts[..parts.len() - 1].iter().rev() {
            reversed.merge(p);
        }
        prop_assert_eq!(in_order.ecdf(), reversed.ecdf());
        prop_assert_eq!(in_order.count(), samples.len() as u64);
        prop_assert_eq!(reversed.count(), samples.len() as u64);
        prop_assert!(in_order.retained() <= capacity);
    }

    /// The replication CI always brackets the mean, shrinks with more
    /// replications of the same spread, and collapses at zero variance.
    #[test]
    fn ci_brackets_the_mean(values in prop::collection::vec(-1e3f64..1e3, 2..40)) {
        let ci = mean_ci95(&values).unwrap();
        prop_assert_eq!(ci.n, values.len());
        let h = ci.half_width.unwrap();
        prop_assert!(h >= 0.0);
        prop_assert!(ci.lo() <= ci.mean && ci.mean <= ci.hi());
        let exact_mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((ci.mean - exact_mean).abs() <= 1e-9 * exact_mean.abs().max(1.0));
        // Identical values: zero-width interval.
        let flat = vec![values[0]; values.len()];
        prop_assert_eq!(mean_ci95(&flat).unwrap().half_width, Some(0.0));
    }
}
