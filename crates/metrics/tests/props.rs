//! Property-based tests for the metrics toolkit.

use koala_metrics::{CumulativeCounter, Ecdf, StepSeries, Summary};
use proptest::prelude::*;
use simcore::SimTime;

proptest! {
    /// ECDFs are monotone and bounded in [0, 100].
    #[test]
    fn ecdf_is_monotone(samples in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let e = Ecdf::new(samples.clone());
        let mut xs: Vec<f64> = samples;
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = 0.0;
        for &x in &xs {
            let p = e.percent_at_or_below(x);
            prop_assert!((0.0..=100.0).contains(&p));
            prop_assert!(p >= last - 1e-12);
            last = p;
        }
        prop_assert_eq!(e.percent_at_or_below(f64::INFINITY), 100.0);
    }

    /// Quantiles of an ECDF are always actual samples, ordered by q.
    #[test]
    fn quantiles_are_samples(samples in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let e = Ecdf::new(samples.clone());
        let mut last = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let v = e.quantile(q).unwrap();
            prop_assert!(samples.contains(&v));
            prop_assert!(v >= last);
            last = v;
        }
    }

    /// StepSeries integrals are additive over adjacent windows.
    #[test]
    fn integral_is_additive(
        points in prop::collection::vec((0u64..10_000, 0.0f64..100.0), 1..50),
        split in 1u64..9_999,
    ) {
        let mut sorted = points.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut s = StepSeries::new();
        let mut last = None;
        for (t, v) in sorted {
            if last == Some(t) { continue; }
            last = Some(t);
            s.set(SimTime::from_millis(t), v);
        }
        let a = SimTime::ZERO;
        let m = SimTime::from_millis(split);
        let b = SimTime::from_millis(10_000);
        let whole = s.integral(a, b, 0.0);
        let parts = s.integral(a, m, 0.0) + s.integral(m, b, 0.0);
        prop_assert!((whole - parts).abs() < 1e-6 * whole.abs().max(1.0));
    }

    /// The time-weighted mean always lies within the value range.
    #[test]
    fn weighted_mean_is_bounded(
        points in prop::collection::vec((0u64..10_000, 0.0f64..100.0), 1..50),
    ) {
        let mut sorted = points.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut s = StepSeries::new();
        let mut last = None;
        for (t, v) in sorted {
            if last == Some(t) { continue; }
            last = Some(t);
            s.set(SimTime::from_millis(t), v);
        }
        let mean = s.time_weighted_mean(SimTime::ZERO, SimTime::from_millis(10_000), 0.0);
        prop_assert!((0.0..=100.0 + 1e-9).contains(&mean));
    }

    /// Counter curves are monotone and end at the total.
    #[test]
    fn counter_curve_is_monotone(instants in prop::collection::vec(0u64..10_000, 1..100)) {
        let mut sorted = instants.clone();
        sorted.sort_unstable();
        let mut c = CumulativeCounter::new();
        for t in &sorted {
            c.record(SimTime::from_millis(*t));
        }
        let curve = c.curve(SimTime::ZERO, SimTime::from_millis(10_000), simcore::SimDuration::from_millis(500));
        for w in curve.windows(2) {
            prop_assert!(w[1].1 >= w[0].1);
        }
        prop_assert_eq!(curve.last().unwrap().1, sorted.len());
    }

    /// Summary invariants: min ≤ p25 ≤ median ≤ p75 ≤ max and the mean
    /// lies within [min, max].
    #[test]
    fn summary_orderings(samples in prop::collection::vec(-1e4f64..1e4, 1..200)) {
        let s = Summary::of(&samples).unwrap();
        prop_assert!(s.min <= s.p25);
        prop_assert!(s.p25 <= s.median);
        prop_assert!(s.median <= s.p75);
        prop_assert!(s.p75 <= s.max);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std >= 0.0);
    }
}
