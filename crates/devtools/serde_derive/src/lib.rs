//! Derive macros for the offline serde stand-in. `syn`/`quote` are not
//! available (no network), so this parses the `proc_macro::TokenStream`
//! directly and emits generated impls as source strings.
//!
//! Supported input shapes — exactly what this workspace derives:
//!
//! * structs with named fields (field attribute `#[serde(default)]` honoured)
//! * tuple structs (arity 1 is treated as `#[serde(transparent)]`)
//! * enums with unit, tuple, and struct variants (externally tagged; unit
//!   variants encode as plain strings)
//!
//! Generics are not supported; the derive panics with a clear message on
//! anything it cannot handle, which fails the build loudly rather than
//! generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

/// Skip one attribute (`#` + bracket group) if present; report whether the
/// attribute was `#[serde(default)]`. Any other `#[serde(...)]` argument is
/// unsupported and panics, so new annotations fail the build loudly instead
/// of being silently ignored.
fn skip_attr(tokens: &[TokenTree], i: &mut usize) -> Option<bool> {
    match (tokens.get(*i), tokens.get(*i + 1)) {
        (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
            if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
        {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let mut is_serde_default = false;
            if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                (inner.first(), inner.get(1))
            {
                if id.to_string() == "serde" {
                    for t in args.stream() {
                        match &t {
                            TokenTree::Ident(a) if a.to_string() == "default" => {
                                is_serde_default = true;
                            }
                            TokenTree::Ident(a) if a.to_string() == "transparent" => {
                                // Implied for newtype structs; accepted as documentation.
                            }
                            TokenTree::Punct(p) if p.as_char() == ',' => {}
                            other => panic!(
                                "serde_derive: unsupported #[serde({other})] — this offline \
                                 stand-in only handles `default` and `transparent`"
                            ),
                        }
                    }
                }
            }
            *i += 2;
            Some(is_serde_default)
        }
        _ => None,
    }
}

fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut default = false;
    while let Some(d) = skip_attr(tokens, i) {
        default |= d;
    }
    default
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Count comma-separated segments at angle-bracket depth zero. Parenthesized
/// and bracketed subtrees are single tokens, so only `<`/`>` need tracking —
/// plus the `->` of fn-pointer types, whose `>` is not a closing bracket.
fn count_segments(tokens: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    let mut segments = 0usize;
    let mut segment_has_tokens = false;
    let mut prev_dash = false;
    for t in tokens {
        let is_dash = matches!(t, TokenTree::Punct(p) if p.as_char() == '-');
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                segment_has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' && !prev_dash => {
                depth -= 1;
                segment_has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if segment_has_tokens {
                    segments += 1;
                }
                segment_has_tokens = false;
            }
            _ => segment_has_tokens = true,
        }
        prev_dash = is_dash;
    }
    if segment_has_tokens {
        segments += 1;
    }
    segments
}

/// Parse `attrs? vis? name : Type` fields separated by top-level commas.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let default = skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected ':' after field `{name}`, got {other:?}"),
        }
        // Skip the type: tokens until a comma at angle depth zero (the `>`
        // of a fn-pointer `->` is not a closing bracket).
        let mut depth = 0i32;
        let mut prev_dash = false;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' && !prev_dash => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            prev_dash = matches!(t, TokenTree::Punct(p) if p.as_char() == '-');
            i += 1;
        }
        i += 1; // past the comma (or the end)
        fields.push(Field { name, default });
    }
    fields
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_segments(&g.stream().into_iter().collect::<Vec<_>>());
                i += 1;
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g);
                i += 1;
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        // Discriminant values (`= expr`) are not supported with data-carrying
        // serde enums in this workspace; skip a trailing comma if present.
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => panic!("serde_derive: expected ',' after variant `{name}`, got {other:?}"),
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_input(input: TokenStream) -> (String, Body) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported (deriving `{name}`)");
    }
    let body = match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::NamedStruct(parse_named_fields(g))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Body::TupleStruct(count_segments(&g.stream().into_iter().collect::<Vec<_>>()))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::Enum(parse_variants(g))
        }
        (k, other) => panic!("serde_derive: unsupported input shape: {k} {other:?}"),
    };
    (name, body)
}

fn named_fields_to_value(fields: &[Field], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value({p}{n})),",
                n = f.name,
                p = access_prefix
            )
        })
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", entries.join(""))
}

fn named_fields_from_value(fields: &[Field], ty_ctx: &str, obj_var: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let missing = if f.default {
                "::std::default::Default::default()".to_string()
            } else {
                // Match real serde: a missing `Option<T>` field is `None`
                // (Option deserializes from Null); any other missing field
                // is an error naming the field.
                format!(
                    "match ::serde::Deserialize::from_value(&::serde::Value::Null) {{\
                     ::std::result::Result::Ok(__d) => __d,\
                     ::std::result::Result::Err(_) => return ::std::result::Result::Err(\
                     ::serde::Error::custom(\"{ty_ctx}: missing field `{n}`\")),\
                     }}",
                    n = f.name
                )
            };
            format!(
                "{n}: match ::serde::get_field({obj_var}, \"{n}\") {{\
                 ::std::option::Option::Some(__fv) => ::serde::Deserialize::from_value(__fv)?,\
                 ::std::option::Option::None => {missing},\
                 }},",
                n = f.name
            )
        })
        .collect();
    inits.join("")
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_input(input);
    let to_value_body = match &body {
        Body::NamedStruct(fields) => named_fields_to_value(fields, "&self."),
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(""))
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String(\
                             ::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantShape::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("__b{i}")).collect();
                            let payload = if *arity == 1 {
                                "::serde::Serialize::to_value(__b0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                    .collect();
                                format!("::serde::Value::Array(::std::vec![{}])", items.join(""))
                            };
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), {payload})]),",
                                binds = binds.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let payload = named_fields_to_value(fields, "");
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), {payload})]),",
                                binds = binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(""))
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\
         fn to_value(&self) -> ::serde::Value {{ {to_value_body} }}\
         }}"
    );
    out.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_input(input);
    let from_value_body = match &body {
        Body::NamedStruct(fields) => {
            let inits = named_fields_from_value(fields, &name, "__obj");
            format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"{name}: expected object\"))?;\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Body::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?,"))
                .collect();
            format!(
                "let __a = __v.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"{name}: expected array\"))?;\
                 if __a.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::custom(\"{name}: arity mismatch\")); }}\
                 ::std::result::Result::Ok({name}({}))",
                items.join("")
            )
        }
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantShape::Tuple(arity) => {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?,"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\
                                 let __a = __inner.as_array().ok_or_else(|| \
                                 ::serde::Error::custom(\"{name}::{vn}: expected array\"))?;\
                                 if __a.len() != {arity} {{ return ::std::result::Result::Err(\
                                 ::serde::Error::custom(\"{name}::{vn}: arity mismatch\")); }}\
                                 ::std::result::Result::Ok({name}::{vn}({}))\
                                 }},",
                                items.join("")
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let ctx = format!("{name}::{vn}");
                            let inits = named_fields_from_value(fields, &ctx, "__o");
                            Some(format!(
                                "\"{vn}\" => {{\
                                 let __o = __inner.as_object().ok_or_else(|| \
                                 ::serde::Error::custom(\"{ctx}: expected object\"))?;\
                                 ::std::result::Result::Ok({name}::{vn} {{ {inits} }})\
                                 }},"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "if let ::std::option::Option::Some(__s) = __v.as_str() {{\
                 return match __s {{ {unit} _ => ::std::result::Result::Err(\
                 ::serde::Error::custom(\"{name}: unknown unit variant\")) }};\
                 }}\
                 let (__k, __inner) = __v.as_singleton_object().ok_or_else(|| \
                 ::serde::Error::custom(\"{name}: expected enum value\"))?;\
                 match __k {{ {tagged} _ => ::std::result::Result::Err(\
                 ::serde::Error::custom(\"{name}: unknown variant\")) }}",
                unit = unit_arms.join(""),
                tagged = tagged_arms.join("")
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{ {from_value_body} }}\
         }}"
    );
    out.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}
