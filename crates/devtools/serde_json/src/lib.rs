//! JSON text layer for the offline serde stand-in: renders and parses the
//! [`serde::Value`] tree. Covers `to_string`, `to_string_pretty`, and
//! `from_str` — the calls this workspace makes.

use serde::{Deserialize, Error, Serialize, Value};
use std::fmt::Write as _;

pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // Guarantee a re-parseable float token (keep a `.0` on integral values).
                if *f == f.trunc() && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Inf; match real serde_json
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            level,
            ('[', ']'),
            write_value,
        ),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            entries.len(),
            indent,
            level,
            ('{', '}'),
            |out, (k, v), ind, lvl| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, v, ind, lvl);
            },
        ),
    }
}

fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    level: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(brackets.0);
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        write_item(out, item, indent, level + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    /// Reads four hex digits starting at byte offset `at`.
    fn hex4(&self, at: usize) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error::custom("bad \\u escape"))?,
            16,
        )
        .map_err(|_| Error::custom("bad \\u escape"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            let c = if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: a low-surrogate `\uXXXX`
                                // must follow (JSON escapes non-BMP chars as
                                // UTF-16 surrogate pairs).
                                if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 2) != Some(&b'u')
                                {
                                    return Err(Error::custom(
                                        "unpaired high surrogate in \\u escape",
                                    ));
                                }
                                let low = self.hex4(self.pos + 3)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(Error::custom(
                                        "invalid low surrogate in \\u escape",
                                    ));
                                }
                                self.pos += 6;
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?
                            } else if (0xDC00..=0xDFFF).contains(&code) {
                                return Err(Error::custom("unpaired low surrogate in \\u escape"));
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?
                            };
                            s.push(c);
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            // Integer literals beyond i64/u64 range (e.g. a serialized f64
            // like 1e20 printed in full) degrade to Float, like serde_json's
            // arbitrary-precision fallback.
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::custom(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::custom(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value_shapes() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(42)),
            (
                "b".into(),
                Value::Array(vec![Value::Float(1.5), Value::Null]),
            ),
            ("c".into(), Value::String("x \"y\"\n".into())),
            ("d".into(), Value::Int(-7)),
            ("e".into(), Value::Bool(true)),
        ]);
        let mut text = String::new();
        write_value(&mut text, &v, Some(2), 0);
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        assert_eq!(p.parse_value().unwrap(), v);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let mut text = String::new();
        write_value(&mut text, &Value::Float(3.0), None, 0);
        assert_eq!(text, "3.0");
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        assert_eq!(p.parse_value().unwrap(), Value::Float(3.0));
    }

    #[test]
    fn huge_integral_floats_round_trip() {
        // 1e20 prints as a 21-digit integer token; the parser must degrade
        // to Float instead of failing the u64 parse.
        let mut text = String::new();
        write_value(&mut text, &Value::Float(1e20), None, 0);
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        assert_eq!(p.parse_value().unwrap(), Value::Float(1e20));
        let mut p = Parser {
            bytes: b"-100000000000000000000",
            pos: 0,
        };
        assert_eq!(p.parse_value().unwrap(), Value::Float(-1e20));
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        // Python's json.dumps default (ensure_ascii) escapes non-BMP chars
        // as UTF-16 surrogate pairs.
        let v: String = from_str(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v, "😀");
        assert!(from_str::<String>(r#""\ud83d""#).is_err(), "unpaired high");
        assert!(from_str::<String>(r#""\ude00""#).is_err(), "unpaired low");
        assert!(
            from_str::<String>(r#""\ud83dx""#).is_err(),
            "high not followed by escape"
        );
    }

    #[derive(serde::Serialize, serde::Deserialize, PartialEq, Debug)]
    struct WithOpt {
        a: u32,
        b: Option<u64>,
    }

    #[test]
    fn missing_option_field_is_none_like_real_serde() {
        let v: WithOpt = from_str(r#"{"a": 3}"#).unwrap();
        assert_eq!(v, WithOpt { a: 3, b: None });
        let v: WithOpt = from_str(r#"{"a": 3, "b": null}"#).unwrap();
        assert_eq!(v, WithOpt { a: 3, b: None });
        let v: WithOpt = from_str(r#"{"a": 3, "b": 9}"#).unwrap();
        assert_eq!(v, WithOpt { a: 3, b: Some(9) });
        let err = from_str::<WithOpt>(r#"{"b": 9}"#).unwrap_err();
        assert!(err.0.contains("missing field `a`"), "got: {}", err.0);
    }
}
