//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate, providing the API surface this workspace's benches use. The build
//! environment has no network access, so the real crate cannot be vendored.
//!
//! Measurement model: each `Bencher::iter` call runs the routine once to warm
//! up, then times batches until ~50 ms of wall clock has accumulated (capped
//! at 100k iterations) and reports the mean ns/iter on stdout. Good enough to
//! spot order-of-magnitude regressions; not a statistics engine.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const TARGET: Duration = Duration::from_millis(50);
const MAX_ITERS: u64 = 100_000;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        while self.total < TARGET && self.iters < MAX_ITERS {
            black_box(routine());
            self.iters += 1;
            self.total = start.elapsed();
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        while self.total < TARGET && self.iters < MAX_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let per_iter_ns = if b.iters == 0 {
        0.0
    } else {
        b.total.as_nanos() as f64 / b.iters as f64
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter_ns > 0.0 => {
            format!("  ({:.1} Melem/s)", n as f64 / per_iter_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) if per_iter_ns > 0.0 => {
            format!("  ({:.1} MiB/s)", n as f64 / per_iter_ns * 1e3 / 1.048_576)
        }
        _ => String::new(),
    };
    println!("{name:<48} {per_iter_ns:>14.1} ns/iter{rate}");
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $( $target:path ),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($( $group:path ),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
