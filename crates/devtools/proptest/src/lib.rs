//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, providing exactly the API surface this workspace's property tests
//! use. The build environment has no network access, so the real crate
//! cannot be vendored; this shim keeps the seed tests compiling and running
//! as-written.
//!
//! Semantics versus real proptest:
//!
//! * Inputs are drawn from a deterministic SplitMix64 stream keyed by the
//!   fully-qualified test name and case index, so failures reproduce exactly
//!   across runs and machines.
//! * `prop_assert!`/`prop_assert_eq!` panic immediately (no shrinking).
//! * `prop_assume!` skips the current case.
//! * The default case count is 64 (`ProptestConfig::with_cases` overrides).

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic SplitMix64 generator used to derive all test inputs.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed a stream for one test case. The seed mixes a stable hash of the
    /// test's module path and name with the case index, so every case of
    /// every test draws from an independent, reproducible stream.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, then fold in the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test inputs. Unlike real proptest there is no shrink tree;
/// `generate` draws one value.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Coerce a concrete strategy into a boxed one (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident : $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types with a canonical "whole domain" strategy, for `any::<T>()`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only, spanning a wide magnitude band.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Why a test case body bailed out early. `Reject` marks a `prop_assume!`
/// failure (the case is skipped, not failed); `Ok(())`-style early returns in
/// test bodies also produce this type via inference.
#[derive(Debug)]
pub enum CaseError {
    Reject,
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, CaseError, Just, ProptestConfig, Strategy, TestRng,
    };

    /// Mirror of real proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_cases! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_cases! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (
        cfg = $cfg:expr;
        $(
            $(#[$attr:meta])*
            fn $name:ident( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __executed: u32 = 0;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )*
                    // Run the case body as a Result-returning closure, like
                    // real proptest: bodies may `return Ok(())` early, and
                    // `prop_assume!` rejects via `Err` (case skipped).
                    let __outcome: ::std::result::Result<(), $crate::CaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if __outcome.is_ok() {
                        __executed += 1;
                    }
                }
                // Mirror real proptest's global-reject limit: a test whose
                // every case was rejected has asserted nothing.
                assert!(
                    __executed > 0,
                    "proptest stand-in: all {} cases of `{}` were rejected by prop_assume!",
                    __config.cases,
                    stringify!($name),
                );
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// Expands to an early `Err` return from the per-case closure in `proptest!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::CaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::OneOf(vec![ $( $crate::boxed($strat) ),+ ])
    };
}
