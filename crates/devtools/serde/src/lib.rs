//! Offline stand-in for [`serde`](https://crates.io/crates/serde). The build
//! environment has no network access, so the real crate cannot be vendored;
//! this shim keeps the workspace's `#[derive(serde::Serialize,
//! serde::Deserialize)]` annotations and the `koala-sim` JSON config
//! round-trip working.
//!
//! Instead of serde's visitor-based zero-copy model, everything funnels
//! through an owned [`Value`] tree (a JSON-shaped enum). `serde_json` (the
//! sibling stub) renders and parses that tree. Round-trips through this pair
//! are lossless for the types this workspace derives; compatibility with real
//! serde wire formats is explicitly a non-goal.
//!
//! Supported container attributes: `#[serde(transparent)]` (implied for
//! newtype structs). Supported field attributes: `#[serde(default)]`.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-shaped owned data tree. Object keys keep insertion order so
/// serialized output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers (preserves full `u64` precision).
    UInt(u64),
    /// Negative integers.
    Int(i64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// For externally-tagged enum payloads: an object with exactly one key.
    pub fn as_singleton_object(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Object(m) if m.len() == 1 => Some((&m[0].0, &m[0].1)),
            _ => None,
        }
    }
}

/// Look up a field by key in an object's entry list (helper for derived code).
pub fn get_field<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::UInt(n) => n,
                    Value::Int(n) if n >= 0 => n as u64,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

uint_impls!(u8, u16, u32, u64, usize);

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match *v {
                    Value::UInt(n) => i64::try_from(n)
                        .map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))?,
                    Value::Int(n) => n,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::UInt(n) => Ok(n as $t),
                    Value::Int(n) => Ok(n as $t),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! tuple_impls {
    ($(($($n:ident : $i:tt),+))*) => {$(
        impl<$($n: Serialize),+> Serialize for ($($n,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($n: Deserialize),+> Deserialize for ($($n,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const ARITY: usize = 0 $(+ { let _ = $i; 1 })+;
                let a = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                if a.len() != ARITY {
                    return Err(Error::custom("tuple arity mismatch"));
                }
                Ok(($($n::from_value(&a[$i])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
