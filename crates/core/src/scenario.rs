//! Composable experiment scenarios: a fluent builder over
//! [`ExperimentConfig`] plus the single place experiment cell labels are
//! derived.
//!
//! The paper's experiments are points in a small space (approach ×
//! malleability policy × workload); the ROADMAP wants that space open —
//! "as many scenarios as you can imagine". [`ScenarioBuilder`] assembles
//! any point declaratively, selecting policies **by registry name** (see
//! [`crate::policy::PolicyRegistry`]), and the legacy
//! [`ExperimentConfig::paper_pra`] / [`ExperimentConfig::paper_pwa`]
//! presets are thin wrappers over it (bit-identical results, asserted by
//! test).
//!
//! ```
//! use koala::scenario::{Scenario, Topology};
//! use appsim::workload::WorkloadSpec;
//!
//! let scenario = Scenario::builder()
//!     .topology(Topology::Das3)
//!     .workload(WorkloadSpec::wm())
//!     .jobs(10)
//!     .placement("worst_fit")
//!     .malleability("egs")
//!     .pra()
//!     .seeds(0..2)
//!     .build()
//!     .unwrap();
//! assert_eq!(scenario.config().name, "EGS/Wm");
//! let report = scenario.run();
//! assert_eq!(report.runs.len(), 2);
//! assert!(report.completion_ratio() > 0.99);
//! ```

use appsim::workload::{SubmittedJob, WorkloadSpec};
use multicluster::{BackgroundLoad, ControlPlaneFaultSpec, FailurePolicy, FailureSpec};
use simcore::SimDuration;

use crate::config::{
    workload_label, Approach, ConfigError, ElasticityConfig, ExperimentConfig, FileSpec,
    NetworkConfig, ReportConfig, RetryConfig, SchedulerConfig, WarmFork,
};
use crate::policy::PolicyRegistry;
use crate::report::{MultiReport, MultiSummary, ReportMode};

/// The multicluster substrate a scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// The homogeneous Table I DAS-3 preset (272 nodes, 5 clusters).
    #[default]
    Das3,
    /// The heterogeneous DAS-3 variant (per-site compute speeds).
    Das3Heterogeneous,
    /// A uniform synthetic multicluster: `clusters` identical sites of
    /// `nodes_per_cluster` nodes (the cluster-count sweep axis).
    Uniform {
        /// Number of identical clusters.
        clusters: u32,
        /// Nodes per cluster.
        nodes_per_cluster: u32,
    },
}

/// What a scenario's jobs come from: an explicit [`WorkloadSpec`], or a
/// model-driven source selected **by registry name** (see
/// [`appsim::generate::WorkloadRegistry`]) — both flow through
/// [`ScenarioBuilder::workload`], so
/// `Scenario::builder().workload("poisson_lublin")` works exactly like
/// `.workload(WorkloadSpec::wm())`.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadChoice {
    /// The paper-style declarative workload description.
    Spec(WorkloadSpec),
    /// A named source from the workload registry.
    Source(String),
}

impl From<WorkloadSpec> for WorkloadChoice {
    fn from(spec: WorkloadSpec) -> Self {
        WorkloadChoice::Spec(spec)
    }
}

impl From<&str> for WorkloadChoice {
    fn from(name: &str) -> Self {
        WorkloadChoice::Source(name.to_string())
    }
}

impl From<String> for WorkloadChoice {
    fn from(name: String) -> Self {
        WorkloadChoice::Source(name)
    }
}

/// Derives the report label of one experiment cell from its policy
/// labels and workload — the **single** place cell names are composed,
/// so perf JSON, CSV panels and the figure binaries cannot drift from
/// each other. The paper's form is `"EGS/Wm"`; pass an [`Approach`] to
/// prefix it for cross-approach sweeps (`"PWA/EGS/Wm'"`), and a
/// placement label for cross-placement matrices (`"FF+EGS/Wm"`).
pub fn cell_label(
    approach: Option<Approach>,
    placement_label: Option<&str>,
    policy_label: &str,
    workload: &WorkloadSpec,
) -> String {
    let policies = match placement_label {
        Some(p) => format!("{p}+{policy_label}"),
        None => policy_label.to_string(),
    };
    let base = format!("{}/{}", policies, workload_label(workload));
    match approach {
        Some(a) => format!("{}/{}", a.label(), base),
        None => base,
    }
}

/// A validated, runnable experiment scenario: an [`ExperimentConfig`]
/// plus the seed list it runs across. Build one with
/// [`Scenario::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    cfg: ExperimentConfig,
    seeds: Vec<u64>,
    mode: ReportMode,
}

impl Scenario {
    /// Starts a builder with the paper's defaults: Worst-Fit placement,
    /// FPSMA under PRA, the testbed's concurrent-user background load,
    /// a 200 000 s horizon backstop, and seed 0.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// The assembled configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.cfg
    }

    /// Unwraps into the configuration (for call sites that manage seeds
    /// themselves, e.g. the pooled cell runner).
    pub fn into_config(self) -> ExperimentConfig {
        self.cfg
    }

    /// The seeds the scenario runs across.
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// How the scenario reports ([`ScenarioBuilder::summarized`] flips
    /// it to the memory-bounded path).
    pub fn mode(&self) -> ReportMode {
        self.mode
    }

    /// Runs the scenario across its seeds on the parallel cell runner
    /// (see [`crate::run_seeds`]), materializing full reports.
    ///
    /// # Panics
    /// Panics when the scenario was built with
    /// [`ScenarioBuilder::summarized`] — a full `MultiReport` would
    /// defeat the memory bound; use [`Scenario::run_summary`].
    pub fn run(&self) -> MultiReport {
        assert!(
            self.mode == ReportMode::Full,
            "scenario built with .summarized(): use Scenario::run_summary()"
        );
        crate::run_seeds(&self.cfg, &self.seeds)
    }

    /// [`Scenario::run`] with an explicit worker count.
    ///
    /// # Panics
    /// Panics for summarized scenarios, like [`Scenario::run`].
    pub fn run_with_threads(&self, threads: usize) -> MultiReport {
        assert!(
            self.mode == ReportMode::Full,
            "scenario built with .summarized(): use Scenario::run_summary_with_threads()"
        );
        crate::parallel::run_seeds_with_threads(&self.cfg, &self.seeds, threads)
    }

    /// Runs the scenario through the memory-bounded summary path (one
    /// [`crate::report::SummaryReport`] per seed, aggregated in seed
    /// order). Available in either mode — summarizing a full scenario is
    /// always allowed.
    pub fn run_summary(&self) -> MultiSummary {
        crate::run_seeds_summary(&self.cfg, &self.seeds)
    }

    /// [`Scenario::run_summary`] with an explicit worker count.
    pub fn run_summary_with_threads(&self, threads: usize) -> MultiSummary {
        crate::parallel::run_seeds_summary_with_threads(&self.cfg, &self.seeds, threads)
    }

    /// Runs the scenario through the **streaming intake**: a bounded
    /// look-ahead window of arrivals, jobs retired at their terminal
    /// phase, memory-bounded summaries — the path million-job scenarios
    /// take. An explicit trace streams with its documented precedence;
    /// otherwise the scenario must be generator-backed (built with
    /// `.workload("source_name")`). Bit-identical across thread counts,
    /// like every runner.
    ///
    /// # Panics
    /// Panics when the scenario has neither a trace nor a named
    /// workload source.
    pub fn run_summary_streamed(&self, lookahead: usize) -> MultiSummary {
        crate::parallel::run_seeds_stream_summary_with_threads(
            &self.cfg,
            &self.seeds,
            crate::parallel::default_threads(),
            lookahead,
        )
    }
}

/// Fluent assembly of a [`Scenario`]. See the module docs for a full
/// example; every setter has the paper's value as its default, so a
/// builder only states what its scenario *changes*.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    name: Option<String>,
    topology: Topology,
    workload: Option<WorkloadChoice>,
    jobs: Option<usize>,
    sched: SchedulerConfig,
    background: BackgroundLoad,
    seed: u64,
    seeds: Option<Vec<u64>>,
    replications: Option<usize>,
    horizon: Option<SimDuration>,
    trace: Option<Vec<SubmittedJob>>,
    mode: ReportMode,
    report: ReportConfig,
    elasticity: ElasticityConfig,
    network: Option<NetworkConfig>,
    warm_fork: Option<WarmFork>,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder {
            name: None,
            topology: Topology::Das3,
            workload: None,
            jobs: None,
            sched: SchedulerConfig::default(),
            background: BackgroundLoad::concurrent_users(0.30),
            seed: 0,
            seeds: None,
            replications: None,
            horizon: Some(SimDuration::from_secs(200_000)),
            trace: None,
            mode: ReportMode::Full,
            report: ReportConfig::default(),
            elasticity: ElasticityConfig::default(),
            network: None,
            warm_fork: None,
        }
    }
}

impl ScenarioBuilder {
    /// Overrides the derived report label (default:
    /// [`cell_label`]`(None, None, policy_label, workload)`, e.g.
    /// `"EGS/Wm"`).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Selects the multicluster substrate.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// The KOALA workload (required unless a [`ScenarioBuilder::trace`]
    /// is given): either an explicit [`WorkloadSpec`], or the registry
    /// name of a model-driven source (`.workload("poisson_lublin")`) —
    /// see [`WorkloadChoice`].
    pub fn workload(mut self, workload: impl Into<WorkloadChoice>) -> Self {
        self.workload = Some(workload.into());
        self
    }

    /// Overrides the workload's job count (convenience for scaled-down
    /// smoke runs of a standard workload).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// Selects the placement policy by registry name (default
    /// `"worst_fit"`).
    pub fn placement(mut self, name: impl Into<String>) -> Self {
        self.sched.placement = name.into();
        self
    }

    /// Selects the malleability-management policy by registry name
    /// (default `"fpsma"`).
    pub fn malleability(mut self, name: impl Into<String>) -> Self {
        self.sched.malleability = name.into();
        self
    }

    /// Sets the job-management approach.
    pub fn approach(mut self, approach: Approach) -> Self {
        self.sched.approach = approach;
        self
    }

    /// Shorthand for `.approach(Approach::Pra)`.
    pub fn pra(self) -> Self {
        self.approach(Approach::Pra)
    }

    /// Shorthand for `.approach(Approach::Pwa)`.
    pub fn pwa(self) -> Self {
        self.approach(Approach::Pwa)
    }

    /// Sets the background (local-user) load (default: the testbed's
    /// concurrent users at 30%).
    pub fn background(mut self, background: BackgroundLoad) -> Self {
        self.background = background;
        self
    }

    /// Arbitrary scheduler tweaks (thresholds, periods, claiming, …) on
    /// top of the named selections — the escape hatch that keeps the
    /// builder small while every ablation stays expressible.
    pub fn scheduler(mut self, f: impl FnOnce(&mut SchedulerConfig)) -> Self {
        f(&mut self.sched);
        self
    }

    /// Master seed for single-seed runs (default 0). Ignored when
    /// [`ScenarioBuilder::seeds`] is set.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The seeds a [`Scenario::run`] sweeps across (default: just the
    /// master seed). Takes precedence over
    /// [`ScenarioBuilder::replications`].
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = Some(seeds.into_iter().collect());
        self
    }

    /// Runs `n` replications: seeds `seed, seed+1, …, seed+n−1` derived
    /// from the master seed (the paper repeats every combination 4
    /// times). An explicit [`ScenarioBuilder::seeds`] list wins over
    /// this; `n = 0` fails the build with [`ConfigError::NoSeeds`].
    pub fn replications(mut self, n: usize) -> Self {
        self.replications = Some(n);
        self
    }

    /// Switches the scenario to the **memory-bounded summary path**:
    /// [`Scenario::run_summary`] streams per-job metrics through
    /// mergeable accumulators instead of materializing job tables,
    /// utilization series or traces ([`Scenario::run`] then panics, so
    /// a summarized scenario cannot silently fall back to full
    /// reports).
    pub fn summarized(mut self) -> Self {
        self.mode = ReportMode::Summarized;
        self
    }

    /// Warmup window for summarized runs: jobs submitted before
    /// `warmup`, and utilization/operation activity inside it, are
    /// trimmed from the metrics (default: zero).
    pub fn warmup(mut self, warmup: SimDuration) -> Self {
        self.report.warmup = warmup;
        self
    }

    /// Capacity of each metric's bounded-memory quantile reservoir in
    /// summarized runs (default 512; see
    /// [`ReportConfig::quantile_capacity`]).
    pub fn quantile_capacity(mut self, capacity: usize) -> Self {
        self.report.quantile_capacity = capacity;
        self
    }

    /// Sets the hard-stop horizon (default 200 000 s).
    pub fn horizon(mut self, horizon: SimDuration) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Removes the horizon backstop (runs finish naturally).
    pub fn no_horizon(mut self) -> Self {
        self.horizon = None;
        self
    }

    /// Replaces the generated workload with an explicit job stream (SWF
    /// replay, injected co-allocated jobs, …).
    pub fn trace(mut self, trace: Vec<SubmittedJob>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Sets the KIS propagation lag — the first-class staleness axis:
    /// the scheduler places against snapshots at least this old
    /// (quantized up to the poll period; see
    /// [`multicluster::InfoService::with_lag`]).
    pub fn staleness(mut self, lag: SimDuration) -> Self {
        self.elasticity.kis_lag = lag;
        self
    }

    /// Selects the autoscaling policy by registry name (default
    /// `"none"`; see [`crate::autoscaler::AutoscalerRegistry`]).
    pub fn autoscaler(mut self, name: impl Into<String>) -> Self {
        self.elasticity.autoscaler = name.into();
        self
    }

    /// Sets the autoscale cycle period and the propagation delay between
    /// a scale decision and the capacity actually moving.
    pub fn autoscale_timing(mut self, period: SimDuration, delay: SimDuration) -> Self {
        self.elasticity.autoscale_period = period;
        self.elasticity.autoscale_delay = delay;
        self
    }

    /// Enables the seeded node crash/recover stream.
    pub fn failures(mut self, spec: FailureSpec) -> Self {
        self.elasticity.failures = Some(spec);
        self
    }

    /// Chooses what happens to KOALA jobs caught on crashed nodes
    /// (default: re-queue).
    pub fn failure_policy(mut self, policy: FailurePolicy) -> Self {
        self.elasticity.failure_policy = policy;
        self
    }

    /// Sets the monitoring sample period (zero disables monitoring,
    /// the default).
    pub fn monitor(mut self, period: SimDuration) -> Self {
        self.elasticity.monitor_period = period;
        self
    }

    /// Enables the seeded control-plane fault model: lossy, jittery,
    /// duplicating KOALA↔GRAM messaging (and, through the spec's
    /// `flaky` field, per-cluster flaky channel episodes). Timeout and
    /// retry behaviour comes from [`ScenarioBuilder::retry`].
    pub fn ctrl_faults(mut self, spec: ControlPlaneFaultSpec) -> Self {
        self.elasticity.ctrl_faults = Some(spec);
        self
    }

    /// Overrides the control-plane timeout/retry configuration (inert
    /// without [`ScenarioBuilder::ctrl_faults`]: reliable messaging
    /// never trips a deadline).
    pub fn retry(mut self, retry: RetryConfig) -> Self {
        self.sched.retry = retry;
        self
    }

    /// Enables the contended-network layer with the named topology
    /// from the global [`multicluster::TopologyRegistry`] (`"das3"`,
    /// `"flat_wan"`, `"star"`, `"hierarchical"`, or parametric
    /// `"fat_tree_<k>"`, e.g. `.network("fat_tree_16")`). Without this
    /// call the layer is off and transfers cost nothing — the strict
    /// passivity default.
    pub fn network(mut self, topology: impl Into<String>) -> Self {
        self.network_mut().topology = topology.into();
        self
    }

    /// Registers a file in the network layer's replica catalog (index
    /// order defines the [`multicluster::FileId`]s that `trace` jobs
    /// reference through [`appsim::JobSpec::input_files`]). Implies
    /// `.network("das3")` unless a topology was already chosen.
    pub fn network_file(mut self, size_gb: f64, replicas: impl IntoIterator<Item = u16>) -> Self {
        self.network_mut().files.push(FileSpec {
            size_gb,
            replicas: replicas.into_iter().collect(),
        });
        self
    }

    /// Sets the redistribution traffic a reconfiguration pushes over
    /// the job's site access link, in GB per processor moved (default
    /// zero — no reconfig traffic). Implies `.network("das3")` unless
    /// a topology was already chosen.
    pub fn reconfig_traffic(mut self, gb_per_proc: f64) -> Self {
        self.network_mut().reconfig_gb_per_proc = gb_per_proc;
        self
    }

    /// Marks this scenario for warm-forked sweeps: the warmup prefix up
    /// to `at` runs once per `(workload, seed)` under the default base
    /// policies (Worst Fit + FPSMA) and every policy cell forks from the
    /// snapshot (see [`WarmFork`] and
    /// [`crate::parallel::run_cells_summary_warm`]). Use
    /// [`ScenarioBuilder::warm_fork_with`] to choose the base policies.
    pub fn warm_fork(mut self, at: SimDuration) -> Self {
        self.warm_fork = Some(WarmFork::at(at));
        self
    }

    /// Like [`ScenarioBuilder::warm_fork`], with explicit base policies
    /// for the shared warmup prefix.
    pub fn warm_fork_with(mut self, warm_fork: WarmFork) -> Self {
        self.warm_fork = Some(warm_fork);
        self
    }

    fn network_mut(&mut self) -> &mut NetworkConfig {
        self.network.get_or_insert_with(|| NetworkConfig {
            topology: "das3".to_string(),
            files: Vec::new(),
            reconfig_gb_per_proc: 0.0,
        })
    }

    /// Validates and assembles the scenario. The derived name comes from
    /// the malleability policy's label and the workload ([`cell_label`]),
    /// exactly like the legacy paper presets.
    pub fn build(self) -> Result<Scenario, ConfigError> {
        // Resolved for the label; cfg.validate() below re-checks both
        // policy names (and reports the same ConfigError::Policy for an
        // unknown placement).
        let malleability = PolicyRegistry::global().malleability(&self.sched.malleability)?;
        // Even trace replays need a WorkloadSpec (engine sizing reads
        // its job count); an empty-app spec is fine alongside a trace.
        let Some(choice) = self.workload else {
            return Err(ConfigError::MissingWorkload);
        };
        let (mut workload, generator, source_label) = match choice {
            WorkloadChoice::Spec(spec) => (spec, None, None),
            WorkloadChoice::Source(name) => {
                let src = appsim::generate::WorkloadRegistry::global().source(&name)?;
                // The spec is only a carrier for the job count here; the
                // jobs come from the named source.
                let carrier = WorkloadSpec {
                    apps: Vec::new(),
                    ..WorkloadSpec::wm()
                };
                (carrier, Some(name), Some(src.label().to_string()))
            }
        };
        // Derive the label before any jobs() scale-down: the name
        // describes the workload family (Wm vs Wm'), which is judged by
        // the nominal span of the *full* spec.
        let name = self.name.unwrap_or_else(|| match &source_label {
            Some(source) => format!("{}/{}", malleability.label(), source),
            None => cell_label(None, None, malleability.label(), &workload),
        });
        if let Some(jobs) = self.jobs {
            workload.jobs = jobs;
        }
        let uniform_topology = match self.topology {
            Topology::Uniform {
                clusters,
                nodes_per_cluster,
            } => Some(crate::config::UniformTopology {
                clusters,
                nodes_per_cluster,
            }),
            _ => None,
        };
        let cfg = ExperimentConfig {
            name,
            sched: self.sched,
            workload,
            generator,
            background: self.background,
            seed: self.seed,
            horizon: self.horizon,
            trace: self.trace,
            heterogeneous: self.topology == Topology::Das3Heterogeneous,
            uniform_topology,
            report: self.report,
            elasticity: self.elasticity,
            network: self.network,
            warm_fork: self.warm_fork,
        };
        cfg.validate()?;
        let seeds = match (self.seeds, self.replications) {
            (Some(seeds), _) if seeds.is_empty() => return Err(ConfigError::NoSeeds),
            (Some(seeds), _) => seeds,
            (None, Some(0)) => return Err(ConfigError::NoSeeds),
            (None, Some(n)) => (0..n as u64).map(|i| cfg.seed.wrapping_add(i)).collect(),
            (None, None) => vec![cfg.seed],
        };
        Ok(Scenario {
            cfg,
            seeds,
            mode: self.mode,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_reproduce_the_paper_pra_preset() {
        let via_builder = Scenario::builder()
            .malleability("egs")
            .workload(WorkloadSpec::wm())
            .build()
            .unwrap();
        let preset = ExperimentConfig::paper_pra("egs", WorkloadSpec::wm());
        assert_eq!(via_builder.config(), &preset);
        assert_eq!(via_builder.seeds(), &[0]);
    }

    #[test]
    fn builder_covers_the_pwa_preset_too() {
        let via_builder = Scenario::builder()
            .malleability("fpsma")
            .workload(WorkloadSpec::wmr_prime())
            .pwa()
            .build()
            .unwrap();
        let preset = ExperimentConfig::paper_pwa("fpsma", WorkloadSpec::wmr_prime());
        assert_eq!(via_builder.config(), &preset);
    }

    #[test]
    fn warm_fork_setters_stamp_the_config() {
        let at = SimDuration::from_secs(900);
        let s = Scenario::builder()
            .malleability("egs")
            .workload(WorkloadSpec::wm())
            .warm_fork(at)
            .build()
            .unwrap();
        assert_eq!(s.config().warm_fork, Some(WarmFork::at(at)));
        let explicit = WarmFork {
            at,
            base_placement: "first_fit".into(),
            base_malleability: "equipartition".into(),
        };
        let s = Scenario::builder()
            .malleability("egs")
            .workload(WorkloadSpec::wm())
            .warm_fork_with(explicit.clone())
            .build()
            .unwrap();
        assert_eq!(s.config().warm_fork, Some(explicit));
    }

    #[test]
    fn derived_names_come_from_cell_label() {
        let s = Scenario::builder()
            .malleability("greedy_grow_lazy_shrink")
            .workload(WorkloadSpec::wm_prime())
            .build()
            .unwrap();
        assert_eq!(s.config().name, "GGLS/Wm'");
        assert_eq!(
            cell_label(Some(Approach::Pwa), None, "GGLS", &WorkloadSpec::wm_prime()),
            "PWA/GGLS/Wm'"
        );
        assert_eq!(
            cell_label(None, Some("FF"), "EGS", &WorkloadSpec::wm()),
            "FF+EGS/Wm"
        );
    }

    #[test]
    fn unknown_policy_names_fail_the_build() {
        let err = Scenario::builder()
            .malleability("beyond_the_paper")
            .workload(WorkloadSpec::wm())
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Policy(_)), "{err}");
        let err = Scenario::builder()
            .placement("nowhere_fit")
            .workload(WorkloadSpec::wm())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("nowhere_fit"));
    }

    #[test]
    fn missing_workload_and_empty_seeds_fail_the_build() {
        assert_eq!(
            Scenario::builder().build().unwrap_err(),
            ConfigError::MissingWorkload
        );
        assert_eq!(
            Scenario::builder()
                .workload(WorkloadSpec::wm())
                .seeds(std::iter::empty())
                .build()
                .unwrap_err(),
            ConfigError::NoSeeds
        );
    }

    #[test]
    fn invalid_scheduler_tweaks_are_caught_at_build_time() {
        let err = Scenario::builder()
            .workload(WorkloadSpec::wm())
            .scheduler(|s| s.koala_share = 0.0)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::KoalaShareZero);
    }

    #[test]
    fn jobs_and_seed_overrides_apply() {
        let s = Scenario::builder()
            .workload(WorkloadSpec::wm())
            .jobs(7)
            .seed(42)
            .build()
            .unwrap();
        assert_eq!(s.config().workload.jobs, 7);
        assert_eq!(s.config().seed, 42);
        assert_eq!(s.seeds(), &[42]);
    }

    #[test]
    fn report_tunables_land_in_the_config() {
        let s = Scenario::builder()
            .workload(WorkloadSpec::wm())
            .summarized()
            .warmup(SimDuration::from_secs(300))
            .quantile_capacity(64)
            .build()
            .unwrap();
        assert_eq!(s.mode(), crate::report::ReportMode::Summarized);
        assert_eq!(s.config().report.warmup, SimDuration::from_secs(300));
        assert_eq!(s.config().report.quantile_capacity, 64);
        // Default scenarios stay on the full path with default report
        // settings (so the paper presets are untouched).
        let s = Scenario::builder()
            .workload(WorkloadSpec::wm())
            .build()
            .unwrap();
        assert_eq!(s.mode(), crate::report::ReportMode::Full);
        assert_eq!(s.config().report, crate::config::ReportConfig::default());
        // A zero reservoir capacity is a typed build error.
        let err = Scenario::builder()
            .workload(WorkloadSpec::wm())
            .quantile_capacity(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroQuantileCapacity);
    }

    #[test]
    fn heterogeneous_topology_maps_to_the_flag() {
        let s = Scenario::builder()
            .workload(WorkloadSpec::wm())
            .topology(Topology::Das3Heterogeneous)
            .build()
            .unwrap();
        assert!(s.config().heterogeneous);
    }

    #[test]
    fn uniform_topology_lands_in_the_config() {
        let s = Scenario::builder()
            .workload(WorkloadSpec::wm())
            .topology(Topology::Uniform {
                clusters: 8,
                nodes_per_cluster: 34,
            })
            .build()
            .unwrap();
        assert_eq!(
            s.config().uniform_topology,
            Some(crate::config::UniformTopology {
                clusters: 8,
                nodes_per_cluster: 34
            })
        );
        assert!(!s.config().heterogeneous);
    }

    #[test]
    fn workload_by_name_selects_a_generator_and_labels_the_cell() {
        let s = Scenario::builder()
            .workload("bursty_lublin")
            .malleability("egs")
            .jobs(12)
            .build()
            .unwrap();
        assert_eq!(s.config().generator.as_deref(), Some("bursty_lublin"));
        assert_eq!(s.config().name, "EGS/BurstLF");
        assert_eq!(s.config().workload.jobs, 12);
        // Explicit specs still work through the same setter.
        let s = Scenario::builder()
            .workload(WorkloadSpec::wm())
            .build()
            .unwrap();
        assert_eq!(s.config().generator, None);
        assert_eq!(s.config().name, "FPSMA/Wm");
    }
}
