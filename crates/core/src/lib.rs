//! # koala — the KOALA multicluster scheduler with malleability support
//!
//! This crate is the reproduction of the paper's contribution: the KOALA
//! grid scheduler (Mohamed & Epema) extended with support for malleable
//! applications via the DYNACO framework (Buisson et al.), as published
//! in *Scheduling Malleable Applications in Multicluster Systems*
//! (IEEE CLUSTER 2007).
//!
//! The pieces map one-to-one onto the paper:
//!
//! * [`policy`] — the open scheduling-policy API: the object-safe
//!   [`policy::Placement`] / [`policy::Malleability`] traits and the
//!   [`policy::PolicyRegistry`] mapping string names to constructors.
//!   Adding a policy is a trait impl plus a registry entry — nothing in
//!   the simulation core dispatches on concrete policy types.
//! * [`placement`] — KOALA's placement policies (Section IV-A) as named
//!   implementors: Worst Fit, Close-to-Files, Cluster Minimization,
//!   Flexible Cluster Minimization (plus a First-Fit baseline); and the
//!   placement queue with its retry threshold.
//! * [`malleability`] — the malleability manager (Section V): the
//!   **PRA**/**PWA** job-management approaches and the **FPSMA**/**EGS**
//!   malleability-management policies, plus the equipartition, folding
//!   and greedy-grow/lazy-shrink baselines.
//! * [`autoscaler`] — the elasticity layer's decision policies: the
//!   object-safe [`autoscaler::Autoscaler`] trait and its
//!   [`autoscaler::AutoscalerRegistry`], the third registry twin, with
//!   `none`/`threshold`/`queue_depth` built-ins.
//! * [`scenario`] — the composable [`scenario::ScenarioBuilder`]:
//!   experiments assembled declaratively, with policies selected by
//!   registry name; the paper presets are thin wrappers over it.
//! * [`runner`] — the Malleable Runner (MRunner): drives a malleable
//!   application as a collection of size-1 GRAM jobs, overlapping GRAM
//!   interactions with execution (Section V-A).
//! * [`sim`] — the simulation world tying the scheduler to the
//!   `multicluster` and `appsim` substrates; event definitions and
//!   handlers.
//! * [`parallel`] — the work-stealing cell runner executing
//!   `(configuration × seed)` sweeps across OS threads with
//!   deterministic, sequential-identical merged output.
//! * [`config`] — scheduler and experiment configuration, including every
//!   constant the paper leaves unspecified (with justifications).
//! * [`report`] — per-run and multi-seed reports feeding the figure
//!   binaries.
//!
//! ## Quick start
//!
//! ```
//! use koala::scenario::Scenario;
//! use appsim::workload::WorkloadSpec;
//!
//! // Fig. 7, EGS/Wm cell, one seed, scaled down to 30 jobs for the doctest.
//! let scenario = Scenario::builder()
//!     .malleability("egs")
//!     .workload(WorkloadSpec::wm())
//!     .jobs(30)
//!     .seed(1)
//!     .build()
//!     .unwrap();
//! let report = koala::run_experiment(scenario.config());
//! assert_eq!(report.jobs.len(), 30);
//! assert!(report.jobs.completion_ratio() > 0.99);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod autoscaler;
pub mod avail;
pub mod config;
pub mod malleability;
pub mod parallel;
pub mod placement;
pub mod policy;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod sim;
pub mod snapshot;

mod ids;
mod job;

pub use autoscaler::{
    Autoscaler, AutoscalerError, AutoscalerRegistry, ClusterObservation, NoScaler,
    QueueDepthScaler, ScaleDecision, ThresholdScaler,
};
pub use config::{
    Approach, ClaimingPolicy, ConfigError, ElasticityConfig, ExperimentConfig, ReportConfig,
    SchedulerConfig, UniformTopology, WarmFork,
};
pub use ids::JobId;
pub use job::{Job, JobPhase};
pub use parallel::{
    run_seeds_sequential, run_seeds_stream_summary_sequential,
    run_seeds_stream_summary_with_threads, run_seeds_summary_sequential,
    run_seeds_summary_with_threads, run_seeds_with_threads,
};
pub use policy::{Malleability, Placement, PolicyError, PolicyRegistry};
pub use report::{MultiReport, MultiSummary, ReportMode, RunReport, SummaryReport};
pub use scenario::{Scenario, ScenarioBuilder, Topology, WorkloadChoice};
pub use sim::{
    engine_for, fork_summary, resume_summary, run_experiment, run_experiment_seeded,
    run_experiment_summary, run_experiment_summary_seeded, run_generator_summary_seeded, run_seeds,
    run_seeds_summary, run_stream_summary, try_run_experiment, try_run_experiment_seeded,
    try_run_experiment_summary, try_run_experiment_summary_seeded,
    try_run_generator_summary_seeded, try_run_stream_summary, warm_snapshot_seeded, World,
    DEFAULT_LOOKAHEAD,
};
pub use snapshot::{Snapshot, SnapshotError};
