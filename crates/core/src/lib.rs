//! # koala — the KOALA multicluster scheduler with malleability support
//!
//! This crate is the reproduction of the paper's contribution: the KOALA
//! grid scheduler (Mohamed & Epema) extended with support for malleable
//! applications via the DYNACO framework (Buisson et al.), as published
//! in *Scheduling Malleable Applications in Multicluster Systems*
//! (IEEE CLUSTER 2007).
//!
//! The pieces map one-to-one onto the paper:
//!
//! * [`placement`] — KOALA's placement policies (Section IV-A): Worst
//!   Fit, Close-to-Files, Cluster Minimization, Flexible Cluster
//!   Minimization; plus the placement queue with its retry threshold.
//! * [`malleability`] — the malleability manager (Section V): the
//!   **PRA**/**PWA** job-management approaches and the **FPSMA**/**EGS**
//!   malleability-management policies, plus the equipartition and folding
//!   baselines from the related-work discussion (McCann & Zahorjan,
//!   Utrera et al.).
//! * [`runner`] — the Malleable Runner (MRunner): drives a malleable
//!   application as a collection of size-1 GRAM jobs, overlapping GRAM
//!   interactions with execution (Section V-A).
//! * [`sim`] — the simulation world tying the scheduler to the
//!   `multicluster` and `appsim` substrates; event definitions and
//!   handlers.
//! * [`parallel`] — the work-stealing cell runner executing
//!   `(configuration × seed)` sweeps across OS threads with
//!   deterministic, sequential-identical merged output.
//! * [`config`] — scheduler and experiment configuration, including every
//!   constant the paper leaves unspecified (with justifications).
//! * [`report`] — per-run and multi-seed reports feeding the figure
//!   binaries.
//!
//! ## Quick start
//!
//! ```
//! use koala::config::ExperimentConfig;
//! use koala::malleability::MalleabilityPolicy;
//! use appsim::workload::WorkloadSpec;
//!
//! // Fig. 7, EGS/Wm cell, one seed, scaled down to 30 jobs for the doctest.
//! let mut cfg = ExperimentConfig::paper_pra(MalleabilityPolicy::Egs, WorkloadSpec::wm());
//! cfg.workload.jobs = 30;
//! cfg.seed = 1;
//! let report = koala::run_experiment(&cfg);
//! assert_eq!(report.jobs.len(), 30);
//! assert!(report.jobs.completion_ratio() > 0.99);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod malleability;
pub mod parallel;
pub mod placement;
pub mod report;
pub mod runner;
pub mod sim;

mod ids;
mod job;

pub use config::{Approach, ClaimingPolicy, ExperimentConfig, SchedulerConfig};
pub use ids::JobId;
pub use job::{Job, JobPhase};
pub use parallel::{run_seeds_sequential, run_seeds_with_threads};
pub use report::{MultiReport, RunReport};
pub use sim::{run_experiment, run_experiment_seeded, run_seeds, World};
