//! Scheduler and experiment configuration.
//!
//! Every constant the paper leaves unspecified is a field here, with its
//! default and justification; the ablation binary (`sweeps`) varies the
//! interesting ones.

use appsim::workload::WorkloadSpec;
use appsim::ReconfigCost;
use multicluster::{BackgroundLoad, GramConfig};
use simcore::SimDuration;

use crate::malleability::MalleabilityPolicy;
use crate::placement::PlacementPolicy;

/// When the malleability-management policies are initiated
/// (Section V-B of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Approach {
    /// **Precedence to Running Applications**: whenever processors become
    /// available, grow running malleable jobs first; waiting malleable
    /// jobs are only considered once no running job can grow. Jobs are
    /// never shrunk.
    Pra,
    /// **Precedence to Waiting Applications**: when the next queued job
    /// cannot be placed, mandatorily shrink running malleable jobs to
    /// make room (respecting their minimum sizes); if even that cannot
    /// free enough processors, grow running jobs instead.
    Pwa,
}

impl Approach {
    /// Short label used in reports ("PRA"/"PWA").
    pub fn label(self) -> &'static str {
        match self {
            Approach::Pra => "PRA",
            Approach::Pwa => "PWA",
        }
    }
}

/// When KOALA claims the processors of a placed job (the processor
/// claimer, Section IV-A: "If processor reservation is supported by local
/// resource managers, the PC can reserve processors immediately after the
/// placement of the components. Otherwise, the PC uses KOALA claiming
/// policy to postpone claiming of processors to a time close to the
/// estimated job start time").
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ClaimingPolicy {
    /// Claim at placement (reservation-capable LRMs). All reproduction
    /// experiments use this — DAS-3's SGE was configured for it.
    Immediate,
    /// Postpone claiming until `margin` before the estimated start (the
    /// end of file staging). Processors are not held during staging, so
    /// claims can fail and the job returns to the placement queue.
    Deferred {
        /// How long before the estimated start the claim fires.
        margin: SimDuration,
    },
}

/// Tunables of the scheduler proper.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SchedulerConfig {
    /// Placement policy for initial placement (the paper's experiments
    /// use Worst Fit).
    pub placement: PlacementPolicy,
    /// Malleability-management policy (FPSMA or EGS in the paper).
    pub malleability: MalleabilityPolicy,
    /// Job-management approach (PRA or PWA).
    pub approach: Approach,
    /// KIS polling period. Unspecified in the paper ("periodically");
    /// 10 s is well under the 30 s minimum inter-arrival time and
    /// matches GLOBUS MDS cache lifetimes of the era.
    pub kis_poll_period: SimDuration,
    /// Placement-queue scan period. Unspecified; same 10 s reasoning.
    pub queue_scan_period: SimDuration,
    /// Placement tries before a submission fails (Section IV-A describes
    /// the threshold without a value). 1000 means jobs effectively never
    /// fail, matching the paper's runs where all 300 jobs complete.
    pub placement_retry_threshold: u32,
    /// Processors per cluster KOALA leaves to local users when *growing*
    /// jobs (Section V-B's threshold "in order to leave always a minimal
    /// number of available processors to local users"). The headline
    /// experiments saw negligible background load; default 0, swept in
    /// the ablations.
    pub grow_reserve: u32,
    /// Fraction of the platform KOALA may occupy with the jobs it
    /// manages — the Section V-B threshold "over which KOALA never
    /// expands the total set of the jobs it manages", which "leaves
    /// always a minimal number of available processors to local users".
    /// The paper never states the value. We calibrate 0.12 (≈33 of the
    /// 272 processors) jointly against two observations: total platform
    /// utilization in Figs. 7e/8e stays in the 40–120 band (background
    /// users plus a bounded KOALA share), and the W' workloads drive the
    /// PWA system into the overload regime of Fig. 8 (jobs squeezed to
    /// their minimum sizes, queueing, mandatory shrinks), which only
    /// happens when the malleable pool is comparable to the workload's
    /// minimum-size demand (~24 processors). Placement and growth both
    /// respect the cap.
    pub koala_share: f64,
    /// Execution-time inflation per *additional* cluster a co-allocated
    /// job spans (wide-area messages are slower than intra-cluster ones;
    /// the Cluster Minimization policies exist to reduce exactly this).
    /// 0.25 follows the inter/intra-cluster latency ratios reported for
    /// DAS co-allocation studies (Bucur & Epema).
    pub coalloc_penalty: f64,
    /// GRAM latency model (see `multicluster::GramConfig`).
    pub gram: GramConfig,
    /// Application suspension cost per reconfiguration.
    pub reconfig: ReconfigCost,
    /// Processor-claiming policy (see [`ClaimingPolicy`]).
    pub claiming: ClaimingPolicy,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            placement: PlacementPolicy::WorstFit,
            malleability: MalleabilityPolicy::Fpsma,
            approach: Approach::Pra,
            kis_poll_period: SimDuration::from_secs(10),
            queue_scan_period: SimDuration::from_secs(10),
            placement_retry_threshold: 1000,
            grow_reserve: 0,
            koala_share: 0.12,
            coalloc_penalty: 0.25,
            gram: GramConfig::default(),
            reconfig: ReconfigCost::default(),
            claiming: ClaimingPolicy::Immediate,
        }
    }
}

/// A complete experiment: scheduler + workload + environment + seed.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExperimentConfig {
    /// Report label (e.g. `"FPSMA/Wm"`).
    pub name: String,
    /// Scheduler tunables.
    pub sched: SchedulerConfig,
    /// The KOALA workload.
    pub workload: WorkloadSpec,
    /// Background (local-user) load applied to every cluster.
    pub background: BackgroundLoad,
    /// Master seed; workload, background and any stochastic choices all
    /// derive from it.
    pub seed: u64,
    /// Hard stop. `None` lets the run finish naturally (all jobs
    /// terminal); experiments use a generous cap as a hang backstop.
    pub horizon: Option<SimDuration>,
    /// Explicit job stream overriding the generated workload — for
    /// replaying SWF traces or injecting co-allocated jobs.
    #[serde(default)]
    pub trace: Option<Vec<appsim::workload::SubmittedJob>>,
    /// Use the heterogeneous DAS-3 variant (per-site compute speeds)
    /// instead of the homogeneous Table I preset.
    #[serde(default)]
    pub heterogeneous: bool,
}

impl ExperimentConfig {
    /// A Fig. 7 cell: PRA with the given policy and workload (Wm or Wmr),
    /// Worst-Fit placement, and the testbed's "activity of concurrent
    /// users" as background (Section VI-C: it was present during the
    /// paper's runs; its releases are also what the KIS-poll pathway
    /// exists to detect).
    pub fn paper_pra(policy: MalleabilityPolicy, workload: WorkloadSpec) -> Self {
        ExperimentConfig {
            name: format!("{}/{}", policy.label(), workload_label(&workload)),
            sched: SchedulerConfig {
                malleability: policy,
                approach: Approach::Pra,
                ..SchedulerConfig::default()
            },
            workload,
            background: BackgroundLoad::concurrent_users(0.30),
            seed: 0,
            horizon: Some(SimDuration::from_secs(200_000)),
            trace: None,
            heterogeneous: false,
        }
    }

    /// A Fig. 8 cell: PWA with the given policy and workload (W'm or
    /// W'mr).
    pub fn paper_pwa(policy: MalleabilityPolicy, workload: WorkloadSpec) -> Self {
        ExperimentConfig {
            name: format!("{}/{}", policy.label(), workload_label(&workload)),
            sched: SchedulerConfig {
                malleability: policy,
                approach: Approach::Pwa,
                ..SchedulerConfig::default()
            },
            workload,
            background: BackgroundLoad::concurrent_users(0.30),
            seed: 0,
            horizon: Some(SimDuration::from_secs(200_000)),
            trace: None,
            heterogeneous: false,
        }
    }
}

impl SchedulerConfig {
    /// Validates the configuration, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.koala_share) {
            return Err(format!("koala_share {} outside [0, 1]", self.koala_share));
        }
        if self.koala_share == 0.0 {
            return Err("koala_share 0 admits no jobs at all".into());
        }
        if self.coalloc_penalty < 0.0 {
            return Err(format!("negative coalloc_penalty {}", self.coalloc_penalty));
        }
        if self.kis_poll_period.is_zero() || self.queue_scan_period.is_zero() {
            return Err("zero polling/scan periods would livelock the event loop".into());
        }
        if let ClaimingPolicy::Deferred { margin } = self.claiming {
            let _ = margin; // any margin is legal; zero means claim at start
        }
        Ok(())
    }
}

impl ExperimentConfig {
    /// Validates the scheduler settings, the workload composition and
    /// every job of an explicit trace.
    pub fn validate(&self) -> Result<(), String> {
        self.sched.validate()?;
        let w = &self.workload;
        if w.malleable_fraction < 0.0 || w.moldable_fraction < 0.0 {
            return Err("negative class fractions".into());
        }
        if w.malleable_fraction + w.moldable_fraction > 1.0 + 1e-9 {
            return Err(format!(
                "class fractions sum to {} > 1",
                w.malleable_fraction + w.moldable_fraction
            ));
        }
        if w.apps.is_empty() && self.trace.is_none() {
            return Err("workload needs at least one application kind".into());
        }
        if let Some(trace) = &self.trace {
            for (i, j) in trace.iter().enumerate() {
                j.spec
                    .validate()
                    .map_err(|e| format!("trace job {i}: {e}"))?;
            }
        }
        Ok(())
    }

    /// Generates exactly the workload a run with `seed` would see
    /// (the same RNG forking as `World::new`), e.g. for SWF export.
    pub fn generate_workload_for_seed(&self, seed: u64) -> Vec<appsim::workload::SubmittedJob> {
        if let Some(trace) = &self.trace {
            return trace.clone();
        }
        let mut master = simcore::SimRng::seed_from_u64(seed);
        let mut wl_rng = master.fork(1);
        self.workload.generate(&mut wl_rng)
    }
}

/// Human label for the paper's standard workloads, judged by their
/// composition (used in report names).
pub fn workload_label(w: &WorkloadSpec) -> String {
    let prime = w.nominal_span() <= SimDuration::from_secs(30 * 299);
    let mix = if w.malleable_fraction >= 1.0 {
        "Wm"
    } else {
        "Wmr"
    };
    if prime {
        format!("{}'", mix)
    } else {
        mix.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appsim::workload::WorkloadSpec;

    #[test]
    fn defaults_are_the_documented_choices() {
        let c = SchedulerConfig::default();
        assert_eq!(c.placement, PlacementPolicy::WorstFit);
        assert_eq!(c.approach, Approach::Pra);
        assert_eq!(c.kis_poll_period, SimDuration::from_secs(10));
        assert_eq!(c.grow_reserve, 0);
        assert_eq!(c.placement_retry_threshold, 1000);
    }

    #[test]
    fn paper_cells_are_named_after_policy_and_workload() {
        let c = ExperimentConfig::paper_pra(MalleabilityPolicy::Egs, WorkloadSpec::wm());
        assert_eq!(c.name, "EGS/Wm");
        assert_eq!(c.sched.approach, Approach::Pra);
        let c = ExperimentConfig::paper_pwa(MalleabilityPolicy::Fpsma, WorkloadSpec::wmr_prime());
        assert_eq!(c.name, "FPSMA/Wmr'");
        assert_eq!(c.sched.approach, Approach::Pwa);
    }

    #[test]
    fn validation_accepts_defaults_and_catches_bad_values() {
        let cfg = ExperimentConfig::paper_pra(MalleabilityPolicy::Fpsma, WorkloadSpec::wm());
        cfg.validate().unwrap();
        let mut bad = cfg.clone();
        bad.sched.koala_share = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = cfg.clone();
        bad.sched.kis_poll_period = SimDuration::ZERO;
        assert!(bad.validate().is_err());
        let mut bad = cfg.clone();
        bad.workload.malleable_fraction = 0.8;
        bad.workload.moldable_fraction = 0.5;
        assert!(bad.validate().is_err(), "fractions over 1");
        let mut bad = cfg;
        bad.trace = Some(vec![appsim::workload::SubmittedJob {
            at: simcore::SimTime::ZERO,
            spec: appsim::JobSpec::rigid(appsim::AppKind::Ft, 6), // not a power of two
        }]);
        assert!(bad.validate().is_err(), "invalid trace job");
    }

    #[test]
    fn approach_labels() {
        assert_eq!(Approach::Pra.label(), "PRA");
        assert_eq!(Approach::Pwa.label(), "PWA");
    }
}
