//! Scheduler and experiment configuration.
//!
//! Every constant the paper leaves unspecified is a field here, with its
//! default and justification; the ablation binary (`sweeps`) varies the
//! interesting ones.
//!
//! Policies are selected **by name** against the
//! [`PolicyRegistry`] — the configuration
//! stores the string keys and [`World`](crate::sim::World) resolves them
//! at construction, so adding a policy never touches this module.
//! Experiment configurations are usually assembled through
//! [`Scenario::builder`](crate::scenario::Scenario::builder); the
//! [`ExperimentConfig::paper_pra`] / [`ExperimentConfig::paper_pwa`]
//! presets are thin wrappers over it.

use appsim::workload::WorkloadSpec;
use appsim::ReconfigCost;
use multicluster::{
    BackgroundLoad, CatalogError, ControlPlaneFaultSpec, FailurePolicy, FailureSpec, GramConfig,
    MessageClass, NetworkError,
};
use simcore::SimDuration;

use crate::autoscaler::{AutoscalerError, AutoscalerRegistry};
use crate::policy::{PolicyError, PolicyRegistry};

/// When the malleability-management policies are initiated
/// (Section V-B of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Approach {
    /// **Precedence to Running Applications**: whenever processors become
    /// available, grow running malleable jobs first; waiting malleable
    /// jobs are only considered once no running job can grow. Jobs are
    /// never shrunk.
    Pra,
    /// **Precedence to Waiting Applications**: when the next queued job
    /// cannot be placed, mandatorily shrink running malleable jobs to
    /// make room (respecting their minimum sizes); if even that cannot
    /// free enough processors, grow running jobs instead.
    Pwa,
}

impl Approach {
    /// Short label used in reports ("PRA"/"PWA").
    pub fn label(self) -> &'static str {
        match self {
            Approach::Pra => "PRA",
            Approach::Pwa => "PWA",
        }
    }
}

/// A configuration-validation failure (see
/// [`ExperimentConfig::validate`] and [`SchedulerConfig::validate`]).
///
/// Implements [`std::error::Error`]; callers that used to pass
/// stringly-typed errors along can still do so through the `Display`
/// impl or the `From<ConfigError> for String` conversion.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A policy name did not resolve against the registry.
    Policy(PolicyError),
    /// A workload-source name did not resolve against the workload
    /// registry (see [`appsim::generate::WorkloadRegistry`]).
    Workload(appsim::generate::UnknownSource),
    /// A uniform topology with zero clusters or zero nodes per cluster.
    EmptyTopology,
    /// `koala_share` outside `[0, 1]`.
    KoalaShareOutOfRange(f64),
    /// `koala_share` of zero admits no jobs at all.
    KoalaShareZero,
    /// Negative co-allocation penalty.
    NegativeCoallocPenalty(f64),
    /// A zero polling/scan period would livelock the event loop.
    ZeroPeriod,
    /// Negative malleable/moldable class fractions.
    NegativeClassFraction,
    /// Class fractions summing over 1.
    ClassFractionsExceedOne(f64),
    /// Workload with no application kinds and no explicit trace.
    EmptyWorkload,
    /// An invalid job inside an explicit trace.
    TraceJob {
        /// Index of the offending job in the trace.
        index: usize,
        /// The job's own validation failure.
        reason: String,
    },
    /// A scenario was built without a workload (see
    /// [`crate::scenario::ScenarioBuilder`]).
    MissingWorkload,
    /// A scenario was built with an empty seed list.
    NoSeeds,
    /// A zero quantile-reservoir capacity in the report configuration.
    ZeroQuantileCapacity,
    /// An autoscaler name did not resolve against the autoscaler
    /// registry (see [`crate::autoscaler::AutoscalerRegistry`]).
    Autoscaler(AutoscalerError),
    /// A failure spec with a zero MTBF, zero MTTR, or zero `max_nodes` —
    /// the crash process would be degenerate (instant storms or no-op
    /// events).
    DegenerateFailureSpec,
    /// A generator-driven entry point was called on a configuration
    /// without a `generator` name.
    MissingGenerator,
    /// A control-plane fault probability outside `[0, 1]`.
    FaultProbabilityOutOfRange(f64),
    /// A flaky-channel spec with a zero mean gap or duration — episodes
    /// would either never end or fire back-to-back forever.
    DegenerateFlakySpec,
    /// A retry configuration that can never make progress: zero base
    /// timeout, zero attempts, a backoff cap below the base timeout, or
    /// a zero orphan-sweep period/grace.
    DegenerateRetrySpec,
    /// A file-catalog problem (bad bandwidth matrix, unknown file, …).
    Catalog(CatalogError),
    /// A network-topology problem (unknown name, bad builder
    /// parameters, too few clusters).
    Network(NetworkError),
    /// An invalid entry in [`NetworkConfig::files`].
    NetworkFile {
        /// Index of the offending file spec.
        index: usize,
        /// What was wrong.
        reason: String,
    },
    /// A negative or non-finite per-processor reconfiguration traffic
    /// volume.
    NegativeReconfigTraffic(f64),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Policy(e) => e.fmt(f),
            ConfigError::Workload(e) => e.fmt(f),
            ConfigError::EmptyTopology => {
                write!(f, "uniform topology needs at least one node in one cluster")
            }
            ConfigError::KoalaShareOutOfRange(v) => {
                write!(f, "koala_share {v} outside [0, 1]")
            }
            ConfigError::KoalaShareZero => write!(f, "koala_share 0 admits no jobs at all"),
            ConfigError::NegativeCoallocPenalty(v) => {
                write!(f, "negative coalloc_penalty {v}")
            }
            ConfigError::ZeroPeriod => {
                write!(f, "zero polling/scan periods would livelock the event loop")
            }
            ConfigError::NegativeClassFraction => write!(f, "negative class fractions"),
            ConfigError::ClassFractionsExceedOne(sum) => {
                write!(f, "class fractions sum to {sum} > 1")
            }
            ConfigError::EmptyWorkload => {
                write!(f, "workload needs at least one application kind")
            }
            ConfigError::TraceJob { index, reason } => {
                write!(f, "trace job {index}: {reason}")
            }
            ConfigError::MissingWorkload => {
                write!(f, "scenario needs a workload (ScenarioBuilder::workload)")
            }
            ConfigError::NoSeeds => write!(f, "scenario needs at least one seed"),
            ConfigError::ZeroQuantileCapacity => {
                write!(f, "report quantile capacity must be positive")
            }
            ConfigError::Autoscaler(e) => e.fmt(f),
            ConfigError::DegenerateFailureSpec => {
                write!(f, "failure spec needs positive mtbf, mttr, and max_nodes")
            }
            ConfigError::MissingGenerator => {
                write!(
                    f,
                    "this entry point needs a generator name in the configuration"
                )
            }
            ConfigError::FaultProbabilityOutOfRange(p) => {
                write!(f, "control-plane fault probability {p} outside [0, 1]")
            }
            ConfigError::DegenerateFlakySpec => {
                write!(f, "flaky-channel spec needs positive mean gap and duration")
            }
            ConfigError::DegenerateRetrySpec => {
                write!(
                    f,
                    "retry config needs a positive timeout, at least one attempt, \
                     a backoff cap >= the base timeout, and a positive orphan \
                     sweep period and grace"
                )
            }
            ConfigError::Catalog(e) => e.fmt(f),
            ConfigError::Network(e) => e.fmt(f),
            ConfigError::NetworkFile { index, reason } => {
                write!(f, "network file {index}: {reason}")
            }
            ConfigError::NegativeReconfigTraffic(v) => {
                write!(f, "reconfig_gb_per_proc must be finite and >= 0, got {v}")
            }
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Policy(e) => Some(e),
            ConfigError::Workload(e) => Some(e),
            ConfigError::Autoscaler(e) => Some(e),
            ConfigError::Catalog(e) => Some(e),
            ConfigError::Network(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PolicyError> for ConfigError {
    fn from(e: PolicyError) -> Self {
        ConfigError::Policy(e)
    }
}

impl From<AutoscalerError> for ConfigError {
    fn from(e: AutoscalerError) -> Self {
        ConfigError::Autoscaler(e)
    }
}

impl From<appsim::generate::UnknownSource> for ConfigError {
    fn from(e: appsim::generate::UnknownSource) -> Self {
        ConfigError::Workload(e)
    }
}

impl From<CatalogError> for ConfigError {
    fn from(e: CatalogError) -> Self {
        ConfigError::Catalog(e)
    }
}

impl From<NetworkError> for ConfigError {
    fn from(e: NetworkError) -> Self {
        ConfigError::Network(e)
    }
}

impl From<ConfigError> for String {
    fn from(e: ConfigError) -> Self {
        e.to_string()
    }
}

/// When KOALA claims the processors of a placed job (the processor
/// claimer, Section IV-A: "If processor reservation is supported by local
/// resource managers, the PC can reserve processors immediately after the
/// placement of the components. Otherwise, the PC uses KOALA claiming
/// policy to postpone claiming of processors to a time close to the
/// estimated job start time").
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ClaimingPolicy {
    /// Claim at placement (reservation-capable LRMs). All reproduction
    /// experiments use this — DAS-3's SGE was configured for it.
    Immediate,
    /// Postpone claiming until `margin` before the estimated start (the
    /// end of file staging). Processors are not held during staging, so
    /// claims can fail and the job returns to the placement queue.
    Deferred {
        /// How long before the estimated start the claim fires.
        margin: SimDuration,
    },
}

/// Timeout/retry behaviour of the control-plane messaging the scheduler
/// drives (GRAM submissions, stub recruits, grow/shrink commands,
/// release messages). Every operation carries a deadline; on expiry it
/// is resent with capped exponential backoff. Inert unless the scenario
/// enables [`ControlPlaneFaultSpec`] — with reliable messaging no
/// deadline ever fires, so these knobs cannot perturb fault-free runs.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RetryConfig {
    /// Deadline for the first send; retry `k` waits `timeout · 2^k`,
    /// capped at `max_timeout`. 30 s matches GRAM-era client timeouts.
    pub timeout: SimDuration,
    /// Cap on the backoff interval.
    pub max_timeout: SimDuration,
    /// Total sends per operation (first try + retries). When the last
    /// deadline expires the operation's give-up policy runs (requeue the
    /// placement, abort the grow, locally force the sync, or leave the
    /// release to the orphan sweep).
    pub max_attempts: u32,
    /// Period of the orphaned-allocation sweep that reclaims allocations
    /// whose release messages were all lost (only scheduled when faults
    /// are enabled).
    pub orphan_sweep_period: SimDuration,
    /// How long a release may stay unconfirmed before the sweep reclaims
    /// it. Must comfortably exceed `max_timeout` so the sweep never
    /// races a retry that is still in flight.
    pub orphan_grace: SimDuration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            timeout: SimDuration::from_secs(30),
            max_timeout: SimDuration::from_secs(120),
            max_attempts: 4,
            orphan_sweep_period: SimDuration::from_secs(60),
            orphan_grace: SimDuration::from_secs(90),
        }
    }
}

impl RetryConfig {
    /// The deadline for attempt `attempt` (0-based): `timeout · 2^attempt`
    /// capped at `max_timeout`.
    pub fn deadline_for(&self, attempt: u32) -> SimDuration {
        let shift = attempt.min(16);
        self.timeout
            .saturating_mul(1u64 << shift)
            .min(self.max_timeout)
            .max(self.timeout.min(self.max_timeout))
    }

    /// Validates the block (see [`ConfigError::DegenerateRetrySpec`]).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.timeout.is_zero()
            || self.max_attempts == 0
            || self.max_timeout < self.timeout
            || self.orphan_sweep_period.is_zero()
            || self.orphan_grace.is_zero()
        {
            return Err(ConfigError::DegenerateRetrySpec);
        }
        Ok(())
    }
}

/// Tunables of the scheduler proper.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SchedulerConfig {
    /// Registry name of the placement policy for initial placement (the
    /// paper's experiments use Worst Fit, `"worst_fit"`). Resolved
    /// against [`PolicyRegistry::global`] when the world is built.
    pub placement: String,
    /// Registry name of the malleability-management policy (`"fpsma"`
    /// or `"egs"` in the paper).
    pub malleability: String,
    /// Job-management approach (PRA or PWA).
    pub approach: Approach,
    /// KIS polling period. Unspecified in the paper ("periodically");
    /// 10 s is well under the 30 s minimum inter-arrival time and
    /// matches GLOBUS MDS cache lifetimes of the era.
    pub kis_poll_period: SimDuration,
    /// Placement-queue scan period. Unspecified; same 10 s reasoning.
    pub queue_scan_period: SimDuration,
    /// Placement tries before a submission fails (Section IV-A describes
    /// the threshold without a value). 1000 means jobs effectively never
    /// fail, matching the paper's runs where all 300 jobs complete.
    pub placement_retry_threshold: u32,
    /// Processors per cluster KOALA leaves to local users when *growing*
    /// jobs (Section V-B's threshold "in order to leave always a minimal
    /// number of available processors to local users"). The headline
    /// experiments saw negligible background load; default 0, swept in
    /// the ablations.
    pub grow_reserve: u32,
    /// Fraction of the platform KOALA may occupy with the jobs it
    /// manages — the Section V-B threshold "over which KOALA never
    /// expands the total set of the jobs it manages", which "leaves
    /// always a minimal number of available processors to local users".
    /// The paper never states the value. We calibrate 0.12 (≈33 of the
    /// 272 processors) jointly against two observations: total platform
    /// utilization in Figs. 7e/8e stays in the 40–120 band (background
    /// users plus a bounded KOALA share), and the W' workloads drive the
    /// PWA system into the overload regime of Fig. 8 (jobs squeezed to
    /// their minimum sizes, queueing, mandatory shrinks), which only
    /// happens when the malleable pool is comparable to the workload's
    /// minimum-size demand (~24 processors). Placement and growth both
    /// respect the cap.
    pub koala_share: f64,
    /// Execution-time inflation per *additional* cluster a co-allocated
    /// job spans (wide-area messages are slower than intra-cluster ones;
    /// the Cluster Minimization policies exist to reduce exactly this).
    /// 0.25 follows the inter/intra-cluster latency ratios reported for
    /// DAS co-allocation studies (Bucur & Epema).
    pub coalloc_penalty: f64,
    /// GRAM latency model (see `multicluster::GramConfig`).
    pub gram: GramConfig,
    /// Application suspension cost per reconfiguration.
    pub reconfig: ReconfigCost,
    /// Processor-claiming policy (see [`ClaimingPolicy`]).
    pub claiming: ClaimingPolicy,
    /// Control-plane timeout/retry behaviour (see [`RetryConfig`];
    /// inert without [`ElasticityConfig::ctrl_faults`]).
    #[serde(default)]
    pub retry: RetryConfig,
    /// Event-queue implementation backing the engine (see
    /// [`simcore::QueueImpl`]). Both implementations deliver bit-identical
    /// trajectories — the calendar queue is the O(1)-amortized default,
    /// the binary heap is retained as the differential-testing reference.
    #[serde(default)]
    pub event_queue: simcore::QueueImpl,
    /// Coalesce redundant per-job timer events: same-instant bootstrap
    /// arrivals are batched into one group event that fans out in job-id
    /// order, and completion timers superseded by a reconfiguration are
    /// cancelled in place instead of delivered and discarded. The
    /// simulation trajectory (every metric, every report field except the
    /// engine's `events`-delivered diagnostic) is unchanged. Default off
    /// so the delivered-event counts pinned by the golden suite stay
    /// byte-identical to the originals.
    #[serde(default)]
    pub coalesce_timers: bool,
    /// Incremental per-cluster availability index: `scan_queue` consults
    /// cheap per-scan aggregates (largest single-cluster headroom, total
    /// headroom) to skip placement attempts that provably cannot succeed.
    /// Trajectory-preserving, so it defaults on. Note the *serde* default
    /// when the field is absent from a stored config is `false` (the
    /// stand-in derive uses `bool::default()`); in-code construction via
    /// [`SchedulerConfig::default`] enables it.
    #[serde(default)]
    pub avail_index: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            placement: "worst_fit".to_string(),
            malleability: "fpsma".to_string(),
            approach: Approach::Pra,
            kis_poll_period: SimDuration::from_secs(10),
            queue_scan_period: SimDuration::from_secs(10),
            placement_retry_threshold: 1000,
            grow_reserve: 0,
            koala_share: 0.12,
            coalloc_penalty: 0.25,
            gram: GramConfig::default(),
            reconfig: ReconfigCost::default(),
            claiming: ClaimingPolicy::Immediate,
            retry: RetryConfig::default(),
            event_queue: simcore::QueueImpl::default(),
            coalesce_timers: false,
            avail_index: true,
        }
    }
}

/// Tunables of the memory-bounded summary path (see
/// [`crate::report::SummaryReport`]). Inert in full-report runs.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReportConfig {
    /// Warmup window: jobs submitted before it, and utilization /
    /// operation activity inside it, are excluded from summarized
    /// metrics (replication studies trim the transient start-up phase).
    /// Default: zero (measure everything, like the paper's figures).
    pub warmup: SimDuration,
    /// Capacity of each metric's bounded-memory quantile reservoir.
    /// Quantiles are exact while a cell observes at most this many
    /// samples, and an `O(1/√capacity)`-accurate uniform subsample
    /// beyond. 512 covers the paper's 300-job runs exactly while keeping
    /// a summary report ~25 KB.
    pub quantile_capacity: usize,
}

impl Default for ReportConfig {
    fn default() -> Self {
        ReportConfig {
            warmup: SimDuration::ZERO,
            quantile_capacity: 512,
        }
    }
}

/// The elasticity layer's knobs: monitoring, autoscaling, node failures
/// and information staleness. The default is fully inert — no monitor
/// samples, the `none` autoscaler, no crashes, zero KIS lag — so every
/// pre-elasticity experiment runs exactly as before.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ElasticityConfig {
    /// Period of the monitoring subsystem sampling per-cluster
    /// utilization and queue depth into the report's metric streams.
    /// Zero disables monitoring entirely.
    #[serde(default)]
    pub monitor_period: SimDuration,
    /// Registry name of the autoscaling policy (see
    /// [`crate::autoscaler::AutoscalerRegistry`]); `"none"` disables the
    /// autoscale cycle. A partially-deserialized block that omits this
    /// field fails validation (empty names resolve against the registry
    /// like any other unknown name).
    #[serde(default)]
    pub autoscaler: String,
    /// Period of the autoscale decision cycle (the "scheduling cycle" of
    /// elastic cluster managers). Must be positive when an autoscaler
    /// other than `none` is selected.
    #[serde(default)]
    pub autoscale_period: SimDuration,
    /// Propagation delay between a scale decision and the capacity
    /// actually moving (cloud-provider provisioning latency; zero means
    /// decisions apply instantly).
    #[serde(default)]
    pub autoscale_delay: SimDuration,
    /// The node-failure process; `None` disables crashes.
    #[serde(default)]
    pub failures: Option<FailureSpec>,
    /// What happens to KOALA jobs caught on crashed nodes.
    #[serde(default)]
    pub failure_policy: FailurePolicy,
    /// KIS propagation lag — the first-class staleness axis: the
    /// scheduler places against snapshots at least this old (quantized
    /// up to the poll period, since snapshots mature at poll times).
    #[serde(default)]
    pub kis_lag: SimDuration,
    /// The control-plane fault model (lossy/jittery/duplicating
    /// KOALA↔GRAM messaging with flaky channel episodes); `None`
    /// disables it and messaging is perfectly reliable.
    #[serde(default)]
    pub ctrl_faults: Option<ControlPlaneFaultSpec>,
}

impl Default for ElasticityConfig {
    fn default() -> Self {
        ElasticityConfig {
            monitor_period: SimDuration::ZERO,
            autoscaler: "none".to_string(),
            autoscale_period: SimDuration::from_secs(60),
            autoscale_delay: SimDuration::ZERO,
            failures: None,
            failure_policy: FailurePolicy::default(),
            kis_lag: SimDuration::ZERO,
            ctrl_faults: None,
        }
    }
}

impl ElasticityConfig {
    /// True when an autoscaler other than `none` drives scale cycles.
    pub fn autoscaled(&self) -> bool {
        self.autoscaler != "none"
    }

    /// True when monitoring samples are taken.
    pub fn monitored(&self) -> bool {
        !self.monitor_period.is_zero()
    }

    /// Validates the elasticity block alone: the autoscaler name must
    /// resolve, an active autoscaler needs a nonzero cycle period, and a
    /// failure spec must have positive mtbf/mttr and a nonzero node cap.
    /// Called from [`ExperimentConfig::validate`] and from the streaming
    /// entry points (which skip whole-config validation because the
    /// stream replaces the configured workload).
    pub fn validate(&self) -> Result<(), ConfigError> {
        AutoscalerRegistry::global().autoscaler(&self.autoscaler)?;
        if self.autoscaled() && self.autoscale_period.is_zero() {
            return Err(ConfigError::ZeroPeriod);
        }
        if let Some(spec) = &self.failures {
            if spec.mtbf.is_zero() || spec.mttr.is_zero() || spec.max_nodes == 0 {
                return Err(ConfigError::DegenerateFailureSpec);
            }
        }
        if let Some(spec) = &self.ctrl_faults {
            for class in MessageClass::ALL {
                let p = spec.loss.get(class);
                if !(0.0..=1.0).contains(&p) {
                    return Err(ConfigError::FaultProbabilityOutOfRange(p));
                }
            }
            if !(0.0..=1.0).contains(&spec.duplicate) {
                return Err(ConfigError::FaultProbabilityOutOfRange(spec.duplicate));
            }
            if let Some(flaky) = &spec.flaky {
                if !(0.0..=1.0).contains(&flaky.loss) {
                    return Err(ConfigError::FaultProbabilityOutOfRange(flaky.loss));
                }
                if flaky.mean_gap.is_zero() || flaky.mean_duration.is_zero() {
                    return Err(ConfigError::DegenerateFlakySpec);
                }
            }
        }
        Ok(())
    }
}

/// A file pre-registered in the network layer's replica catalog:
/// `trace` jobs reference it by index through
/// [`appsim::JobSpec::input_files`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FileSpec {
    /// File size in gigabytes.
    pub size_gb: f64,
    /// Cluster indices holding an initial replica (at least one).
    pub replicas: Vec<u16>,
}

/// The contended-network layer: a named topology from the
/// [`multicluster::TopologyRegistry`], the initial replica layout, and
/// optional reconfiguration traffic. Carried as
/// [`ExperimentConfig::network`]; `None` disables the layer entirely —
/// transfers cost nothing at runtime and only the static
/// Close-to-Files estimates remain, exactly as before the subsystem
/// existed.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NetworkConfig {
    /// Registry name of the topology (`"das3"`, `"flat_wan"`, `"star"`,
    /// `"hierarchical"`, or parametric `"fat_tree_<k>"`).
    pub topology: String,
    /// Files registered in the replica catalog before the run starts,
    /// in [`FileId`](multicluster::FileId) order (index `i` becomes
    /// file id `i`).
    #[serde(default)]
    pub files: Vec<FileSpec>,
    /// Gigabytes of redistribution traffic per processor added or
    /// removed by a reconfiguration, charged to the job's site access
    /// link (contention coupling only — the reconfiguring job itself
    /// still pays the [`ReconfigCost`] suspension model). Zero (the
    /// default) disables reconfiguration traffic.
    #[serde(default)]
    pub reconfig_gb_per_proc: f64,
}

/// Warm-fork sweep configuration: the shared warmup prefix of a policy
/// sweep runs **once** per `(workload, seed)` under the base policies
/// named here, a [`Snapshot`](crate::snapshot::Snapshot) is captured
/// when simulated time reaches `at`, and every policy cell of the sweep
/// forks from that snapshot instead of replaying the prefix cold (see
/// [`crate::parallel::run_cells_summary_warm`]).
///
/// Forking requires the cells to agree on everything except `name`,
/// `sched.placement` and `sched.malleability` — the fork-invariant
/// configuration fingerprint embedded in the snapshot enforces this.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WarmFork {
    /// The fork instant: the warmup prefix runs until the next pending
    /// event would fire at or after this time (the boundary event itself
    /// stays queued and replays identically in every fork).
    pub at: SimDuration,
    /// Registry name of the placement policy the shared prefix runs
    /// under (every cell's warmup must be identical, so the cell's own
    /// policy only takes over at the fork).
    pub base_placement: String,
    /// Registry name of the malleability policy the shared prefix runs
    /// under.
    pub base_malleability: String,
}

fn default_base_placement() -> String {
    "worst_fit".to_string()
}

fn default_base_malleability() -> String {
    "fpsma".to_string()
}

impl WarmFork {
    /// A warm fork at `at` under the default base policies (Worst Fit +
    /// FPSMA — the paper's baselines).
    pub fn at(at: SimDuration) -> Self {
        WarmFork {
            at,
            base_placement: default_base_placement(),
            base_malleability: default_base_malleability(),
        }
    }
}

/// A uniform synthetic multicluster: `clusters` identical sites of
/// `nodes_per_cluster` nodes each (see [`multicluster::uniform`]) — the
/// cluster-count axis of workload sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct UniformTopology {
    /// Number of identical clusters.
    pub clusters: u32,
    /// Nodes per cluster.
    pub nodes_per_cluster: u32,
}

/// A complete experiment: scheduler + workload + environment + seed.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExperimentConfig {
    /// Report label (e.g. `"FPSMA/Wm"`).
    pub name: String,
    /// Scheduler tunables.
    pub sched: SchedulerConfig,
    /// The KOALA workload.
    pub workload: WorkloadSpec,
    /// Registry name of a model-driven workload source
    /// ([`appsim::generate::WorkloadRegistry`]). When set, the job
    /// stream comes from the named generator (seeded with the cell seed,
    /// `workload.jobs` jobs) instead of `workload`; an explicit `trace`
    /// still wins over both.
    #[serde(default)]
    pub generator: Option<String>,
    /// Background (local-user) load applied to every cluster.
    pub background: BackgroundLoad,
    /// Master seed; workload, background and any stochastic choices all
    /// derive from it.
    pub seed: u64,
    /// Hard stop. `None` lets the run finish naturally (all jobs
    /// terminal); experiments use a generous cap as a hang backstop.
    pub horizon: Option<SimDuration>,
    /// Explicit job stream overriding the generated workload — for
    /// replaying SWF traces or injecting co-allocated jobs.
    #[serde(default)]
    pub trace: Option<Vec<appsim::workload::SubmittedJob>>,
    /// Use the heterogeneous DAS-3 variant (per-site compute speeds)
    /// instead of the homogeneous Table I preset.
    #[serde(default)]
    pub heterogeneous: bool,
    /// Replace DAS-3 with a uniform synthetic multicluster (takes
    /// precedence over `heterogeneous`) — the cluster-count sweep axis.
    #[serde(default)]
    pub uniform_topology: Option<UniformTopology>,
    /// Summary-report tunables (warmup trimming, quantile capacity).
    #[serde(default)]
    pub report: ReportConfig,
    /// The elasticity layer (monitoring, autoscaling, node failures,
    /// KIS staleness); inert by default.
    #[serde(default)]
    pub elasticity: ElasticityConfig,
    /// The contended-network layer (topology, replica layout,
    /// reconfiguration traffic); `None` — the default — is strictly
    /// passive.
    #[serde(default)]
    pub network: Option<NetworkConfig>,
    /// Warm-fork sweep configuration: share one warmup prefix across the
    /// policy cells of a sweep (see [`WarmFork`]); `None` — the default —
    /// runs every cell cold.
    #[serde(default)]
    pub warm_fork: Option<WarmFork>,
}

impl ExperimentConfig {
    /// A Fig. 7 cell: PRA with the given malleability policy (by registry
    /// name) and workload (Wm or Wmr), Worst-Fit placement, and the
    /// testbed's "activity of concurrent users" as background
    /// (Section VI-C: it was present during the paper's runs; its
    /// releases are also what the KIS-poll pathway exists to detect).
    ///
    /// A thin preset over [`Scenario::builder`](crate::scenario::Scenario::builder).
    ///
    /// # Panics
    /// Panics when `policy` is not a registered malleability policy.
    pub fn paper_pra(policy: &str, workload: WorkloadSpec) -> Self {
        crate::scenario::Scenario::builder()
            .malleability(policy)
            .workload(workload)
            .pra()
            .build()
            .expect("paper preset must be a valid scenario")
            .into_config()
    }

    /// A Fig. 8 cell: PWA with the given malleability policy (by registry
    /// name) and workload (W'm or W'mr).
    ///
    /// # Panics
    /// Panics when `policy` is not a registered malleability policy.
    pub fn paper_pwa(policy: &str, workload: WorkloadSpec) -> Self {
        crate::scenario::Scenario::builder()
            .malleability(policy)
            .workload(workload)
            .pwa()
            .build()
            .expect("paper preset must be a valid scenario")
            .into_config()
    }
}

impl SchedulerConfig {
    /// Validates the configuration, returning the first problem found.
    /// Policy names are resolved against [`PolicyRegistry::global`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        let registry = PolicyRegistry::global();
        registry.placement(&self.placement)?;
        registry.malleability(&self.malleability)?;
        if !(0.0..=1.0).contains(&self.koala_share) {
            return Err(ConfigError::KoalaShareOutOfRange(self.koala_share));
        }
        if self.koala_share == 0.0 {
            return Err(ConfigError::KoalaShareZero);
        }
        if self.coalloc_penalty < 0.0 {
            return Err(ConfigError::NegativeCoallocPenalty(self.coalloc_penalty));
        }
        if self.kis_poll_period.is_zero() || self.queue_scan_period.is_zero() {
            return Err(ConfigError::ZeroPeriod);
        }
        if let ClaimingPolicy::Deferred { margin } = self.claiming {
            let _ = margin; // any margin is legal; zero means claim at start
        }
        self.retry.validate()?;
        Ok(())
    }
}

impl ExperimentConfig {
    /// Validates the scheduler settings, the workload composition and
    /// every job of an explicit trace.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.sched.validate()?;
        if let Some(name) = &self.generator {
            appsim::generate::WorkloadRegistry::global().source(name)?;
        }
        if let Some(u) = &self.uniform_topology {
            if u.clusters == 0 || u.nodes_per_cluster == 0 {
                return Err(ConfigError::EmptyTopology);
            }
        }
        let w = &self.workload;
        if w.malleable_fraction < 0.0 || w.moldable_fraction < 0.0 {
            return Err(ConfigError::NegativeClassFraction);
        }
        if w.malleable_fraction + w.moldable_fraction > 1.0 + 1e-9 {
            return Err(ConfigError::ClassFractionsExceedOne(
                w.malleable_fraction + w.moldable_fraction,
            ));
        }
        if w.apps.is_empty() && self.trace.is_none() && self.generator.is_none() {
            return Err(ConfigError::EmptyWorkload);
        }
        if let Some(trace) = &self.trace {
            for (i, j) in trace.iter().enumerate() {
                j.spec
                    .validate()
                    .map_err(|reason| ConfigError::TraceJob { index: i, reason })?;
            }
        }
        if self.report.quantile_capacity == 0 {
            return Err(ConfigError::ZeroQuantileCapacity);
        }
        self.elasticity.validate()?;
        if let Some(wf) = &self.warm_fork {
            let registry = PolicyRegistry::global();
            registry.placement(&wf.base_placement)?;
            registry.malleability(&wf.base_malleability)?;
        }
        if let Some(net) = &self.network {
            let clusters = self
                .uniform_topology
                .map(|u| u.clusters as usize)
                .unwrap_or_else(|| multicluster::das3().len());
            multicluster::global_topologies().resolve(&net.topology, clusters)?;
            if !(net.reconfig_gb_per_proc.is_finite() && net.reconfig_gb_per_proc >= 0.0) {
                return Err(ConfigError::NegativeReconfigTraffic(
                    net.reconfig_gb_per_proc,
                ));
            }
            for (i, file) in net.files.iter().enumerate() {
                if !(file.size_gb.is_finite() && file.size_gb >= 0.0) {
                    return Err(ConfigError::NetworkFile {
                        index: i,
                        reason: format!("size_gb {} must be finite and >= 0", file.size_gb),
                    });
                }
                if file.replicas.is_empty() {
                    return Err(ConfigError::NetworkFile {
                        index: i,
                        reason: "needs at least one initial replica".to_string(),
                    });
                }
                if let Some(&r) = file.replicas.iter().find(|&&r| r as usize >= clusters) {
                    return Err(ConfigError::NetworkFile {
                        index: i,
                        reason: format!("replica cluster {r} >= cluster count {clusters}"),
                    });
                }
            }
            if let Some(trace) = &self.trace {
                for (i, j) in trace.iter().enumerate() {
                    for &fid in &j.spec.input_files {
                        if fid as usize >= net.files.len() {
                            return Err(ConfigError::TraceJob {
                                index: i,
                                reason: format!(
                                    "input file {fid} is not registered in the network \
                                     layer ({} files)",
                                    net.files.len()
                                ),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Generates exactly the workload a run with `seed` would see
    /// (the same RNG forking as `World::new`), e.g. for SWF export.
    ///
    /// # Panics
    /// Panics when `generator` names an unregistered source (validate
    /// first for a `Result`-shaped path).
    pub fn generate_workload_for_seed(&self, seed: u64) -> Vec<appsim::workload::SubmittedJob> {
        if let Some(trace) = &self.trace {
            return trace.clone();
        }
        if let Some(name) = &self.generator {
            let src = appsim::generate::WorkloadRegistry::global()
                .source(name)
                .unwrap_or_else(|e| panic!("invalid experiment configuration: {e}"));
            return src.generate(seed, self.workload.jobs as u64);
        }
        let mut master = simcore::SimRng::seed_from_u64(seed);
        let mut wl_rng = master.fork(1);
        self.workload.generate(&mut wl_rng)
    }
}

/// Human label for the paper's standard workloads, judged by their
/// composition (used in report names).
pub fn workload_label(w: &WorkloadSpec) -> String {
    let prime = w.nominal_span() <= SimDuration::from_secs(30 * 299);
    let mix = if w.malleable_fraction >= 1.0 {
        "Wm"
    } else {
        "Wmr"
    };
    if prime {
        format!("{}'", mix)
    } else {
        mix.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appsim::workload::WorkloadSpec;

    #[test]
    fn defaults_are_the_documented_choices() {
        let c = SchedulerConfig::default();
        assert_eq!(c.placement, "worst_fit");
        assert_eq!(c.malleability, "fpsma");
        assert_eq!(c.approach, Approach::Pra);
        assert_eq!(c.kis_poll_period, SimDuration::from_secs(10));
        assert_eq!(c.grow_reserve, 0);
        assert_eq!(c.placement_retry_threshold, 1000);
    }

    #[test]
    fn paper_cells_are_named_after_policy_and_workload() {
        let c = ExperimentConfig::paper_pra("egs", WorkloadSpec::wm());
        assert_eq!(c.name, "EGS/Wm");
        assert_eq!(c.sched.approach, Approach::Pra);
        let c = ExperimentConfig::paper_pwa("fpsma", WorkloadSpec::wmr_prime());
        assert_eq!(c.name, "FPSMA/Wmr'");
        assert_eq!(c.sched.approach, Approach::Pwa);
    }

    #[test]
    fn validation_accepts_defaults_and_catches_bad_values() {
        let cfg = ExperimentConfig::paper_pra("fpsma", WorkloadSpec::wm());
        cfg.validate().unwrap();
        let mut bad = cfg.clone();
        bad.sched.koala_share = 1.5;
        assert_eq!(bad.validate(), Err(ConfigError::KoalaShareOutOfRange(1.5)));
        let mut bad = cfg.clone();
        bad.sched.kis_poll_period = SimDuration::ZERO;
        assert_eq!(bad.validate(), Err(ConfigError::ZeroPeriod));
        let mut bad = cfg.clone();
        bad.workload.malleable_fraction = 0.8;
        bad.workload.moldable_fraction = 0.5;
        assert!(
            matches!(bad.validate(), Err(ConfigError::ClassFractionsExceedOne(_))),
            "fractions over 1"
        );
        let mut bad = cfg.clone();
        bad.trace = Some(vec![appsim::workload::SubmittedJob {
            at: simcore::SimTime::ZERO,
            spec: appsim::JobSpec::rigid(appsim::AppKind::Ft, 6), // not a power of two
        }]);
        assert!(
            matches!(bad.validate(), Err(ConfigError::TraceJob { index: 0, .. })),
            "invalid trace job"
        );
        let mut bad = cfg;
        bad.sched.malleability = "not_a_policy".to_string();
        let err = bad.validate().unwrap_err();
        assert!(matches!(err, ConfigError::Policy(_)));
        assert!(err.to_string().contains("not_a_policy"));
    }

    #[test]
    fn generator_and_topology_fields_validate() {
        let mut cfg = ExperimentConfig::paper_pra("fpsma", WorkloadSpec::wm());
        cfg.generator = Some("poisson_lublin".to_string());
        cfg.validate().unwrap();
        // A generator stands in for an app mix.
        cfg.workload.apps.clear();
        cfg.validate().unwrap();
        cfg.generator = Some("not_a_source".to_string());
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, ConfigError::Workload(_)), "{err}");
        assert!(err.to_string().contains("not_a_source"));
        assert!(err.to_string().contains("poisson_lublin"), "{err}");
        let mut cfg = ExperimentConfig::paper_pra("fpsma", WorkloadSpec::wm());
        cfg.uniform_topology = Some(UniformTopology {
            clusters: 4,
            nodes_per_cluster: 64,
        });
        cfg.validate().unwrap();
        cfg.uniform_topology = Some(UniformTopology {
            clusters: 0,
            nodes_per_cluster: 64,
        });
        assert_eq!(cfg.validate(), Err(ConfigError::EmptyTopology));
    }

    #[test]
    fn generator_workloads_reproduce_per_seed() {
        let mut cfg = ExperimentConfig::paper_pra("fpsma", WorkloadSpec::wm());
        cfg.generator = Some("poisson_loguniform".to_string());
        cfg.workload.jobs = 30;
        let a = cfg.generate_workload_for_seed(7);
        assert_eq!(a.len(), 30);
        assert_eq!(a, cfg.generate_workload_for_seed(7));
        assert_ne!(a, cfg.generate_workload_for_seed(8));
    }

    #[test]
    fn config_errors_convert_to_strings_for_legacy_callers() {
        let s: String = ConfigError::KoalaShareZero.into();
        assert_eq!(s, "koala_share 0 admits no jobs at all");
        let e: ConfigError = crate::policy::PolicyError::UnknownPlacement {
            name: "x".into(),
            known: vec!["worst_fit".into()],
        }
        .into();
        assert!(e.to_string().contains("worst_fit"));
    }

    #[test]
    fn network_block_validates() {
        let mut cfg = ExperimentConfig::paper_pra("fpsma", WorkloadSpec::wm());
        cfg.network = Some(NetworkConfig {
            topology: "das3".to_string(),
            files: vec![FileSpec {
                size_gb: 100.0,
                replicas: vec![4],
            }],
            reconfig_gb_per_proc: 0.0,
        });
        cfg.validate().unwrap();

        let mut bad = cfg.clone();
        bad.network.as_mut().unwrap().topology = "not_a_topology".to_string();
        let err = bad.validate().unwrap_err();
        assert!(matches!(err, ConfigError::Network(_)), "{err}");
        assert!(err.to_string().contains("fat_tree_<k>"), "{err}");

        let mut bad = cfg.clone();
        bad.network.as_mut().unwrap().files[0].replicas = vec![7];
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::NetworkFile { index: 0, .. })
        ));

        let mut bad = cfg.clone();
        bad.network.as_mut().unwrap().files[0].replicas.clear();
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::NetworkFile { index: 0, .. })
        ));

        let mut bad = cfg.clone();
        bad.network.as_mut().unwrap().reconfig_gb_per_proc = -1.0;
        assert_eq!(
            bad.validate(),
            Err(ConfigError::NegativeReconfigTraffic(-1.0))
        );

        // A trace job referencing an unregistered file is caught.
        let mut bad = cfg.clone();
        let mut spec = appsim::JobSpec::rigid(appsim::AppKind::Gadget2, 4);
        spec.input_files = vec![3];
        bad.trace = Some(vec![appsim::workload::SubmittedJob {
            at: simcore::SimTime::ZERO,
            spec,
        }]);
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::TraceJob { index: 0, .. })
        ));

        // The parametric fat-tree name resolves.
        let mut ok = cfg.clone();
        ok.network.as_mut().unwrap().topology = "fat_tree_16".to_string();
        ok.validate().unwrap();
    }

    #[test]
    fn approach_labels() {
        assert_eq!(Approach::Pra.label(), "PRA");
        assert_eq!(Approach::Pwa.label(), "PWA");
    }
}
