//! KOALA's placement policies (Section IV-A of the paper).
//!
//! Upon submission, the scheduler tries to place a job's components on
//! clusters using one of the placement policies, each a named implementor
//! of the open [`Placement`] trait (see [`crate::policy`]):
//!
//! * [`WorstFit`] (`"worst_fit"`) — each component goes to the cluster
//!   with the most idle processors. Automatic load balancing; the policy
//!   used in all of the paper's malleability experiments.
//! * [`CloseToFiles`] (`"close_to_files"`) — clusters holding the input
//!   files are favoured, then clusters with the cheapest estimated
//!   transfer.
//! * [`ClusterMinimization`] (`"cluster_min"`) — co-allocated jobs span
//!   as few clusters as possible (fewer inter-cluster messages).
//! * [`FlexibleClusterMinimization`] (`"flexible_cluster_min"`) —
//!   additionally splits the job into components sized to the clusters'
//!   idle processors to reduce queue time.
//! * [`FirstFit`] (`"first_fit"`) — each component goes to the
//!   lowest-numbered cluster that can host it. Not in the paper: a
//!   deliberately imbalance-prone baseline the closed policy enum could
//!   not express, useful for quantifying what Worst Fit's load balancing
//!   buys.
//!
//! Policies operate on the *KIS snapshot* (possibly stale), never on live
//! cluster state; the actual claim can therefore fail, which sends the
//! job back to the placement queue — the same pathway as in the real
//! KOALA.
//!
//! For malleable jobs the placement size rule of Section V-B applies:
//! "the placement policies place it if the number of available processors
//! is at least equal to the minimum processor requirement", and the
//! initial size additionally respects the application's size constraint.

mod queue;

pub use queue::{PlacementQueue, PlacementQueueState};

pub use crate::policy::Placement;

use appsim::SizeConstraint;
use multicluster::{ClusterId, FileCatalog, FileId};

/// One component of a placement request.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ComponentRequest {
    /// Minimum processors the component needs to start.
    pub min: u32,
    /// Maximum processors the component can use.
    pub max: u32,
    /// Requested initial processors (`min ≤ preferred ≤ max`).
    pub preferred: u32,
    /// The application's size rule, applied to the granted size.
    pub constraint: SizeConstraint,
}

impl ComponentRequest {
    /// A fixed-size component (rigid jobs).
    pub fn fixed(size: u32, constraint: SizeConstraint) -> Self {
        ComponentRequest {
            min: size,
            max: size,
            preferred: size,
            constraint,
        }
    }

    /// The size granted on a cluster with `avail` idle processors:
    /// `min(preferred, avail)` floored to the constraint, or `None` when
    /// fewer than `min` processors are available (Section V-B's rule).
    pub fn granted_size(&self, avail: u32) -> Option<u32> {
        if avail < self.min {
            return None;
        }
        let want = self.preferred.clamp(self.min, self.max).min(avail);
        match self.constraint.floor(want) {
            Some(s) if s >= self.min => Some(s),
            _ => None,
        }
    }
}

/// A placement request: one component per cluster the job may span.
/// Malleable jobs are single-component (the paper runs them without
/// co-allocation).
///
/// `Default` builds an empty (zero-component) request — a reusable
/// buffer the queue scan refills in place per job instead of allocating.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlacementRequest {
    /// The components to place.
    pub components: Vec<ComponentRequest>,
    /// Input files (used by Close-to-Files).
    pub files: Vec<FileId>,
    /// Whether FCM may re-split the components.
    pub flexible: bool,
}

impl PlacementRequest {
    /// A single-component request with no files.
    pub fn single(c: ComponentRequest) -> Self {
        PlacementRequest {
            components: vec![c],
            files: Vec::new(),
            flexible: false,
        }
    }
}

/// Where one component landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComponentPlacement {
    /// Target cluster.
    pub cluster: ClusterId,
    /// Granted initial size.
    pub size: u32,
}

/// A whole-job placement decision.
pub type PlacementDecision = Vec<ComponentPlacement>;

/// Copies `avail` into `scratch`, runs `f` on the copy, and commits the
/// copy back to `avail` only on success — the all-or-nothing semantics
/// every placement policy shares (a failed multi-component placement
/// must not deduct, as in KOALA's co-allocator).
///
/// Custom [`Placement`] implementors should route their `place_in`
/// through this helper exactly like the built-ins do: `scratch` arrives
/// *unpopulated* (it is a reusable buffer, not a pre-made copy), and
/// deducting from `avail` directly would leak capacity whenever a later
/// component fails.
pub fn place_all_or_nothing(
    avail: &mut [u32],
    scratch: &mut Vec<u32>,
    f: impl FnOnce(&mut [u32]) -> Option<PlacementDecision>,
) -> Option<PlacementDecision> {
    scratch.clear();
    scratch.extend_from_slice(avail);
    let placement = f(scratch)?;
    avail.copy_from_slice(scratch);
    Some(placement)
}

/// Worst Fit (`"worst_fit"`, label `WF`): every component goes to the
/// cluster with the most idle processors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorstFit;

impl Placement for WorstFit {
    fn name(&self) -> &'static str {
        "worst_fit"
    }
    fn label(&self) -> &'static str {
        "WF"
    }
    fn place_in(
        &self,
        req: &PlacementRequest,
        avail: &mut [u32],
        scratch: &mut Vec<u32>,
        _catalog: Option<&FileCatalog>,
    ) -> Option<PlacementDecision> {
        place_all_or_nothing(avail, scratch, |work| place_worst_fit(req, work))
    }
}

/// Close-to-Files (`"close_to_files"`, label `CF`): clusters holding the
/// input files are favoured; degenerates to Worst Fit without a catalog.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CloseToFiles;

impl Placement for CloseToFiles {
    fn name(&self) -> &'static str {
        "close_to_files"
    }
    fn label(&self) -> &'static str {
        "CF"
    }
    fn place_in(
        &self,
        req: &PlacementRequest,
        avail: &mut [u32],
        scratch: &mut Vec<u32>,
        catalog: Option<&FileCatalog>,
    ) -> Option<PlacementDecision> {
        place_all_or_nothing(avail, scratch, |work| {
            place_close_to_files(req, work, catalog)
        })
    }
}

/// Cluster Minimization (`"cluster_min"`, label `CM`): co-allocated jobs
/// span as few clusters as possible.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterMinimization;

impl Placement for ClusterMinimization {
    fn name(&self) -> &'static str {
        "cluster_min"
    }
    fn label(&self) -> &'static str {
        "CM"
    }
    fn place_in(
        &self,
        req: &PlacementRequest,
        avail: &mut [u32],
        scratch: &mut Vec<u32>,
        _catalog: Option<&FileCatalog>,
    ) -> Option<PlacementDecision> {
        place_all_or_nothing(avail, scratch, |work| place_cluster_min(req, work))
    }
}

/// Flexible Cluster Minimization (`"flexible_cluster_min"`, label `FCM`):
/// re-splits flexible requests into chunks sized to the clusters' idle
/// processors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlexibleClusterMinimization;

impl Placement for FlexibleClusterMinimization {
    fn name(&self) -> &'static str {
        "flexible_cluster_min"
    }
    fn label(&self) -> &'static str {
        "FCM"
    }
    fn place_in(
        &self,
        req: &PlacementRequest,
        avail: &mut [u32],
        scratch: &mut Vec<u32>,
        _catalog: Option<&FileCatalog>,
    ) -> Option<PlacementDecision> {
        place_all_or_nothing(avail, scratch, |work| place_flexible(req, work))
    }
}

/// First Fit (`"first_fit"`, label `FF`): every component goes to the
/// lowest-numbered cluster that can host it, regardless of load.
///
/// Not one of KOALA's policies — a baseline the old closed enum could
/// not express. Deliberately concentrates load on the first clusters,
/// which makes the value of Worst Fit's automatic balancing measurable.
///
/// ```
/// use koala::placement::{ComponentRequest, FirstFit, Placement, PlacementRequest};
/// use appsim::SizeConstraint;
///
/// let req = PlacementRequest::single(ComponentRequest::fixed(4, SizeConstraint::Any));
/// let mut avail = vec![2, 10, 40];
/// let p = FirstFit.place(&req, &mut avail, None).unwrap();
/// // Cluster 0 is too small; cluster 1 is the first fit (worst fit
/// // would have picked cluster 2).
/// assert_eq!(p[0].cluster.index(), 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FirstFit;

impl Placement for FirstFit {
    fn name(&self) -> &'static str {
        "first_fit"
    }
    fn label(&self) -> &'static str {
        "FF"
    }
    fn place_in(
        &self,
        req: &PlacementRequest,
        avail: &mut [u32],
        scratch: &mut Vec<u32>,
        _catalog: Option<&FileCatalog>,
    ) -> Option<PlacementDecision> {
        place_all_or_nothing(avail, scratch, |work| place_first_fit(req, work))
    }
}

fn argmax_avail(avail: &[u32]) -> Option<ClusterId> {
    let mut best: Option<(u32, usize)> = None;
    for (i, &a) in avail.iter().enumerate() {
        // Strict `>` keeps the lowest index on ties — deterministic.
        if best.is_none_or(|(b, _)| a > b) {
            best = Some((a, i));
        }
    }
    best.map(|(_, i)| ClusterId(i as u16))
}

/// Worst Fit: every component goes to the cluster with the most idle
/// processors (availability updated between components).
fn place_worst_fit(req: &PlacementRequest, avail: &mut [u32]) -> Option<PlacementDecision> {
    let mut out = Vec::with_capacity(req.components.len());
    for comp in &req.components {
        let c = argmax_avail(avail)?;
        let size = comp.granted_size(avail[c.index()])?;
        avail[c.index()] -= size;
        out.push(ComponentPlacement { cluster: c, size });
    }
    Some(out)
}

/// First Fit: every component goes to the lowest-numbered cluster that
/// can grant it (availability updated between components).
fn place_first_fit(req: &PlacementRequest, avail: &mut [u32]) -> Option<PlacementDecision> {
    let mut out = Vec::with_capacity(req.components.len());
    for comp in &req.components {
        let mut placed = false;
        for (i, a) in avail.iter_mut().enumerate() {
            if let Some(size) = comp.granted_size(*a) {
                *a -= size;
                out.push(ComponentPlacement {
                    cluster: ClusterId(i as u16),
                    size,
                });
                placed = true;
                break;
            }
        }
        if !placed {
            return None;
        }
    }
    Some(out)
}

/// Close-to-Files: clusters are ranked by estimated staging time of the
/// request's input files (ties broken by most idle), and each component
/// takes the best-ranked cluster that can host it.
fn place_close_to_files(
    req: &PlacementRequest,
    avail: &mut [u32],
    catalog: Option<&FileCatalog>,
) -> Option<PlacementDecision> {
    let Some(cat) = catalog else {
        // Without a catalog CF degenerates to WF (no file information).
        return place_worst_fit(req, avail);
    };
    let mut out = Vec::with_capacity(req.components.len());
    for comp in &req.components {
        let mut ranked: Vec<(u64, std::cmp::Reverse<u32>, u16)> = (0..avail.len())
            .map(|i| {
                let c = ClusterId(i as u16);
                let stage = cat.staging_time(&req.files, c).as_millis();
                (stage, std::cmp::Reverse(avail[i]), i as u16)
            })
            .collect();
        ranked.sort();
        let mut placed = false;
        for &(_, _, i) in &ranked {
            let c = ClusterId(i);
            if let Some(size) = comp.granted_size(avail[c.index()]) {
                avail[c.index()] -= size;
                out.push(ComponentPlacement { cluster: c, size });
                placed = true;
                break;
            }
        }
        if !placed {
            return None;
        }
    }
    Some(out)
}

/// Cluster Minimization: pack components into as few clusters as
/// possible, visiting clusters in descending availability.
fn place_cluster_min(req: &PlacementRequest, avail: &mut [u32]) -> Option<PlacementDecision> {
    let mut order: Vec<usize> = (0..avail.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(avail[i]), i));
    let mut out = vec![None; req.components.len()];
    let mut remaining = req.components.len();
    for &ci in &order {
        if remaining == 0 {
            break;
        }
        let c = ClusterId(ci as u16);
        for (k, comp) in req.components.iter().enumerate() {
            if out[k].is_some() {
                continue;
            }
            if let Some(size) = comp.granted_size(avail[ci]) {
                avail[ci] -= size;
                out[k] = Some(ComponentPlacement { cluster: c, size });
                remaining -= 1;
            }
        }
    }
    if remaining == 0 {
        Some(
            out.into_iter()
                .map(|o| o.expect("remaining == 0"))
                .collect(),
        )
    } else {
        None
    }
}

/// Flexible Cluster Minimization: treat the request as one total demand
/// (the sum of preferred sizes) and split it into per-cluster chunks
/// following descending availability, minimizing the cluster count while
/// never creating a chunk smaller than the smallest component minimum.
fn place_flexible(req: &PlacementRequest, avail: &mut [u32]) -> Option<PlacementDecision> {
    if !req.flexible {
        return place_cluster_min(req, avail);
    }
    let total: u32 = req.components.iter().map(|c| c.preferred).sum();
    let min_chunk = req.components.iter().map(|c| c.min).min().unwrap_or(1);
    let mut order: Vec<usize> = (0..avail.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(avail[i]), i));
    let mut left = total;
    let mut out = Vec::new();
    for &ci in &order {
        if left == 0 {
            break;
        }
        let take = avail[ci].min(left);
        if take < min_chunk {
            continue;
        }
        // Avoid leaving a remainder smaller than a viable chunk.
        let take = if left - take > 0 && left - take < min_chunk {
            take - (min_chunk - (left - take))
        } else {
            take
        };
        if take < min_chunk {
            continue;
        }
        avail[ci] -= take;
        left -= take;
        out.push(ComponentPlacement {
            cluster: ClusterId(ci as u16),
            size: take,
        });
    }
    if left == 0 {
        Some(out)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn any(min: u32, max: u32, pref: u32) -> ComponentRequest {
        ComponentRequest {
            min,
            max,
            preferred: pref,
            constraint: SizeConstraint::Any,
        }
    }

    #[test]
    fn granted_size_follows_section_v_rule() {
        let c = any(2, 46, 2);
        assert_eq!(c.granted_size(1), None, "below min: no placement");
        assert_eq!(c.granted_size(2), Some(2));
        assert_eq!(c.granted_size(100), Some(2), "preferred caps the grant");
        let big = any(2, 46, 30);
        assert_eq!(big.granted_size(10), Some(10), "idle caps the grant");
    }

    #[test]
    fn granted_size_respects_constraints() {
        let ft = ComponentRequest {
            min: 2,
            max: 32,
            preferred: 6,
            constraint: SizeConstraint::PowerOfTwo,
        };
        assert_eq!(ft.granted_size(100), Some(4), "6 floors to 4");
        assert_eq!(ft.granted_size(3), Some(2));
        assert_eq!(ft.granted_size(1), None);
    }

    #[test]
    fn worst_fit_picks_most_idle() {
        let req = PlacementRequest::single(any(2, 46, 2));
        let mut avail = vec![10, 40, 25];
        let p = WorstFit.place(&req, &mut avail, None).unwrap();
        assert_eq!(
            p,
            vec![ComponentPlacement {
                cluster: ClusterId(1),
                size: 2
            }]
        );
        assert_eq!(avail, vec![10, 38, 25]);
    }

    #[test]
    fn worst_fit_spreads_components() {
        let req = PlacementRequest {
            components: vec![any(20, 20, 20), any(20, 20, 20)],
            files: Vec::new(),
            flexible: false,
        };
        let mut avail = vec![30, 25];
        let p = WorstFit.place(&req, &mut avail, None).unwrap();
        assert_eq!(p[0].cluster, ClusterId(0));
        assert_eq!(
            p[1].cluster,
            ClusterId(1),
            "after deduction, cluster 1 has more"
        );
    }

    #[test]
    fn worst_fit_fails_when_nothing_fits() {
        let req = PlacementRequest::single(any(50, 50, 50));
        let mut avail = vec![10, 40, 25];
        assert_eq!(WorstFit.place(&req, &mut avail, None), None);
        assert_eq!(avail, vec![10, 40, 25], "failed placement must not deduct");
    }

    #[test]
    fn worst_fit_ties_break_to_lowest_id() {
        let req = PlacementRequest::single(any(2, 4, 2));
        let mut avail = vec![30, 30];
        let p = WorstFit.place(&req, &mut avail, None).unwrap();
        assert_eq!(p[0].cluster, ClusterId(0));
    }

    #[test]
    fn first_fit_takes_the_lowest_hosting_cluster() {
        let req = PlacementRequest::single(any(4, 8, 4));
        let mut avail = vec![2, 10, 40];
        let p = FirstFit.place(&req, &mut avail, None).unwrap();
        assert_eq!(p[0].cluster, ClusterId(1), "cluster 0 is below min");
        assert_eq!(avail, vec![2, 6, 40]);
    }

    #[test]
    fn first_fit_concentrates_components_unlike_worst_fit() {
        let req = PlacementRequest {
            components: vec![any(8, 8, 8), any(8, 8, 8)],
            files: Vec::new(),
            flexible: false,
        };
        let mut avail = vec![30, 25];
        let p = FirstFit.place(&req, &mut avail, None).unwrap();
        assert!(
            p.iter().all(|cp| cp.cluster == ClusterId(0)),
            "first fit packs cluster 0 while it lasts"
        );
        let mut avail_wf = vec![30, 25];
        let wf = WorstFit.place(&req, &mut avail_wf, None).unwrap();
        assert_ne!(wf[0].cluster, wf[1].cluster, "worst fit spreads");
    }

    #[test]
    fn first_fit_is_all_or_nothing() {
        let req = PlacementRequest {
            components: vec![any(8, 8, 8), any(40, 40, 40)],
            files: Vec::new(),
            flexible: false,
        };
        let mut avail = vec![10, 9];
        assert_eq!(FirstFit.place(&req, &mut avail, None), None);
        assert_eq!(avail, vec![10, 9], "failed placement must not deduct");
    }

    #[test]
    fn close_to_files_prefers_replica_sites() {
        let mut cat = FileCatalog::uniform(3, 1.0).unwrap();
        let f = cat.register(50.0, [ClusterId(2)]);
        let req = PlacementRequest {
            components: vec![any(2, 8, 4)],
            files: vec![f],
            flexible: false,
        };
        // Cluster 2 has fewer idle processors but holds the replica.
        let mut avail = vec![40, 40, 10];
        let p = CloseToFiles.place(&req, &mut avail, Some(&cat)).unwrap();
        assert_eq!(p[0].cluster, ClusterId(2));
    }

    #[test]
    fn close_to_files_without_catalog_is_worst_fit() {
        let req = PlacementRequest::single(any(2, 8, 2));
        let mut a1 = vec![5, 9];
        let mut a2 = vec![5, 9];
        let p1 = CloseToFiles.place(&req, &mut a1, None).unwrap();
        let p2 = WorstFit.place(&req, &mut a2, None).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn close_to_files_falls_through_full_replica_site() {
        let mut cat = FileCatalog::uniform(2, 1.0).unwrap();
        let f = cat.register(50.0, [ClusterId(0)]);
        let req = PlacementRequest {
            components: vec![any(4, 8, 4)],
            files: vec![f],
            flexible: false,
        };
        let mut avail = vec![2, 20]; // replica site too busy
        let p = CloseToFiles.place(&req, &mut avail, Some(&cat)).unwrap();
        assert_eq!(p[0].cluster, ClusterId(1));
    }

    #[test]
    fn cluster_minimization_packs_components_together() {
        let req = PlacementRequest {
            components: vec![any(8, 8, 8), any(8, 8, 8), any(8, 8, 8)],
            files: Vec::new(),
            flexible: false,
        };
        let mut avail = vec![20, 30, 9];
        let p = ClusterMinimization.place(&req, &mut avail, None).unwrap();
        // All three fit in cluster 1 (30 ≥ 24): one cluster used.
        assert!(p.iter().all(|cp| cp.cluster == ClusterId(1)));
    }

    #[test]
    fn cluster_minimization_spills_when_needed() {
        let req = PlacementRequest {
            components: vec![any(8, 8, 8), any(8, 8, 8)],
            files: Vec::new(),
            flexible: false,
        };
        let mut avail = vec![10, 9];
        let p = ClusterMinimization.place(&req, &mut avail, None).unwrap();
        assert_eq!(p[0].cluster, ClusterId(0));
        assert_eq!(p[1].cluster, ClusterId(1));
    }

    #[test]
    fn flexible_splits_across_clusters() {
        let req = PlacementRequest {
            components: vec![any(2, 32, 24)],
            files: Vec::new(),
            flexible: true,
        };
        let mut avail = vec![10, 9, 8];
        let p = FlexibleClusterMinimization
            .place(&req, &mut avail, None)
            .unwrap();
        let total: u32 = p.iter().map(|cp| cp.size).sum();
        assert_eq!(total, 24);
        assert!(
            p.len() >= 3,
            "24 processors cannot fit in fewer than 3 of these clusters"
        );
        assert!(p.iter().all(|cp| cp.size >= 2));
    }

    #[test]
    fn flexible_fails_when_total_capacity_short() {
        let req = PlacementRequest {
            components: vec![any(2, 64, 40)],
            files: Vec::new(),
            flexible: true,
        };
        let mut avail = vec![10, 9, 8];
        assert_eq!(
            FlexibleClusterMinimization.place(&req, &mut avail, None),
            None
        );
    }

    #[test]
    fn labels_and_names() {
        assert_eq!(WorstFit.label(), "WF");
        assert_eq!(WorstFit.name(), "worst_fit");
        assert_eq!(FlexibleClusterMinimization.label(), "FCM");
        assert_eq!(FirstFit.label(), "FF");
        assert_eq!(FirstFit.name(), "first_fit");
    }
}
