//! The placement queue (Section IV-A of the paper).
//!
//! "If a placement try fails, KOALA places the job at the tail of a
//! placement queue. This queue holds all the jobs that have not yet been
//! successfully placed. The scheduler regularly scans this queue from
//! head to tail to see whether any job is able to be placed. For each job
//! in the queue we record its number of placement tries, and when this
//! number exceeds a certain threshold value, the submission of that job
//! fails."

use std::collections::VecDeque;

use crate::ids::JobId;

/// FIFO placement queue with per-job retry counts.
#[derive(Debug, Clone, Default)]
pub struct PlacementQueue {
    entries: VecDeque<(JobId, u32)>,
    total_tries: u64,
    failed_submissions: u64,
}

impl PlacementQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a newly submitted (or bounced) job at the tail.
    pub fn push_back(&mut self, job: JobId) {
        debug_assert!(!self.contains(job), "job queued twice");
        self.entries.push_back((job, 0));
    }

    /// Jobs in head-to-tail order (the scan order).
    pub fn scan_order(&self) -> Vec<JobId> {
        self.entries.iter().map(|&(j, _)| j).collect()
    }

    /// [`PlacementQueue::scan_order`] into a reusable buffer — the queue
    /// scan snapshots the order every tick (it mutates the queue while
    /// iterating) and must not allocate per tick.
    pub fn scan_order_into(&self, buf: &mut Vec<JobId>) {
        buf.clear();
        buf.extend(self.entries.iter().map(|&(j, _)| j));
    }

    /// The job at the head, if any.
    pub fn head(&self) -> Option<JobId> {
        self.entries.front().map(|&(j, _)| j)
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no job is waiting.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `job` is queued.
    pub fn contains(&self, job: JobId) -> bool {
        self.entries.iter().any(|&(j, _)| j == job)
    }

    /// Current retry count of a queued job.
    pub fn tries(&self, job: JobId) -> Option<u32> {
        self.entries
            .iter()
            .find(|&&(j, _)| j == job)
            .map(|&(_, t)| t)
    }

    /// Removes a successfully placed job.
    pub fn remove(&mut self, job: JobId) -> bool {
        let before = self.entries.len();
        self.entries.retain(|&(j, _)| j != job);
        before != self.entries.len()
    }

    /// Records a failed placement try. Returns `true` when the job's
    /// tries now exceed `threshold` — the caller must fail the
    /// submission (the job is removed from the queue).
    pub fn record_failed_try(&mut self, job: JobId, threshold: u32) -> bool {
        self.total_tries += 1;
        let Some(entry) = self.entries.iter_mut().find(|(j, _)| *j == job) else {
            return false;
        };
        entry.1 += 1;
        if entry.1 > threshold {
            self.failed_submissions += 1;
            self.remove(job);
            true
        } else {
            false
        }
    }

    /// Total failed placement tries across all jobs (for reports).
    pub fn total_tries(&self) -> u64 {
        self.total_tries
    }

    /// Number of submissions failed by the threshold.
    pub fn failed_submissions(&self) -> u64 {
        self.failed_submissions
    }

    /// Captures the complete queue state — entries with their per-job
    /// retry counts plus the lifetime tallies — for checkpointing.
    pub fn capture_state(&self) -> PlacementQueueState {
        PlacementQueueState {
            entries: self.entries.iter().copied().collect(),
            total_tries: self.total_tries,
            failed_submissions: self.failed_submissions,
        }
    }

    /// Reconstructs a queue from a captured
    /// [`PlacementQueue::capture_state`], preserving FIFO order and the
    /// retry count of every entry.
    pub fn from_state(s: PlacementQueueState) -> Self {
        PlacementQueue {
            entries: s.entries.into_iter().collect(),
            total_tries: s.total_tries,
            failed_submissions: s.failed_submissions,
        }
    }
}

/// The raw internals of a [`PlacementQueue`], exposed for checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementQueueState {
    /// Queued jobs in head-to-tail order with their retry counts.
    pub entries: Vec<(JobId, u32)>,
    /// Total failed placement tries across all jobs.
    pub total_tries: u64,
    /// Submissions failed by the retry threshold.
    pub failed_submissions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = PlacementQueue::new();
        q.push_back(JobId(1));
        q.push_back(JobId(2));
        q.push_back(JobId(3));
        assert_eq!(q.scan_order(), vec![JobId(1), JobId(2), JobId(3)]);
        assert_eq!(q.head(), Some(JobId(1)));
        q.remove(JobId(2));
        assert_eq!(q.scan_order(), vec![JobId(1), JobId(3)]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn tries_accumulate_until_threshold() {
        let mut q = PlacementQueue::new();
        q.push_back(JobId(7));
        assert!(!q.record_failed_try(JobId(7), 3));
        assert!(!q.record_failed_try(JobId(7), 3));
        assert!(!q.record_failed_try(JobId(7), 3));
        assert_eq!(q.tries(JobId(7)), Some(3));
        // The fourth failure exceeds threshold 3: submission fails.
        assert!(q.record_failed_try(JobId(7), 3));
        assert!(!q.contains(JobId(7)));
        assert_eq!(q.failed_submissions(), 1);
        assert_eq!(q.total_tries(), 4);
    }

    #[test]
    fn failed_try_on_unknown_job_is_ignored() {
        let mut q = PlacementQueue::new();
        assert!(!q.record_failed_try(JobId(9), 0));
        assert_eq!(q.failed_submissions(), 0);
    }

    #[test]
    fn capture_restore_preserves_order_and_tries() {
        let mut q = PlacementQueue::new();
        q.push_back(JobId(1));
        q.push_back(JobId(2));
        q.record_failed_try(JobId(1), 10);
        q.record_failed_try(JobId(1), 10);
        q.record_failed_try(JobId(2), 10);
        let copy = PlacementQueue::from_state(q.capture_state());
        assert_eq!(copy.scan_order(), q.scan_order());
        assert_eq!(copy.tries(JobId(1)), Some(2));
        assert_eq!(copy.tries(JobId(2)), Some(1));
        assert_eq!(copy.total_tries(), 3);
        assert_eq!(copy.failed_submissions(), 0);
        // Future threshold decisions match the original exactly.
        let mut a = q;
        let mut b = copy;
        assert_eq!(
            a.record_failed_try(JobId(1), 2),
            b.record_failed_try(JobId(1), 2)
        );
        assert_eq!(a.failed_submissions(), b.failed_submissions());
        assert_eq!(a.capture_state(), b.capture_state());
    }

    #[test]
    fn remove_reports_presence() {
        let mut q = PlacementQueue::new();
        q.push_back(JobId(1));
        assert!(q.remove(JobId(1)));
        assert!(!q.remove(JobId(1)));
        assert!(q.is_empty());
    }
}
