//! The simulation world: KOALA + substrates + event handlers.
//!
//! The world composes the scheduler (placement, queue, malleability
//! manager), the multicluster substrate (clusters, LRMs, KIS, GRAM
//! timing) and the application substrate (DYNACO runners, progress
//! accounting) under a single deterministic event loop.
//!
//! ## Event flows (mirroring Section V of the paper)
//!
//! **Initial placement** — `Arrival` enqueues the job and scans the
//! queue; a successful placement allocates processors (the claim can fail
//! if the KIS snapshot was stale — the job bounces back to the queue) and
//! schedules `StartHeld` after the GRAM batch-submission latency; the job
//! then starts computing and a generation-stamped `Completion` is
//! scheduled from its speedup model.
//!
//! **Grow** — the malleability manager (triggered by freed capacity or by
//! a KIS poll that shows *new* availability) runs the policy; accepted
//! offers immediately extend the cluster allocation (stubs occupy nodes
//! from submission), and `GrowHeld` fires once the stubs run. Only then
//! does the application suspend (`SyncDone` after recruit + redistribute
//! cost) and resume at the new size — GRAM interaction overlaps
//! execution, exactly as the MRunner is designed to do.
//!
//! **Shrink** (PWA) — when the first queued job cannot be placed, the
//! manager mandatorily shrinks running jobs. The application suspends,
//! redistributes, resumes at the smaller size, and only after the
//! `shrunk` feedback are the GRAM jobs released (`ShrinkReleased`), which
//! is when the processors actually free up and the waiting job can place.
//!
//! **Background load** — local jobs enter each cluster's LRM directly,
//! bypassing KOALA; the scheduler only learns about them at the next KIS
//! poll.
//!
//! **Data staging** (network layer on) — a successful placement opens
//! one network flow per input file missing at the destination
//! (`TransferStart`); concurrent flows share links max-min fairly, and
//! every flow start/finish re-estimates the others' completions
//! (generation-stamped `TransferDone`, stale estimates dropped). The
//! GRAM submission — or the deferred claim — fires only when the last
//! transfer lands, so data movement genuinely delays job starts.

use std::collections::{HashMap, VecDeque};

use appsim::dynaco::{Dynaco, Phase as DynacoPhase};
use appsim::generate::JobStream;
use appsim::workload::SubmittedJob;
use appsim::{JobClass, Progress, SizeConstraint};
use multicluster::{
    das3, AllocId, AllocOwner, ClusterId, ClusterState, ControlPlaneFaults,
    ControlPlaneFaultsState, CrashVictim, FailurePolicy, FailureStream, FailureStreamState,
    FileCatalog, FileCatalogState, FileId, FileMeta, FlakyChannelState, FlowNet, FlowNetState,
    FlowState, InfoService, InfoSnapshot, InfoState, LinkId, LocalJob, LocalJobId, LrmState,
    MessageClass, Multicluster, NodeId, NodeState, SubmitOutcome,
};
use simcore::{
    CalendarTuning, Engine, EngineSnapshot, EngineStats, EventHandle, Generation, QueueImpl,
    SimDuration, SimRng, SimTime, Trace,
};

use crate::autoscaler::{Autoscaler, AutoscalerRegistry, ClusterObservation, ScaleDecision};
use crate::avail::AvailIndex;
use crate::config::{Approach, ClaimingPolicy, ConfigError, ExperimentConfig};
use crate::ids::JobId;
use crate::job::{Job, JobPhase};
use crate::malleability::RunningView;
use crate::placement::{ComponentRequest, PlacementQueue, PlacementRequest};
use crate::policy::{Malleability, Placement, PolicyRegistry};
use crate::report::{
    Collector, CtrlStats, MultiSummary, NetStats, ReportMode, RunReport, SummaryReport,
};
use crate::runner::MRunner;

/// The flat event type of the whole simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ev {
    /// A workload job arrives (payload: workload index = job id).
    Arrival(u32),
    /// Coalesced group arrival (see
    /// [`SchedulerConfig::coalesce_timers`]): `count` workload jobs with
    /// consecutive ids starting at `first`, all submitted at the same
    /// instant, delivered as one event that fans out in ascending id
    /// order — exactly the order `count` individual [`Ev::Arrival`]
    /// events scheduled back-to-back would have popped in.
    ///
    /// [`SchedulerConfig::coalesce_timers`]: crate::config::SchedulerConfig
    ArrivalBatch {
        /// First job id of the same-instant run.
        first: u32,
        /// Number of jobs in the run.
        count: u32,
    },
    /// Periodic placement-queue scan.
    QueueScan,
    /// Periodic KIS poll (also triggers job management, Section V-B).
    KisPoll,
    /// Initial GRAM batch is running: the job starts executing.
    StartHeld {
        /// The job.
        job: JobId,
        /// Validity stamp.
        gen: Generation,
    },
    /// Grow stubs are running: recruit and redistribute.
    GrowHeld {
        /// The job.
        job: JobId,
        /// Validity stamp.
        gen: Generation,
    },
    /// Reconfiguration synchronization finished: resume at the new size.
    SyncDone {
        /// The job.
        job: JobId,
        /// Validity stamp.
        gen: Generation,
        /// Whether this was a grow or a shrink sync.
        grow: bool,
    },
    /// GRAM jobs released after a shrink: processors are free.
    ShrinkReleased {
        /// The job.
        job: JobId,
        /// Validity stamp.
        gen: Generation,
        /// Processors freed.
        count: u32,
    },
    /// A job's work is complete.
    Completion {
        /// The job.
        job: JobId,
        /// Validity stamp.
        gen: Generation,
    },
    /// A background (local) job arrives at a cluster.
    BgArrival {
        /// The cluster.
        cluster: ClusterId,
    },
    /// A background job finishes.
    BgComplete {
        /// The cluster.
        cluster: ClusterId,
        /// Its allocation.
        alloc: AllocId,
    },
    /// Part of a cluster is withdrawn from the pool (maintenance or
    /// failure) — the availability variation that motivates malleability
    /// in the paper's introduction. Free nodes are taken first; if the
    /// withdrawal cannot be satisfied, running malleable jobs are
    /// mandatorily shrunk and the event retries until the target is met
    /// or nothing more can be reclaimed.
    NodeWithdraw {
        /// The cluster losing nodes.
        cluster: ClusterId,
        /// Nodes still to withdraw.
        count: u32,
    },
    /// A deferred claim fires: staging is nearly done, take the
    /// processors now (or bounce back to the queue).
    Claim {
        /// The job.
        job: JobId,
        /// Validity stamp.
        gen: Generation,
    },
    /// A job's application-initiated grow request fires (its progress
    /// crossed the configured phase boundary).
    AppGrowRequest {
        /// The job.
        job: JobId,
        /// Validity stamp.
        gen: Generation,
    },
    /// Withdrawn nodes return to the pool.
    NodeRestore {
        /// The cluster regaining nodes.
        cluster: ClusterId,
        /// Nodes to restore.
        count: u32,
    },
    /// Periodic monitoring sample: per-cluster utilization and the
    /// placement-queue depth flow into the report's streaming
    /// accumulators (see [`crate::config::ElasticityConfig`]).
    MonitorSample,
    /// Periodic autoscaling cycle: the configured
    /// [`crate::autoscaler::Autoscaler`] observes every cluster and
    /// schedules [`Ev::AutoscaleApply`] for each non-`Hold` decision.
    AutoscaleCycle,
    /// An autoscale decision lands after the propagation delay — the
    /// world the scaler observed may have moved on, which is exactly the
    /// staleness the elasticity experiments quantify.
    AutoscaleApply {
        /// The cluster being resized.
        cluster: ClusterId,
        /// Grow (repair down nodes) or shrink (withdraw free nodes).
        grow: bool,
        /// Nodes to add or remove.
        count: u32,
    },
    /// Seeded node failure: up to `count` nodes crash on `cluster` and
    /// come back `repair_after` later via [`Ev::NodeRestore`]. Jobs on
    /// the crashed nodes are re-queued or killed per
    /// [`multicluster::FailurePolicy`].
    NodeCrash {
        /// The cluster losing nodes.
        cluster: ClusterId,
        /// Nodes crashing (saturates at the live pool).
        count: u32,
        /// Delay until the taken nodes rejoin the pool.
        repair_after: SimDuration,
    },
    /// A control-plane deadline expired: if the operation it guards is
    /// still pending, the message was (presumed) lost — re-send with
    /// capped exponential backoff, or apply the per-operation give-up
    /// policy once the attempt budget is exhausted. Only scheduled when
    /// [`ControlPlaneFaults`] are enabled.
    CtrlTimeout {
        /// The job whose control operation is guarded.
        job: JobId,
        /// Validity stamp (a bumped generation orphans the deadline).
        gen: Generation,
        /// The guarded operation.
        op: CtrlOp,
        /// Zero-based attempt index of the send this deadline guards.
        attempt: u32,
    },
    /// Periodic orphaned-allocation sweep: reclaims release batches
    /// stuck past the grace window after their release message exhausted
    /// its retries, so lost releases never leak processors. Only
    /// scheduled when [`ControlPlaneFaults`] are enabled.
    OrphanSweep,
    /// A placed job begins staging: one network transfer opens per
    /// input file with no replica at the destination cluster. Only
    /// scheduled when the contended-network layer is configured
    /// ([`crate::config::NetworkConfig`]) — without it the event never
    /// exists and trajectories are untouched.
    TransferStart {
        /// The job whose input files are staged.
        job: JobId,
        /// Validity stamp.
        gen: Generation,
    },
    /// A network transfer's estimated completion fires. Every
    /// fair-share recomputation (another transfer starting or
    /// finishing) bumps the flow's own generation and schedules a
    /// fresh estimate, so only the latest stamp applies — stale
    /// estimates are dropped by [`FlowNet::complete`].
    TransferDone {
        /// The flow id within the world's [`FlowNet`].
        transfer: u64,
        /// The flow-generation stamp of this estimate.
        gen: u64,
    },
}

/// A control-plane operation guarded by the timeout/retry machinery —
/// each variant names one KOALA→GRAM message and maps onto the effect
/// event its delivery schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlOp {
    /// Initial GRAM batch submission (delivers [`Ev::StartHeld`]).
    Start,
    /// Grow-stub batch submission (delivers [`Ev::GrowHeld`]).
    Grow,
    /// Stub recruitment + grow synchronization (delivers
    /// [`Ev::SyncDone`] with `grow = true`).
    RecruitSync,
    /// Shrink synchronization command (delivers [`Ev::SyncDone`] with
    /// `grow = false`).
    ShrinkSync,
    /// GRAM job release after a shrink (delivers [`Ev::ShrinkReleased`]).
    Release {
        /// Processors the release frees.
        count: u32,
    },
}

impl CtrlOp {
    /// The message class the fault model draws outcomes from.
    fn class(self) -> MessageClass {
        match self {
            CtrlOp::Start => MessageClass::Submit,
            CtrlOp::Grow => MessageClass::Grow,
            CtrlOp::RecruitSync => MessageClass::Recruit,
            CtrlOp::ShrinkSync => MessageClass::Shrink,
            CtrlOp::Release { .. } => MessageClass::Release,
        }
    }

    /// The effect event a delivery of this operation's message schedules.
    fn effect(self, job: JobId, gen: Generation) -> Ev {
        match self {
            CtrlOp::Start => Ev::StartHeld { job, gen },
            CtrlOp::Grow => Ev::GrowHeld { job, gen },
            CtrlOp::RecruitSync => Ev::SyncDone {
                job,
                gen,
                grow: true,
            },
            CtrlOp::ShrinkSync => Ev::SyncDone {
                job,
                gen,
                grow: false,
            },
            CtrlOp::Release { count } => Ev::ShrinkReleased { job, gen, count },
        }
    }
}

/// The default streaming look-ahead window: how many future arrivals the
/// streaming intake keeps scheduled ahead of simulated time (see
/// [`World::for_stream_summarized`]).
pub const DEFAULT_LOOKAHEAD: usize = 1024;

/// Where a world's jobs come from.
///
/// The eager variant is the classic path: the whole workload is
/// materialized (generated or an explicit trace) and every arrival is
/// scheduled at bootstrap. The streaming variant pulls jobs from a
/// [`JobStream`] through a bounded look-ahead window — at most `window`
/// arrivals are scheduled ahead of simulated time, so a million-job
/// trace never exists in memory at once.
enum Intake<'a> {
    /// Materialized workload (owned when generated, borrowed for traces).
    Fixed(std::borrow::Cow<'a, [SubmittedJob]>),
    /// Incremental intake from a job stream. The stream is borrowed so
    /// the caller can inspect it after the run (e.g.
    /// [`appsim::swf::SwfJobStream::error`] — a mid-trace parse failure
    /// must not masquerade as a successful short run).
    Stream {
        src: &'a mut (dyn JobStream + 'a),
        /// Jobs whose arrival events are scheduled but have not fired
        /// yet, in arrival order (the bounded look-ahead window).
        pending: VecDeque<SubmittedJob>,
        /// Window size.
        window: usize,
        /// Next job id to assign.
        next_id: u32,
        /// Arrival clamp: streams must be nondecreasing in time; the
        /// occasional inversion in a real trace is clamped up to this.
        last_at: SimTime,
        /// The stream returned `None`.
        exhausted: bool,
    },
}

/// Job storage of a world: a slab indexed by job id.
///
/// In **fixed** mode (eager intake) ids are dense indices and jobs stay
/// in place after completion — exactly the historical `Vec<Job>`
/// behaviour, with no extra indirection on the hot path. In
/// **streaming** mode jobs are inserted at arrival and *retired* at
/// their terminal phase: the slot returns to a free list and the
/// id→slot map forgets the job, so live memory is bounded by the number
/// of in-flight jobs, not the trace length.
struct JobSlab {
    slots: Vec<Option<Job>>,
    /// Struct-of-arrays mirror of `Job::phase`, one entry per slot. The
    /// hot scans ([`World::scan_queue`], [`World::running_views`]) read
    /// these contiguous columns instead of dereferencing the wide `Job`
    /// struct, so a pass over mostly-ineligible jobs touches a few bytes
    /// per slot rather than a cache line. Kept coherent by
    /// [`JobSlab::sync_hot`] at every phase/cluster write site; a dead
    /// slot retains the last value it held (readers gate on `slots`).
    phases: Vec<JobPhase>,
    /// Struct-of-arrays mirror of `Job::cluster` (see
    /// [`JobSlab::phases`]).
    clusters: Vec<Option<ClusterId>>,
    /// Free slot indices (streaming mode only).
    free: Vec<u32>,
    /// Job id → slot (streaming mode only; fixed mode uses id = slot).
    index: HashMap<u32, u32>,
    streaming: bool,
    /// Jobs created and not yet retired.
    live: usize,
    /// High-water mark of `live` (the bounded-memory witness).
    peak_live: usize,
    /// Jobs ever created.
    created: u64,
}

impl JobSlab {
    /// Fixed-mode storage over a prebuilt job list.
    fn fixed(jobs: Vec<Job>) -> Self {
        let n = jobs.len();
        let phases = jobs.iter().map(|j| j.phase).collect();
        let clusters = jobs.iter().map(|j| j.cluster).collect();
        JobSlab {
            slots: jobs.into_iter().map(Some).collect(),
            phases,
            clusters,
            free: Vec::new(),
            index: HashMap::new(),
            streaming: false,
            live: n,
            peak_live: n,
            created: n as u64,
        }
    }

    /// Empty streaming-mode storage.
    fn streaming() -> Self {
        JobSlab {
            slots: Vec::new(),
            phases: Vec::new(),
            clusters: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            streaming: true,
            live: 0,
            peak_live: 0,
            created: 0,
        }
    }

    /// Inserts a newly arrived job (streaming mode), returning its slot.
    fn insert(&mut self, job: Job) -> usize {
        debug_assert!(self.streaming, "fixed slabs are prebuilt");
        let id = job.id.0;
        let (phase, cluster) = (job.phase, job.cluster);
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(job);
                self.phases[s as usize] = phase;
                self.clusters[s as usize] = cluster;
                s
            }
            None => {
                self.slots.push(Some(job));
                self.phases.push(phase);
                self.clusters.push(cluster);
                (self.slots.len() - 1) as u32
            }
        };
        self.index.insert(id, slot);
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        self.created += 1;
        slot as usize
    }

    /// The collector slot of a live job (fixed mode: its id).
    fn slot_of(&self, id: JobId) -> usize {
        if self.streaming {
            self.index[&id.0] as usize
        } else {
            id.index()
        }
    }

    /// The job, if it is still live (stale events on retired jobs
    /// resolve to `None` and are dropped by their handlers).
    fn get(&self, id: JobId) -> Option<&Job> {
        if self.streaming {
            let slot = *self.index.get(&id.0)?;
            self.slots[slot as usize].as_ref()
        } else {
            self.slots.get(id.index()).and_then(Option::as_ref)
        }
    }

    /// Mutable access, like [`JobSlab::get`].
    fn get_mut(&mut self, id: JobId) -> Option<&mut Job> {
        if self.streaming {
            let slot = *self.index.get(&id.0)?;
            self.slots[slot as usize].as_mut()
        } else {
            self.slots.get_mut(id.index()).and_then(Option::as_mut)
        }
    }

    /// Marks a job terminal. Fixed mode keeps the job in place (reports
    /// and tests read it); streaming mode frees the slot.
    fn retire(&mut self, id: JobId) {
        debug_assert!(self.live > 0, "retire with no live jobs");
        self.live -= 1;
        if !self.streaming {
            return;
        }
        let slot = self.index.remove(&id.0).expect("retired job was live");
        self.slots[slot as usize] = None;
        self.free.push(slot);
    }

    /// Re-mirrors a live job's `phase` and `cluster` into the hot
    /// struct-of-arrays columns. Must be called after every site that
    /// writes either field on a slab-resident job;
    /// [`JobSlab::assert_hot_coherent`] backstops that contract in debug
    /// builds. A no-op for ids that are no longer live.
    fn sync_hot(&mut self, id: JobId) {
        let slot = if self.streaming {
            match self.index.get(&id.0) {
                Some(&s) => s as usize,
                None => return,
            }
        } else {
            id.index()
        };
        if let Some(job) = self.slots.get(slot).and_then(Option::as_ref) {
            self.phases[slot] = job.phase;
            self.clusters[slot] = job.cluster;
        }
    }

    /// The phase column entry for `slot` (meaningful only while the slot
    /// is occupied).
    fn phase_at(&self, slot: usize) -> JobPhase {
        self.phases[slot]
    }

    /// The job occupying `slot`, if any.
    fn job_at(&self, slot: usize) -> Option<&Job> {
        self.slots.get(slot).and_then(Option::as_ref)
    }

    /// Slot indices of live jobs whose hot columns say "running on
    /// `cluster`" — the candidate set of [`World::running_views`],
    /// computed from the two contiguous columns without touching the
    /// `Job` structs.
    fn running_slots_on(&self, cluster: ClusterId) -> impl Iterator<Item = usize> + '_ {
        self.clusters
            .iter()
            .zip(self.phases.iter())
            .enumerate()
            .filter(move |&(_, (c, p))| *c == Some(cluster) && *p == JobPhase::Running)
            .map(|(slot, _)| slot)
    }

    /// Debug-build coherence check: every live job's struct fields match
    /// its column entries. Called from the hot scans so the whole test
    /// suite (goldens included) polices missed [`JobSlab::sync_hot`]
    /// call sites.
    #[cfg(debug_assertions)]
    fn assert_hot_coherent(&self) {
        for (slot, job) in self.slots.iter().enumerate() {
            if let Some(job) = job {
                debug_assert!(
                    self.phases[slot] == job.phase && self.clusters[slot] == job.cluster,
                    "hot columns out of sync at slot {slot}: col=({:?}, {:?}) job=({:?}, {:?})",
                    self.phases[slot],
                    self.clusters[slot],
                    job.phase,
                    job.cluster,
                );
            }
        }
    }

    /// Live jobs, in slot order.
    fn iter_live(&self) -> impl Iterator<Item = &Job> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Jobs created and not yet retired.
    fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of concurrently live jobs.
    fn peak_live(&self) -> usize {
        self.peak_live
    }
}

/// What one network flow is moving, and for whom — resolved when its
/// completion event fires.
struct TransferOwner {
    /// The job the transfer serves.
    job: JobId,
    /// The job's generation when the transfer opened; a bumped stamp
    /// means the job moved on (re-queued, reconfigured) and the
    /// completion must not drive it — the data still lands, though:
    /// the replica is registered regardless.
    gen: Generation,
    /// The staged file, or `None` for reconfiguration traffic (which
    /// only contends — nothing waits on it).
    file: Option<FileId>,
    /// Destination cluster (gains the replica on completion).
    dest: ClusterId,
}

/// Per-job staging progress under the network layer.
struct StagingState {
    /// Transfers still in flight for this staging session.
    pending: u32,
    /// The job generation the session belongs to (pairs completions
    /// with the right session if the job was re-placed meanwhile).
    gen: Generation,
    /// When staging began — the staging-delay metric's anchor.
    since: SimTime,
}

/// Runtime state of the contended-network layer: the fair-share flow
/// network plus the bookkeeping that ties flows back to jobs. `None`
/// on the world when [`crate::config::ExperimentConfig::network`] is
/// `None` — the default — in which case staging falls back to the
/// closed-form catalog estimates and trajectories are bit-identical
/// to the pre-network code (pinned by the passivity golden).
struct NetRuntime {
    /// Active flows and max-min fair rate assignment.
    flows: FlowNet,
    /// Flow id → what it moves and for whom.
    owners: HashMap<u64, TransferOwner>,
    /// Job id → staging session in progress.
    staging: HashMap<u32, StagingState>,
    /// GB of redistribution traffic per processor moved by a
    /// reconfiguration (zero disables reconfig traffic).
    reconfig_gb_per_proc: f64,
    /// Transfer tallies for the report.
    stats: NetStats,
}

/// The simulation world. Construct with [`World::new`], drive with
/// [`World::run_to_completion`] (or use the [`run_experiment`] helper).
///
/// The world **borrows** its configuration: a run no longer clones the
/// `ExperimentConfig` (or an explicit trace, which can be an arbitrarily
/// large job list) — important for multi-seed sweeps, where
/// [`crate::parallel`] shares one configuration across worker threads.
pub struct World<'a> {
    cfg: &'a ExperimentConfig,
    /// The seed this run executes under (usually `cfg.seed`; sweeps
    /// override it per cell without cloning the configuration).
    seed: u64,
    /// The placement policy, resolved once from `cfg.sched.placement`
    /// against the global [`PolicyRegistry`] — the simulation core never
    /// dispatches on concrete policy types, so new policies plug in by
    /// name without touching this module.
    placement: Box<dyn Placement>,
    /// The malleability-management policy, resolved like `placement`.
    malleability: Box<dyn Malleability>,
    mc: Multicluster,
    kis: InfoService,
    files: Option<FileCatalog>,
    intake: Intake<'a>,
    jobs: JobSlab,
    queue: PlacementQueue,
    /// The measurement sink: a full job-table/step-series collector, or
    /// the memory-bounded streaming one ([`ReportMode`]). Strictly
    /// passive — the simulation trajectory is identical either way.
    collect: Collector,
    grow_messages: u64,
    shrink_messages: u64,
    bg_rng: SimRng,
    /// Per-cluster processors in the shrink pipeline (decided but not yet
    /// freed) — stops PWA from over-shrinking while releases are in
    /// flight.
    pending_release: Vec<u32>,
    /// Per-cluster idle level already offered to (or declined by) running
    /// jobs. The malleability manager only offers *newly available*
    /// processors — the paper's `growValue` is "the number of processors
    /// to be allocated on behalf of malleable jobs", i.e. the processors
    /// that just became available, not the whole idle pool. Idle capacity
    /// present at the start of the run is never offered (jobs start at
    /// their initial sizes and ratchet up from released processors),
    /// which is what keeps utilization in the paper's 40–120 processor
    /// band on a 272-node system.
    idle_baseline: Vec<u32>,
    arrivals_seen: usize,
    next_bg_local: u64,
    /// The autoscaling policy, resolved once from
    /// `cfg.elasticity.autoscaler` — `None` when the configuration
    /// selects the `none` scaler, so inelastic runs pay nothing.
    autoscaler: Option<Box<dyn Autoscaler>>,
    /// The seeded node-failure stream (`None` without a failure spec).
    /// A pure function of its fork of the master seed: it never reads
    /// simulation state, so failure times are identical across report
    /// modes and thread counts.
    failures: Option<FailureStream>,
    /// The seeded control-plane fault model (`None` without a fault
    /// spec — the default, in which case the retry machinery is pure
    /// plumbing: no extra events, no extra RNG draws, bit-identical
    /// trajectories to the pre-fault-layer code).
    faults: Option<ControlPlaneFaults>,
    /// Control-plane health counters (all zero when faults are off).
    ctrl: CtrlStats,
    /// The contended-network layer (`None` without a network config —
    /// the default — making the whole layer strictly passive).
    net: Option<NetRuntime>,
    trace: Trace,
    /// Reusable scratch for [`World::scan_queue`] (scan-order snapshot,
    /// live availability, budget-capped availability, the placement
    /// policy's all-or-nothing copy, and the request being placed) —
    /// the scheduling hot path allocates nothing per tick in steady
    /// state.
    scan_buf: Vec<JobId>,
    scratch_avail: Vec<u32>,
    scratch_eff: Vec<u32>,
    scratch_place: Vec<u32>,
    scratch_req: PlacementRequest,
    /// Incremental per-cluster availability index (see [`crate::avail`]):
    /// capacity mutations mark their cluster dirty, and the scan's
    /// effective-availability aggregates quick-reject placement attempts
    /// no policy could satisfy. Consulted only when
    /// [`SchedulerConfig::avail_index`](crate::config::SchedulerConfig)
    /// is on; always maintained (marking is a few branches) so the
    /// on/off trajectories cannot drift apart structurally.
    avail_idx: AvailIndex,
}

impl<'a> World<'a> {
    /// Builds the world: DAS-3, the generated workload, and all
    /// bookkeeping. All randomness forks from `cfg.seed`.
    pub fn new(cfg: &'a ExperimentConfig) -> Self {
        Self::for_seed(cfg, cfg.seed)
    }

    /// Builds the world for an explicit `seed`, ignoring `cfg.seed` —
    /// the per-cell entry point of multi-seed sweeps, which would
    /// otherwise have to clone the whole configuration (including any
    /// explicit trace) just to restamp the seed.
    ///
    /// # Panics
    /// Panics when the configured policy names do not resolve against
    /// [`PolicyRegistry::global`] (run through
    /// [`crate::run_experiment`], which validates first, for a
    /// `Result`-shaped path).
    pub fn for_seed(cfg: &'a ExperimentConfig, seed: u64) -> Self {
        Self::for_seed_with_mode(cfg, seed, ReportMode::Full)
    }

    /// [`World::for_seed`] in memory-bounded summary mode: the run
    /// collects streaming accumulators only (no job table, no step
    /// series, no trace) and finishes through
    /// [`World::run_to_summary`]. Warmup trimming and reservoir capacity
    /// come from `cfg.report`.
    pub fn for_seed_summarized(cfg: &'a ExperimentConfig, seed: u64) -> Self {
        Self::for_seed_with_mode(cfg, seed, ReportMode::Summarized)
    }

    fn for_seed_with_mode(cfg: &'a ExperimentConfig, seed: u64, mode: ReportMode) -> Self {
        let mut master = SimRng::seed_from_u64(seed);
        let mut wl_rng = master.fork(1);
        let bg_rng = master.fork(2);
        let failure_rng = master.fork(3);
        let fault_rng = master.fork(4);
        let workload: std::borrow::Cow<'a, [SubmittedJob]> = match (&cfg.trace, &cfg.generator) {
            (Some(trace), _) => std::borrow::Cow::Borrowed(trace.as_slice()),
            (None, Some(name)) => {
                // The eager generator path: materialize the named
                // source's stream (small runs; million-job streams go
                // through `for_stream_summarized`).
                let src = appsim::generate::WorkloadRegistry::global()
                    .source(name)
                    .unwrap_or_else(|e| panic!("invalid experiment configuration: {e}"));
                std::borrow::Cow::Owned(src.generate(seed, cfg.workload.jobs as u64))
            }
            (None, None) => std::borrow::Cow::Owned(cfg.workload.generate(&mut wl_rng)),
        };
        let jobs: Vec<Job> = workload
            .iter()
            .enumerate()
            .map(|(i, s)| Job::new(JobId(i as u32), s.spec.clone(), s.at))
            .collect();
        let mc = topology_for(cfg);
        let collect = match mode {
            ReportMode::Full => Collector::full(
                workload.iter().map(|s| {
                    (
                        s.spec.kind.label().to_string(),
                        s.spec.class.is_malleable(),
                        s.at,
                    )
                }),
                mc.len(),
            ),
            ReportMode::Summarized => {
                let mut c = Collector::summarized(seed, &cfg.report);
                for (i, s) in workload.iter().enumerate() {
                    c.arrived(i, s.at);
                }
                c
            }
        };
        Self::assemble(
            cfg,
            seed,
            mc,
            Intake::Fixed(workload),
            JobSlab::fixed(jobs),
            collect,
            bg_rng,
            failure_rng,
            fault_rng,
        )
    }

    /// Builds a **streaming** world: jobs are pulled incrementally from
    /// `stream` through a bounded look-ahead `window` (at most that many
    /// arrivals are scheduled ahead of simulated time) and retired from
    /// memory at their terminal phase — live memory is bounded by the
    /// in-flight job count, not the trace length. Streaming worlds are
    /// summarized-only: a full report would have to materialize per-job
    /// records, defeating the bound.
    pub fn for_stream_summarized(
        cfg: &'a ExperimentConfig,
        seed: u64,
        stream: &'a mut (dyn JobStream + 'a),
        window: usize,
    ) -> Self {
        let mut master = SimRng::seed_from_u64(seed);
        let _wl_rng = master.fork(1); // keep fork labels aligned with the eager path
        let bg_rng = master.fork(2);
        let failure_rng = master.fork(3);
        let fault_rng = master.fork(4);
        let intake = Intake::Stream {
            src: stream,
            pending: VecDeque::with_capacity(window.max(1)),
            window: window.max(1),
            next_id: 0,
            last_at: SimTime::ZERO,
            exhausted: false,
        };
        Self::assemble(
            cfg,
            seed,
            topology_for(cfg),
            intake,
            JobSlab::streaming(),
            Collector::summarized(seed, &cfg.report),
            bg_rng,
            failure_rng,
            fault_rng,
        )
    }

    #[allow(clippy::too_many_arguments)] // internal assembly seam; both constructors feed it
    fn assemble(
        cfg: &'a ExperimentConfig,
        seed: u64,
        mc: Multicluster,
        intake: Intake<'a>,
        jobs: JobSlab,
        collect: Collector,
        bg_rng: SimRng,
        failure_rng: SimRng,
        fault_rng: SimRng,
    ) -> Self {
        let registry = PolicyRegistry::global();
        let placement = registry
            .placement(&cfg.sched.placement)
            .unwrap_or_else(|e| panic!("invalid experiment configuration: {e}"));
        let malleability = registry
            .malleability(&cfg.sched.malleability)
            .unwrap_or_else(|e| panic!("invalid experiment configuration: {e}"));
        let autoscaler = if cfg.elasticity.autoscaled() {
            Some(
                AutoscalerRegistry::global()
                    .autoscaler(&cfg.elasticity.autoscaler)
                    .unwrap_or_else(|e| panic!("invalid experiment configuration: {e}")),
            )
        } else {
            None
        };
        let n_clusters = mc.len();
        let failures = cfg
            .elasticity
            .failures
            .as_ref()
            .map(|spec| FailureStream::new(spec.clone(), n_clusters as u16, failure_rng));
        let faults = cfg
            .elasticity
            .ctrl_faults
            .as_ref()
            .map(|spec| ControlPlaneFaults::new(spec.clone(), n_clusters as u16, fault_rng));
        // The contended-network layer: resolve the named topology
        // against the global registry and pre-register the configured
        // replica layout. The catalog is derived from the topology
        // (uncontended bottleneck bandwidths), so Close-to-Files
        // ranking and the transfers it leads to agree on the network
        // shape; an explicit `with_files` catalog still overrides it.
        let mut files = None;
        let net = cfg.network.as_ref().map(|nc| {
            let topo = multicluster::global_topologies()
                .resolve(&nc.topology, n_clusters)
                .unwrap_or_else(|e| panic!("invalid experiment configuration: {e}"));
            let mut cat = FileCatalog::over_network(&topo);
            for spec in &nc.files {
                cat.register(spec.size_gb, spec.replicas.iter().map(|&r| ClusterId(r)));
            }
            files = Some(cat);
            NetRuntime {
                flows: FlowNet::new(topo),
                owners: HashMap::new(),
                staging: HashMap::new(),
                reconfig_gb_per_proc: nc.reconfig_gb_per_proc,
                stats: NetStats::default(),
            }
        });
        let w_init = World {
            cfg,
            seed,
            placement,
            malleability,
            mc,
            kis: InfoService::with_lag(cfg.elasticity.kis_lag),
            files,
            intake,
            jobs,
            queue: PlacementQueue::new(),
            collect,
            grow_messages: 0,
            shrink_messages: 0,
            bg_rng,
            pending_release: vec![0; n_clusters],
            idle_baseline: Vec::new(), // filled below from capacities

            arrivals_seen: 0,
            next_bg_local: 0,
            autoscaler,
            failures,
            faults,
            ctrl: CtrlStats::default(),
            net,
            trace: Trace::disabled(),
            scan_buf: Vec::new(),
            scratch_avail: Vec::with_capacity(n_clusters),
            scratch_eff: Vec::with_capacity(n_clusters),
            scratch_place: Vec::with_capacity(n_clusters),
            scratch_req: PlacementRequest::default(),
            avail_idx: AvailIndex::new(n_clusters),
        };
        let mut w = w_init;
        w.idle_baseline = w.mc.clusters().map(|c| c.idle()).collect();
        w
    }

    /// The availability index's current state — dirty set, aggregates
    /// and skip tallies (see [`crate::avail`]). Diagnostic surface; the
    /// index itself is maintained whether or not the scan consults it.
    pub fn avail_index(&self) -> &AvailIndex {
        &self.avail_idx
    }

    /// Installs a file catalog (for Close-to-Files experiments).
    pub fn with_files(mut self, files: FileCatalog) -> Self {
        self.files = Some(files);
        self
    }

    /// Enables job-lifecycle tracing, keeping the most recent `capacity`
    /// entries (exported in the run report). Ignored in summarized mode:
    /// the memory-bounded path never materializes a trace.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        if !self.collect.is_summarized() {
            self.trace = Trace::enabled(capacity);
        }
        self
    }

    /// Whether job-lifecycle tracing is active (tests; always `false`
    /// in summarized mode).
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_enabled()
    }

    /// Whether this world reports through the memory-bounded summary
    /// path.
    pub fn is_summarized(&self) -> bool {
        self.collect.is_summarized()
    }

    /// Direct access to the multicluster state (tests and examples).
    pub fn multicluster(&self) -> &Multicluster {
        &self.mc
    }

    /// Job phases (tests).
    ///
    /// # Panics
    /// Panics for a retired job of a streaming world (fixed-intake
    /// worlds keep terminal jobs in place).
    pub fn job_phase(&self, id: JobId) -> JobPhase {
        self.jobs.get(id).expect("job retired").phase
    }

    /// High-water mark of concurrently live jobs — the streaming
    /// intake's bounded-memory witness (fixed intakes materialize the
    /// whole workload, so this equals the job count there).
    pub fn peak_live_jobs(&self) -> usize {
        self.jobs.peak_live()
    }

    /// Pulls one job from the stream into the look-ahead window and
    /// schedules its arrival. Returns `false` when the stream is
    /// exhausted. No-op for fixed intakes (their arrivals are all
    /// scheduled at bootstrap).
    fn pull_one(&mut self, engine: &mut Engine<Ev>) -> bool {
        let Intake::Stream {
            src,
            pending,
            next_id,
            last_at,
            exhausted,
            ..
        } = &mut self.intake
        else {
            return false;
        };
        if *exhausted {
            return false;
        }
        match src.next_job() {
            Some(mut job) => {
                // Streams must be nondecreasing in arrival time; clamp
                // the occasional inversion of a real trace upward so the
                // event order matches the window order.
                job.at = job.at.max(*last_at);
                *last_at = job.at;
                let id = *next_id;
                *next_id = next_id
                    .checked_add(1)
                    .expect("more than u32::MAX streamed jobs");
                engine.schedule_at(job.at, Ev::Arrival(id));
                pending.push_back(job);
                true
            }
            None => {
                *exhausted = true;
                false
            }
        }
    }

    /// Schedules the initial events.
    pub fn bootstrap(&mut self, engine: &mut Engine<Ev>) {
        // KIS poll first so the first arrivals see a snapshot.
        engine.schedule_at(SimTime::ZERO, Ev::KisPoll);
        match &self.intake {
            Intake::Fixed(workload) => {
                if self.cfg.sched.coalesce_timers {
                    // Merge each run of same-instant submissions into one
                    // group event. Runs are contiguous (the workload is
                    // in submission order), so the batch occupies exactly
                    // the queue position of its first member and fans out
                    // in id order — the trajectory is identical, only the
                    // delivered-event count shrinks.
                    let mut i = 0;
                    while i < workload.len() {
                        let at = workload[i].at;
                        let mut j = i + 1;
                        while j < workload.len() && workload[j].at == at {
                            j += 1;
                        }
                        if j - i == 1 {
                            engine.schedule_at(at, Ev::Arrival(i as u32));
                        } else {
                            engine.schedule_at(
                                at,
                                Ev::ArrivalBatch {
                                    first: i as u32,
                                    count: (j - i) as u32,
                                },
                            );
                        }
                        i = j;
                    }
                } else {
                    for (i, s) in workload.iter().enumerate() {
                        engine.schedule_at(s.at, Ev::Arrival(i as u32));
                    }
                }
            }
            Intake::Stream { window, .. } => {
                // Prime the look-ahead window.
                let window = *window;
                for _ in 0..window {
                    if !self.pull_one(engine) {
                        break;
                    }
                }
            }
        }
        engine.schedule_in(self.cfg.sched.queue_scan_period, Ev::QueueScan);
        if self.cfg.background.is_active() {
            for c in 0..self.mc.len() {
                let cluster = ClusterId(c as u16);
                let cap = self.mc.cluster(cluster).capacity();
                if let Some(gap) = self
                    .cfg
                    .background
                    .sample_interarrival_for(&mut self.bg_rng, cap)
                {
                    engine.schedule_in(gap, Ev::BgArrival { cluster });
                }
            }
        }
        // The elasticity layer: monitoring, autoscaling, failures.
        let e = &self.cfg.elasticity;
        if e.monitored() {
            engine.schedule_in(e.monitor_period, Ev::MonitorSample);
        }
        if self.autoscaler.is_some() {
            engine.schedule_in(e.autoscale_period, Ev::AutoscaleCycle);
        }
        if let Some(stream) = self.failures.as_mut() {
            let f = stream.next_event();
            engine.schedule_at(
                f.at,
                Ev::NodeCrash {
                    cluster: f.cluster,
                    count: f.nodes,
                    repair_after: f.repair_after,
                },
            );
        }
        if self.faults.is_some() {
            engine.schedule_in(self.cfg.sched.retry.orphan_sweep_period, Ev::OrphanSweep);
        }
    }

    /// True when every KOALA job has reached a terminal state.
    pub fn done(&self) -> bool {
        let all_arrived = match &self.intake {
            Intake::Fixed(workload) => self.arrivals_seen == workload.len(),
            Intake::Stream {
                pending, exhausted, ..
            } => *exhausted && pending.is_empty(),
        };
        all_arrived && self.queue.is_empty() && self.jobs.live() == 0
    }

    /// Runs the event loop until all jobs are terminal (or the engine
    /// drains / hits its horizon) and returns the report.
    ///
    /// # Panics
    /// Panics when the world was built with
    /// [`World::for_seed_summarized`] — use [`World::run_to_summary`].
    pub fn run_to_completion(mut self, engine: &mut Engine<Ev>) -> RunReport {
        self.run_loop(engine);
        self.finish(engine)
    }

    /// Runs the event loop like [`World::run_to_completion`] and returns
    /// the memory-bounded summary.
    ///
    /// # Panics
    /// Panics when the world was built in full-report mode — use
    /// [`World::run_to_completion`].
    pub fn run_to_summary(mut self, engine: &mut Engine<Ev>) -> SummaryReport {
        self.run_loop(engine);
        self.finish_summary(engine)
    }

    fn run_loop(&mut self, engine: &mut Engine<Ev>) {
        self.bootstrap(engine);
        self.pump(engine);
    }

    /// The shared inner event loop: pops and handles events until the
    /// world is done or the engine drains. Both the cold path
    /// ([`World::run_loop`] after bootstrap) and the warm-fork resume
    /// path ([`World::resume_to_summary`], no bootstrap — the restored
    /// queue already holds the pending events) drive this.
    fn pump(&mut self, engine: &mut Engine<Ev>) {
        while let Some((_t, ev)) = engine.pop() {
            self.handle(engine, ev);
            if self.done() {
                break;
            }
        }
    }

    /// Runs the event loop until the next pending event would fire at
    /// or after `until` (that boundary event stays queued, so it
    /// replays identically in every fork), the world completes, or the
    /// engine drains. [`World::bootstrap`] must have been called.
    ///
    /// This is the warmup half of the warm-fork pipeline: run the
    /// shared prefix here, capture with [`World::snapshot`], then fork
    /// per policy cell with [`World::fork_with`].
    pub fn run_until(&mut self, engine: &mut Engine<Ev>, until: SimTime) {
        while let Some(t) = engine.peek_time() {
            if t >= until {
                break;
            }
            let (_t, ev) = engine.pop().expect("peeked event pops");
            self.handle(engine, ev);
            if self.done() {
                break;
            }
        }
    }

    /// Continues a restored world to completion and returns the
    /// summary. Unlike [`World::run_to_summary`] this does **not**
    /// bootstrap: the restored engine already carries the pending
    /// events of the captured run.
    ///
    /// # Panics
    /// Panics when the world was built in full-report mode (restored
    /// worlds never are — [`World::snapshot`] rejects that mode).
    pub fn resume_to_summary(mut self, engine: &mut Engine<Ev>) -> SummaryReport {
        // A prefix that already completed broke out of its own loop the
        // moment `done()` turned true; pumping again would deliver one
        // extra event the uninterrupted run never saw.
        if !self.done() {
            self.pump(engine);
        }
        self.finish_summary(engine)
    }

    /// Full-report counterpart of [`World::resume_to_summary`]: drains
    /// the remaining events (if the world is not already done) and
    /// returns the [`RunReport`].
    pub fn resume_to_completion(mut self, engine: &mut Engine<Ev>) -> RunReport {
        if !self.done() {
            self.pump(engine);
        }
        self.finish(engine)
    }

    /// Re-resolves the placement and malleability policies by registry
    /// name, replacing the ones resolved from the configuration at
    /// construction. Policies are stateless (everything they decide
    /// from lives in the world), so a mid-run swap is exactly the
    /// semantics of a warm fork: the prefix ran under the old pair, the
    /// tail runs under the new.
    ///
    /// This is the *cold* arm of the warm-fork pipeline — the reference
    /// trajectory a snapshot-based fork must reproduce byte-for-byte.
    pub fn use_policies(
        &mut self,
        placement: &str,
        malleability: &str,
    ) -> Result<(), crate::policy::PolicyError> {
        let registry = PolicyRegistry::global();
        self.placement = registry.placement(placement)?;
        self.malleability = registry.malleability(malleability)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    /// Handles one event.
    pub fn handle(&mut self, engine: &mut Engine<Ev>, ev: Ev) {
        match ev {
            Ev::Arrival(i) => self.on_arrival(engine, JobId(i)),
            Ev::ArrivalBatch { first, count } => {
                for i in first..first + count {
                    self.on_arrival(engine, JobId(i));
                }
            }
            Ev::QueueScan => {
                self.scan_queue(engine);
                if !self.done() {
                    engine.schedule_in(self.cfg.sched.queue_scan_period, Ev::QueueScan);
                }
            }
            Ev::KisPoll => self.on_kis_poll(engine),
            Ev::StartHeld { job, gen } => self.on_start_held(engine, job, gen),
            Ev::GrowHeld { job, gen } => self.on_grow_held(engine, job, gen),
            Ev::SyncDone { job, gen, grow } => self.on_sync_done(engine, job, gen, grow),
            Ev::ShrinkReleased { job, gen, count } => {
                self.on_shrink_released(engine, job, gen, count)
            }
            Ev::Completion { job, gen } => self.on_completion(engine, job, gen),
            Ev::BgArrival { cluster } => self.on_bg_arrival(engine, cluster),
            Ev::BgComplete { cluster, alloc } => self.on_bg_complete(engine, cluster, alloc),
            Ev::Claim { job, gen } => self.on_claim(engine, job, gen),
            Ev::AppGrowRequest { job, gen } => self.on_app_grow_request(engine, job, gen),
            Ev::NodeWithdraw { cluster, count } => self.on_node_withdraw(engine, cluster, count),
            Ev::NodeRestore { cluster, count } => self.on_node_restore(engine, cluster, count),
            Ev::MonitorSample => self.on_monitor_sample(engine),
            Ev::AutoscaleCycle => self.on_autoscale_cycle(engine),
            Ev::AutoscaleApply {
                cluster,
                grow,
                count,
            } => self.on_autoscale_apply(engine, cluster, grow, count),
            Ev::NodeCrash {
                cluster,
                count,
                repair_after,
            } => self.on_node_crash(engine, cluster, count, repair_after),
            Ev::CtrlTimeout {
                job,
                gen,
                op,
                attempt,
            } => self.on_ctrl_timeout(engine, job, gen, op, attempt),
            Ev::OrphanSweep => self.on_orphan_sweep(engine),
            Ev::TransferStart { job, gen } => self.on_transfer_start(engine, job, gen),
            Ev::TransferDone { transfer, gen } => self.on_transfer_done(engine, transfer, gen),
        }
        debug_assert!(
            self.mc.check_invariants().is_ok(),
            "cluster invariant broken"
        );
    }

    fn on_arrival(&mut self, engine: &mut Engine<Ev>, id: JobId) {
        self.arrivals_seen += 1;
        if let Intake::Stream { pending, .. } = &mut self.intake {
            // Arrivals fire in schedule order at nondecreasing times, so
            // the window's front is always the job this event is for.
            let sj = pending.pop_front().expect("arrival without pending job");
            let job = Job::new(id, sj.spec, sj.at);
            let slot = self.jobs.insert(job);
            self.collect.arrived(slot, sj.at);
            // Keep the look-ahead window full.
            self.pull_one(engine);
        }
        debug_assert!(self.jobs.get(id).is_some(), "arrival for unknown job");
        if self.trace.is_enabled() {
            // The label clone is gated on tracing: a streamed million-job
            // run must not pay a String allocation per arrival.
            let label = self
                .jobs
                .get(id)
                .expect("arrival for unknown job")
                .spec
                .kind
                .label()
                .to_string();
            self.trace
                .record(engine.now(), "arrive", id.0 as u64, || label);
        }
        self.queue.push_back(id);
        // "Upon receiving a job request … the scheduler uses one of the
        // placement policies to try to place job components."
        self.scan_queue(engine);
    }

    fn on_kis_poll(&mut self, engine: &mut Engine<Ev>) {
        let now = engine.now();
        // A lost poll leaves the scheduler on its stale snapshot for one
        // cycle: no management triggers either — the poll result is what
        // would have revealed new capacity.
        let delivered = match self.faults.as_mut() {
            Some(f) => {
                let delivered = f.outcome(MessageClass::InfoPoll, None, now).delivered;
                if !delivered {
                    self.ctrl.polls_lost += 1;
                }
                delivered
            }
            None => true,
        };
        if delivered {
            self.kis.poll(now, self.mc.clusters());
            // Job management triggers (Section V-B): the poll is how KOALA
            // notices processors that became available outside its own
            // bookkeeping — typically released by background users who
            // bypass it. Only the idle delta above the already-offered
            // baseline is handed to the policies.
            match self.cfg.sched.approach {
                Approach::Pra => {
                    for c in 0..self.mc.len() {
                        self.offer_new_capacity(engine, ClusterId(c as u16));
                    }
                    self.scan_queue(engine);
                }
                Approach::Pwa => {
                    self.scan_queue(engine);
                    if self.queue.is_empty() {
                        for c in 0..self.mc.len() {
                            self.offer_new_capacity(engine, ClusterId(c as u16));
                        }
                    }
                }
            }
        }
        if !self.done() {
            engine.schedule_in(self.cfg.sched.kis_poll_period, Ev::KisPoll);
        }
    }

    // ------------------------------------------------------------------
    // Placement
    // ------------------------------------------------------------------

    /// Rebuilds `req` in place for `job`, reusing the buffer's component
    /// and file allocations (the queue scan calls this once per queued
    /// job per tick).
    fn request_for(job: &Job, req: &mut PlacementRequest) {
        let constraint = job.spec.kind.constraint();
        req.components.clear();
        req.files.clear();
        req.flexible = false;
        if let Some(comps) = &job.spec.coalloc {
            // Co-allocated rigid job: one fixed component per entry. The
            // size constraint applies to the total, which validate()
            // guarantees; components use Any so CM/FCM can pack them.
            req.components.extend(
                comps
                    .iter()
                    .map(|&c| ComponentRequest::fixed(c, appsim::SizeConstraint::Any)),
            );
            return;
        }
        let comp = match job.spec.class {
            JobClass::Rigid { size } => ComponentRequest::fixed(size, constraint),
            JobClass::Moldable { min, max } => ComponentRequest {
                min,
                max,
                preferred: max,
                constraint,
            },
            JobClass::Malleable { min, max, initial } => ComponentRequest {
                min,
                max,
                preferred: initial,
                constraint,
            },
        };
        req.components.push(comp);
        req.files.extend(
            job.spec
                .input_files
                .iter()
                .map(|&f| multicluster::FileId(f)),
        );
    }

    /// Estimated staging time of a job's input files at `cluster` (zero
    /// without a catalog or files).
    fn staging_time(&self, job: &Job, cluster: ClusterId) -> simcore::SimDuration {
        match &self.files {
            Some(cat) => {
                let files: Vec<multicluster::FileId> = job
                    .spec
                    .input_files
                    .iter()
                    .map(|&f| multicluster::FileId(f))
                    .collect();
                cat.staging_time(&files, cluster)
            }
            None => simcore::SimDuration::ZERO,
        }
    }

    /// Scans the placement queue head-to-tail (Section IV-A), placing
    /// whatever fits. Under PWA, the first job that does not fit triggers
    /// mandatory shrinking (Section V-B).
    ///
    /// This is the scheduling hot path: with hundreds of queued jobs and
    /// a 10 s scan period it runs O(jobs × clusters) work per tick, so
    /// every buffer it touches is a reusable scratch field of the world
    /// (zero allocations in steady state) and the budget-capped
    /// availability `eff` is only recomputed when a successful placement
    /// or a PWA intervention actually invalidated it (the dirty flag),
    /// instead of once per queued job.
    fn scan_queue(&mut self, engine: &mut Engine<Ev>) {
        // Detach the scratch buffers from `self` for the duration of the
        // scan (they are re-attached at the end, keeping their capacity).
        let mut avail = std::mem::take(&mut self.scratch_avail);
        avail.clear();
        match self.kis.snapshot() {
            Some(snapshot) => avail.extend_from_slice(&snapshot.idle),
            None => {
                self.scratch_avail = avail;
                return;
            }
        }
        let mut eff = std::mem::take(&mut self.scratch_eff);
        let mut place_scratch = std::mem::take(&mut self.scratch_place);
        let mut req = std::mem::take(&mut self.scratch_req);
        let mut scan = std::mem::take(&mut self.scan_buf);
        self.queue.scan_order_into(&mut scan);
        // Graceful degradation: refuse to place blind. A cluster whose
        // control channel is inside a flaky episode would lose most of
        // the submissions sent its way, so its capacity is masked out of
        // this scan and the jobs wait for a healthier window instead.
        if !scan.is_empty() {
            if let Some(faults) = self.faults.as_mut() {
                if faults.spec().flaky.is_some() {
                    let now = engine.now();
                    for (c, a) in avail.iter_mut().enumerate() {
                        if *a > 0 && faults.is_flaky(ClusterId(c as u16), now) {
                            *a = 0;
                            self.ctrl.flaky_deferrals += 1;
                        }
                    }
                }
            }
        }
        // `eff` is `avail` capped by the expansion threshold's remaining
        // headroom; both inputs only change when a placement claims
        // processors (or a PWA intervention grows running jobs), so the
        // recomputation is gated on this dirty flag.
        let mut eff_dirty = true;
        let mut pwa_handled = false;
        #[cfg(debug_assertions)]
        self.jobs.assert_hot_coherent();
        for &id in &scan {
            // Hot filter: the contiguous phase column answers "still
            // queued?" without pulling the wide `Job` struct into cache.
            let slot = self.jobs.slot_of(id);
            if self.jobs.phase_at(slot) != JobPhase::Queued {
                continue;
            }
            let job = self.jobs.get(id).expect("queued job is live");
            Self::request_for(job, &mut req);
            // Availability for KOALA is the snapshot idle count further
            // capped by the expansion threshold's remaining headroom
            // (live, since earlier placements in this scan consume it).
            if eff_dirty {
                let budget = self.koala_headroom();
                eff.clear();
                eff.extend(avail.iter().map(|&a| a.min(budget)));
                self.avail_idx.rebuild(&eff);
                eff_dirty = false;
            }
            // Availability-index quick-reject: when no cluster can host
            // the job's smallest component, or the platform's total
            // headroom is below its summed minimums, every policy is
            // guaranteed to return `None` (see [`crate::avail`]) — take
            // the failure path without paying for the policy walk.
            if self.cfg.sched.avail_index && !self.avail_idx.can_satisfy(&req) {
                self.avail_idx.note_quick_reject();
                if self.cfg.sched.approach == Approach::Pwa && !pwa_handled {
                    pwa_handled = true;
                    self.pwa_make_room(engine, id);
                    // PWA may have grown running jobs on the spot,
                    // consuming expansion-threshold headroom.
                    eff_dirty = true;
                }
                self.fail_try(id);
                continue;
            }
            let placed =
                self.placement
                    .place_in(&req, &mut eff, &mut place_scratch, self.files.as_ref());
            match placed {
                Some(placement) => {
                    // The policy deducted its grant from `eff` (and a
                    // claim below may change the live budget): recompute
                    // before the next job either way.
                    eff_dirty = true;
                    // Deferred claiming: when the job must stage files
                    // first, the processors are NOT taken now — the claim
                    // fires close to the estimated start (Section IV-A's
                    // claiming policy). Single-component jobs only (the
                    // co-allocator always reserves).
                    if let ClaimingPolicy::Deferred { margin } = self.cfg.sched.claiming {
                        if placement.len() == 1 {
                            let cp = placement[0];
                            // Under the contended network, *measured*
                            // transfers decide when the claim fires
                            // (the margin is an estimator knob with no
                            // meaning there); otherwise the catalog's
                            // closed-form estimate schedules it.
                            let networked = self.net.is_some();
                            let stage = if networked {
                                simcore::SimDuration::ZERO
                            } else {
                                self.staging_time(
                                    self.jobs.get(id).expect("placed job"),
                                    cp.cluster,
                                )
                            };
                            let divert = if networked {
                                self.staging_required(id, cp.cluster)
                            } else {
                                !stage.is_zero()
                            };
                            if divert {
                                self.queue.remove(id);
                                let now = engine.now();
                                let slot = self.jobs.slot_of(id);
                                let job = self.jobs.get_mut(id).expect("placed job");
                                job.phase = JobPhase::Staging;
                                job.cluster = Some(cp.cluster);
                                job.pending_claim = Some(vec![(cp.cluster, cp.size)]);
                                self.collect.placed(slot, now);
                                let gen = job.gen;
                                self.jobs.sync_hot(id);
                                if networked {
                                    engine.schedule_now(Ev::TransferStart { job: id, gen });
                                } else {
                                    let delay = simcore::SimDuration::from_millis(
                                        stage.as_millis().saturating_sub(margin.as_millis()),
                                    );
                                    engine.schedule_in(delay, Ev::Claim { job: id, gen });
                                }
                                continue;
                            }
                        }
                    }
                    // The claim runs against *live* state; a stale
                    // snapshot can make it fail, which counts as a
                    // failed placement try (the job stays queued).
                    // Co-allocated claims are all-or-nothing: a partial
                    // failure releases what was already claimed, as in
                    // KOALA's co-allocator.
                    let mut got: Vec<(ClusterId, AllocId, u32)> = Vec::new();
                    let mut all_ok = true;
                    for cp in &placement {
                        match self
                            .mc
                            .cluster_mut(cp.cluster)
                            .allocate(AllocOwner::Koala(id.0 as u64), cp.size)
                        {
                            Ok(alloc) => got.push((cp.cluster, alloc, cp.size)),
                            Err(_) => {
                                all_ok = false;
                                break;
                            }
                        }
                    }
                    if all_ok {
                        for &(c, _, size) in &got {
                            avail[c.index()] = avail[c.index()].saturating_sub(size);
                        }
                        self.queue.remove(id);
                        self.commit_placement(engine, id, got);
                    } else {
                        for (c, alloc, _) in got {
                            self.mc.cluster_mut(c).release(alloc).expect("just claimed");
                        }
                        self.fail_try(id);
                    }
                }
                None => {
                    if self.cfg.sched.approach == Approach::Pwa && !pwa_handled {
                        pwa_handled = true;
                        self.pwa_make_room(engine, id);
                        // PWA may have grown running jobs on the spot,
                        // consuming expansion-threshold headroom.
                        eff_dirty = true;
                    }
                    self.fail_try(id);
                }
            }
        }
        self.scan_buf = scan;
        self.scratch_avail = avail;
        self.scratch_eff = eff;
        self.scratch_place = place_scratch;
        self.scratch_req = req;
    }

    fn fail_try(&mut self, id: JobId) {
        let exceeded = self
            .queue
            .record_failed_try(id, self.cfg.sched.placement_retry_threshold);
        if exceeded {
            let slot = self.jobs.slot_of(id);
            let job = self.jobs.get_mut(id).expect("failing job is live");
            job.phase = JobPhase::Failed;
            job.gen.bump(); // invalidate every remaining event for this job
            self.jobs.sync_hot(id);
            self.collect.placement_failed(slot);
            self.jobs.retire(id);
        }
    }

    fn commit_placement(
        &mut self,
        engine: &mut Engine<Ev>,
        id: JobId,
        components: Vec<(ClusterId, AllocId, u32)>,
    ) {
        let now = engine.now();
        let total: u32 = components.iter().map(|&(_, _, s)| s).sum();
        let (cluster, alloc, size) = components[0];
        let slot = self.jobs.slot_of(id);
        let job = self.jobs.get_mut(id).expect("placed job is live");
        job.phase = JobPhase::Starting;
        job.cluster = Some(cluster);
        job.alloc = Some(alloc);
        job.extra_allocs = components[1..].iter().map(|&(c, a, _)| (c, a)).collect();
        if let JobClass::Malleable { min, max, .. } = job.spec.class {
            debug_assert!(
                job.extra_allocs.is_empty(),
                "malleable jobs are single-cluster"
            );
            let dynaco = Dynaco::new(min, max, job.spec.kind.constraint(), size);
            job.runner = Some(MRunner::new(dynaco, size));
        }
        self.collect.placed(slot, now);
        self.trace.record(now, "place", id.0 as u64, || {
            format!(
                "{} procs on {:?} (+{} components)",
                total,
                cluster,
                components.len() - 1
            )
        });
        let gen = job.gen;
        self.jobs.sync_hot(id);
        if self.staging_required(id, cluster) {
            // Bandwidth-true staging: the GRAM submission waits until
            // the input transfers land. The allocation is held through
            // the whole staging window — exactly the idle-processor
            // cost the deferred claiming policy exists to avoid.
            engine.schedule_now(Ev::TransferStart { job: id, gen });
        } else {
            let delay = self.cfg.sched.gram.batch_submit_time(total);
            self.send_ctrl(engine, id, gen, CtrlOp::Start, Some(cluster), delay, 0);
        }
        for &(c, _, _) in &components {
            self.avail_idx.mark(c);
            self.sync_baseline(c);
        }
        self.touch_util(now);
    }

    fn on_start_held(&mut self, engine: &mut Engine<Ev>, id: JobId, gen: Generation) {
        let now = engine.now();
        let mc = &self.mc;
        let Some(job) = self.jobs.get_mut(id) else {
            return;
        };
        if !job.gen.matches(gen) || job.phase != JobPhase::Starting {
            return;
        }
        job.phase = JobPhase::Running;
        job.started = Some(now);
        let primary = job
            .alloc
            .and_then(|a| {
                mc.cluster(job.cluster.expect("a starting job was placed"))
                    .alloc_size(a)
            })
            .expect("starting job holds an allocation");
        let extra: u32 = job
            .extra_allocs
            .iter()
            .map(|&(c, a)| mc.cluster(c).alloc_size(a).expect("component held"))
            .sum();
        let size = primary + extra;
        // Co-allocated jobs pay the wide-area communication penalty per
        // additional cluster spanned — the inefficiency the CM policies
        // minimize.
        let clusters_spanned = 1 + job
            .extra_allocs
            .iter()
            .map(|&(c, _)| c)
            .filter(|&c| Some(c) != job.cluster)
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        let penalty = 1.0 + self.cfg.sched.coalloc_penalty * (clusters_spanned as f64 - 1.0);
        // Heterogeneous clusters: faster nodes divide the effective work
        // scale (for co-allocated jobs the slowest spanned cluster
        // bounds the rate, as in any BSP-style code).
        let speed = std::iter::once(job.cluster.expect("an executing job was placed"))
            .chain(job.extra_allocs.iter().map(|&(c, _)| c))
            .map(|c| mc.cluster(c).spec().speed_factor)
            .fold(f64::INFINITY, f64::min)
            .max(1e-6);
        job.progress = Some(appsim::Progress::start(
            now,
            size,
            job.spec.work_scale * penalty / speed,
        ));
        let slot = self.jobs.slot_of(id);
        self.jobs.sync_hot(id);
        self.collect.started(slot, now, size);
        self.trace
            .record(now, "start", id.0 as u64, || format!("size {size}"));
        self.schedule_completion(engine, id);
        self.schedule_initiative(engine, id);
    }

    fn schedule_completion(&mut self, engine: &mut Engine<Ev>, id: JobId) {
        let track = self.cfg.sched.coalesce_timers;
        let job = self.jobs.get_mut(id).expect("running job is live");
        let remaining = job
            .progress
            .as_ref()
            .expect("running job has progress")
            .remaining_time(&job.model)
            .expect("not paused when scheduling completion");
        let gen = job.gen;
        // One extra millisecond absorbs the round-to-millisecond error of
        // `remaining` so the event never fires before the work is done.
        let pad = simcore::SimDuration::from_millis(1);
        let handle = engine.schedule_in_tracked(remaining + pad, Ev::Completion { job: id, gen });
        // Under timer coalescing the handle lets a superseding
        // reconfiguration cancel this timer in place; otherwise the
        // generation stamp alone invalidates it on delivery.
        job.completion_handle = if track { handle } else { None };
    }

    /// Cancels the job's tracked completion timer, if any — the
    /// coalescing counterpart of bumping the generation: instead of the
    /// stale `Completion` surfacing for the stamp check to discard, it
    /// never pops at all. Delivered-event counts shrink; nothing else
    /// changes. A no-op when coalescing is off (no handle is tracked).
    fn cancel_completion(engine: &mut Engine<Ev>, job: &mut Job) {
        if let Some(h) = job.completion_handle.take() {
            engine.cancel(h);
        }
    }

    // ------------------------------------------------------------------
    // Malleability: grow
    // ------------------------------------------------------------------

    /// Offers the *newly available* processors of one cluster (the idle
    /// delta above the already-offered baseline) to its running malleable
    /// jobs, respecting the local-user reserve. This is the growth
    /// procedure trigger of Section V-B; the offered amount is the
    /// paper's `growValue`.
    fn offer_new_capacity(&mut self, engine: &mut Engine<Ev>, cluster: ClusterId) {
        let idle = self.mc.cluster(cluster).idle();
        let baseline = self.idle_baseline[cluster.index()];
        let new = idle.saturating_sub(baseline);
        // Everything at or below the current idle level now counts as
        // considered, whether jobs accept it or not — declined capacity
        // is not re-offered until it is released again.
        self.idle_baseline[cluster.index()] = idle;
        let reserve_room = idle.saturating_sub(self.cfg.sched.grow_reserve);
        let grow_value = new.min(reserve_room).min(self.koala_headroom());
        if grow_value > 0 {
            self.grow_cluster(engine, cluster, grow_value);
        }
    }

    /// Runs the policy's growth procedure with an explicit `grow_value`.
    fn grow_cluster(&mut self, engine: &mut Engine<Ev>, cluster: ClusterId, grow_value: u32) {
        let now = engine.now();
        if grow_value == 0 {
            return;
        }
        let views = self.running_views(cluster, true);
        if views.is_empty() {
            return;
        }
        let jobs = &mut self.jobs;
        let mut accept = |id: JobId, offered: u32| -> u32 {
            jobs.get_mut(id)
                .expect("views contain only live jobs")
                .runner
                .as_mut()
                .expect("views contain only malleable jobs")
                .offer_grow(offered)
        };
        let outcome = self.malleability.run_grow(&views, grow_value, &mut accept);
        self.grow_messages += outcome.messages as u64;
        for op in &outcome.ops {
            self.collect.grow_op(now);
            self.trace.record(now, "grow", op.job.0 as u64, || {
                format!("accepted {} of {} on {cluster:?}", op.accepted, op.offered)
            });
            let job = self.jobs.get(op.job).expect("growing job is live");
            let alloc = job.alloc.expect("running job has an allocation");
            let gen = job.gen;
            self.mc
                .cluster_mut(cluster)
                .grow(alloc, op.accepted)
                .expect("policy bounded by idle count");
            self.avail_idx.mark(cluster);
            let delay = self.cfg.sched.gram.batch_submit_time(op.accepted);
            self.send_ctrl(engine, op.job, gen, CtrlOp::Grow, Some(cluster), delay, 0);
        }
        if !outcome.ops.is_empty() {
            self.touch_util(now);
            self.sync_baseline(cluster);
        }
    }

    /// The most processors KOALA may occupy across the whole system —
    /// the Section V-B expansion threshold: "a threshold is set over
    /// which KOALA never expands the total set of the jobs it manages".
    fn koala_cap(&self) -> u32 {
        (self.mc.total_capacity() as f64 * self.cfg.sched.koala_share).floor() as u32
    }

    /// Processors KOALA may still take (anywhere) before hitting the
    /// expansion threshold.
    fn koala_headroom(&self) -> u32 {
        self.koala_cap()
            .saturating_sub(self.mc.total_used_by_koala())
    }

    /// Clamps the offered-idle baseline after consumption so future
    /// releases are measured against the real idle level.
    fn sync_baseline(&mut self, cluster: ClusterId) {
        let idle = self.mc.cluster(cluster).idle();
        let b = &mut self.idle_baseline[cluster.index()];
        *b = (*b).min(idle);
    }

    fn on_grow_held(&mut self, engine: &mut Engine<Ev>, id: JobId, gen: Generation) {
        let now = engine.now();
        let Some(job) = self.jobs.get_mut(id) else {
            return;
        };
        if !job.gen.matches(gen) || job.phase != JobPhase::Running {
            return;
        }
        let runner = job.runner.as_mut().expect("grow on malleable job");
        if runner.submitting() == 0 {
            // Duplicate delivery (the original already consumed the
            // stubs) or the grow was aborted after a timeout — drop
            // idempotently. Unreachable with faults off: the single
            // delivery always finds its stubs in flight.
            return;
        }
        let old = runner.dynaco.size();
        let added = runner.stubs_held();
        let new = runner.held();
        debug_assert_eq!(new, old + added);
        // All resources held: the application suspends for recruitment
        // and data redistribution — the only non-overlapped cost.
        job.progress
            .as_mut()
            .expect("a growing job was running, so its progress exists")
            .pause(now, &job.model);
        job.phase = JobPhase::Reconfiguring;
        job.gen.bump(); // invalidate the pending Completion
        Self::cancel_completion(engine, job);
        let gen = job.gen;
        let cluster = job.cluster;
        self.jobs.sync_hot(id);
        let delay =
            self.cfg.sched.gram.recruit_time(added) + self.cfg.sched.reconfig.grow_cost(old, new);
        self.send_ctrl(engine, id, gen, CtrlOp::RecruitSync, cluster, delay, 0);
        if let Some(c) = cluster {
            self.open_reconfig_traffic(engine, id, c, added);
        }
    }

    // ------------------------------------------------------------------
    // Malleability: shrink (PWA)
    // ------------------------------------------------------------------

    /// PWA, Section V-B: queued job `id` cannot be placed. Pick the
    /// cluster that can yield the most processors; if shrinking running
    /// malleable jobs there can make room for the job's minimum size,
    /// mandatorily shrink. Otherwise grow running jobs instead.
    fn pwa_make_room(&mut self, engine: &mut Engine<Ev>, id: JobId) {
        let min_needed = self
            .jobs
            .get(id)
            .expect("queued job is live")
            .spec
            .class
            .min_size();
        // Evaluate each cluster's potential: live idle + in-flight
        // releases + what mandatory shrinks could still reclaim.
        let mut best: Option<(u32, usize)> = None;
        for c in 0..self.mc.len() {
            let cluster = ClusterId(c as u16);
            // Idle processors usable by KOALA (cap headroom applies);
            // shrinking running KOALA jobs frees headroom 1:1, so the
            // shrinkable amount is usable in full.
            let usable_idle = self.mc.cluster(cluster).idle().min(self.koala_headroom());
            let shrinkable: u32 = self
                .running_views(cluster, false)
                .iter()
                .map(|v| v.size - v.min)
                .sum();
            let potential = usable_idle + self.pending_release[c] + shrinkable;
            if best.is_none_or(|(b, _)| potential > b) {
                best = Some((potential, c));
            }
        }
        let Some((potential, c)) = best else {
            return;
        };
        let cluster = ClusterId(c as u16);
        if potential < min_needed {
            // "If it is however impossible to get enough available
            // processors … then the running malleable jobs are
            // considered for growing."
            for ci in 0..self.mc.len() {
                self.offer_new_capacity(engine, ClusterId(ci as u16));
            }
            return;
        }
        let covered =
            self.mc.cluster(cluster).idle().min(self.koala_headroom()) + self.pending_release[c];
        if covered >= min_needed {
            return; // in-flight releases will make room; just wait.
        }
        let shortfall = min_needed - covered;
        self.shrink_cluster(engine, cluster, shortfall);
    }

    /// Runs the policy's mandatory-shrink procedure on one cluster.
    fn shrink_cluster(&mut self, engine: &mut Engine<Ev>, cluster: ClusterId, value: u32) {
        let now = engine.now();
        let views = self.running_views(cluster, false);
        if views.is_empty() || value == 0 {
            return;
        }
        let jobs = &mut self.jobs;
        let mut accept = |id: JobId, requested: u32| -> u32 {
            jobs.get_mut(id)
                .expect("views contain only live jobs")
                .runner
                .as_mut()
                .expect("views contain only malleable jobs")
                .request_shrink(requested, true)
        };
        let outcome = self.malleability.run_shrink(&views, value, &mut accept);
        self.shrink_messages += outcome.messages as u64;
        for op in &outcome.ops {
            self.collect.shrink_op(now);
            self.trace.record(now, "shrink", op.job.0 as u64, || {
                format!(
                    "releasing {} of {} requested on {cluster:?}",
                    op.released, op.requested
                )
            });
            self.pending_release[cluster.index()] += op.released;
            let job = self.jobs.get_mut(op.job).expect("shrinking job is live");
            let runner = job
                .runner
                .as_ref()
                .expect("shrink ops target only malleable jobs");
            let old = runner.dynaco.size();
            let new = old - op.released;
            job.progress
                .as_mut()
                .expect("a shrinking job was running, so its progress exists")
                .pause(now, &job.model);
            job.phase = JobPhase::Reconfiguring;
            job.gen.bump();
            Self::cancel_completion(engine, job);
            let gen = job.gen;
            self.jobs.sync_hot(op.job);
            let delay =
                self.cfg.sched.gram.message_latency + self.cfg.sched.reconfig.shrink_cost(old, new);
            self.send_ctrl(
                engine,
                op.job,
                gen,
                CtrlOp::ShrinkSync,
                Some(cluster),
                delay,
                0,
            );
            self.open_reconfig_traffic(engine, op.job, cluster, op.released);
        }
    }

    fn on_sync_done(&mut self, engine: &mut Engine<Ev>, id: JobId, gen: Generation, grow: bool) {
        let now = engine.now();
        let Some(job) = self.jobs.get_mut(id) else {
            return;
        };
        if !job.gen.matches(gen) || job.phase != JobPhase::Reconfiguring {
            return;
        }
        let runner = job
            .runner
            .as_mut()
            .expect("reconfiguring implies malleable");
        let released = if grow {
            runner.grow_complete();
            0
        } else {
            runner.shrunk_feedback()
        };
        let new_size = runner.dynaco.size();
        let progress = job.progress.as_mut().expect("running job");
        progress.resize(now, new_size, &job.model);
        progress.resume(now, &job.model);
        job.phase = JobPhase::Running;
        self.jobs.sync_hot(id);
        self.trace
            .record(now, "resume", id.0 as u64, || format!("size {new_size}"));
        let slot = self.jobs.slot_of(id);
        self.collect.resized(slot, now, new_size, grow);
        self.schedule_completion(engine, id);
        self.schedule_initiative(engine, id);
        if released > 0 {
            let job = self.jobs.get_mut(id).expect("job finishing a sync is live");
            let gen = job.gen;
            let cluster = job.cluster;
            job.release_since = Some(now);
            let delay = self.cfg.sched.gram.batch_release_time(released);
            self.send_ctrl(
                engine,
                id,
                gen,
                CtrlOp::Release { count: released },
                cluster,
                delay,
                0,
            );
        }
    }

    fn on_shrink_released(
        &mut self,
        engine: &mut Engine<Ev>,
        id: JobId,
        gen: Generation,
        count: u32,
    ) {
        let now = engine.now();
        let Some(job) = self.jobs.get_mut(id) else {
            return;
        };
        if !job.gen.matches(gen) {
            return;
        }
        let cluster = job.cluster.expect("a releasing job was placed");
        let alloc = job.alloc.expect("a releasing job holds its allocation");
        let runner = job
            .runner
            .as_mut()
            .expect("only malleable jobs release processors");
        if runner.releasing() == 0 {
            // Duplicate delivery, or the orphaned-allocation sweep
            // already reclaimed this batch — drop idempotently.
            // Unreachable with faults off.
            return;
        }
        runner.release_confirmed();
        job.release_since = None;
        self.mc
            .cluster_mut(cluster)
            .shrink(alloc, count)
            .expect("releasing held processors");
        self.pending_release[cluster.index()] =
            self.pending_release[cluster.index()].saturating_sub(count);
        self.touch_util(now);
        self.capacity_freed(engine, cluster);
    }

    // ------------------------------------------------------------------
    // Control-plane fault injection: lossy messaging, timeouts, retries
    // ------------------------------------------------------------------

    /// Sends one KOALA→GRAM control message: its effect event is
    /// scheduled after `delay`, subject to the fault model when one is
    /// installed.
    ///
    /// With faults **off** this is pure plumbing — the effect is
    /// scheduled directly, with no deadline event and no RNG draw, so
    /// trajectories stay bit-identical to the pre-fault-layer code (the
    /// passivity golden pins this). With faults on, the message may be
    /// lost (effect never scheduled), duplicated (effect scheduled twice;
    /// the handlers drop the second application idempotently) or delayed
    /// by jitter, and an [`Ev::CtrlTimeout`] deadline guards the
    /// operation with capped exponential backoff.
    #[allow(clippy::too_many_arguments)] // one call per message send; mirrors the op tuple
    fn send_ctrl(
        &mut self,
        engine: &mut Engine<Ev>,
        id: JobId,
        gen: Generation,
        op: CtrlOp,
        cluster: Option<ClusterId>,
        delay: SimDuration,
        attempt: u32,
    ) {
        let Some(faults) = self.faults.as_mut() else {
            engine.schedule_in(delay, op.effect(id, gen));
            return;
        };
        let outcome = faults.outcome(op.class(), cluster, engine.now());
        if outcome.delivered {
            engine.schedule_in(delay + outcome.jitter, op.effect(id, gen));
            if outcome.duplicated {
                // The duplicate is really delivered; exactly one of the
                // two arrivals applies, so the idempotent handlers are
                // guaranteed to drop the other — count it here, where
                // a drop cannot be confused with a stale-generation one.
                self.ctrl.duplicates_dropped += 1;
                engine.schedule_in(delay + outcome.dup_jitter, op.effect(id, gen));
            }
        } else {
            self.ctrl.messages_lost += 1;
        }
        let deadline = self.cfg.sched.retry.deadline_for(attempt);
        engine.schedule_in(
            deadline,
            Ev::CtrlTimeout {
                job: id,
                gen,
                op,
                attempt,
            },
        );
    }

    /// A control deadline expired. If the guarded operation completed in
    /// the meantime (the common case — deadlines are conservative), this
    /// is a no-op; otherwise the message is presumed lost and re-sent
    /// with capped exponential backoff until the attempt budget runs
    /// out, at which point the per-operation give-up policy applies.
    fn on_ctrl_timeout(
        &mut self,
        engine: &mut Engine<Ev>,
        id: JobId,
        gen: Generation,
        op: CtrlOp,
        attempt: u32,
    ) {
        let Some(job) = self.jobs.get(id) else {
            return;
        };
        if !job.gen.matches(gen) {
            return;
        }
        let pending = match op {
            CtrlOp::Start => job.phase == JobPhase::Starting,
            CtrlOp::Grow => {
                job.phase == JobPhase::Running
                    && job.runner.as_ref().is_some_and(|r| r.submitting() > 0)
            }
            CtrlOp::RecruitSync | CtrlOp::ShrinkSync => job.phase == JobPhase::Reconfiguring,
            CtrlOp::Release { .. } => job.runner.as_ref().is_some_and(|r| r.releasing() > 0),
        };
        if !pending {
            return;
        }
        self.ctrl.timeouts += 1;
        let next = attempt + 1;
        if next < self.cfg.sched.retry.max_attempts {
            self.ctrl.retries += 1;
            let (cluster, delay) = self.resend_params(id, op);
            self.send_ctrl(engine, id, gen, op, cluster, delay, next);
            return;
        }
        self.give_up(engine, id, op);
    }

    /// Destination cluster and GRAM latency of a re-send — a pure
    /// function of the job's current state (re-driving a sync is a
    /// single control message; batch sends pay the batch latency again).
    fn resend_params(&self, id: JobId, op: CtrlOp) -> (Option<ClusterId>, SimDuration) {
        let job = self.jobs.get(id).expect("pending op implies a live job");
        let gram = &self.cfg.sched.gram;
        let delay = match op {
            CtrlOp::Start => {
                let primary = job
                    .cluster
                    .zip(job.alloc)
                    .and_then(|(c, a)| self.mc.cluster(c).alloc_size(a))
                    .unwrap_or(0);
                let extra: u32 = job
                    .extra_allocs
                    .iter()
                    .filter_map(|&(c, a)| self.mc.cluster(c).alloc_size(a))
                    .sum();
                gram.batch_submit_time(primary + extra)
            }
            CtrlOp::Grow => {
                gram.batch_submit_time(job.runner.as_ref().map_or(0, |r| r.submitting()))
            }
            CtrlOp::RecruitSync | CtrlOp::ShrinkSync => gram.message_latency,
            CtrlOp::Release { count } => gram.batch_release_time(count),
        };
        (job.cluster, delay)
    }

    /// The attempt budget of a control operation is exhausted: degrade
    /// gracefully instead of blocking forever.
    ///
    /// * `Start` — the GRAM batch never ran: surrender the allocation,
    ///   re-queue the job and charge a failed placement try.
    /// * `Grow` — the stub batch never ran: abort the grow and return
    ///   the stub processors to the cluster; the job keeps running at
    ///   its old size.
    /// * `RecruitSync` / `ShrinkSync` — the sync signal is lost, but
    ///   both endpoints hold the state to finish locally:
    ///   force-complete the reconfiguration (a late duplicate is dropped
    ///   idempotently).
    /// * `Release` — stop retrying; the orphaned-allocation sweep
    ///   reclaims the batch after the grace window, so nodes never leak.
    fn give_up(&mut self, engine: &mut Engine<Ev>, id: JobId, op: CtrlOp) {
        let now = engine.now();
        match op {
            CtrlOp::Start => {
                let job = self
                    .jobs
                    .get_mut(id)
                    .expect("pending op implies a live job");
                let cluster = job.cluster.take().expect("a starting job was placed");
                let alloc = job
                    .alloc
                    .take()
                    .expect("a starting job holds its allocation");
                let extras = std::mem::take(&mut job.extra_allocs);
                job.runner = None;
                job.started = None;
                job.pending_claim = None;
                job.phase = JobPhase::Queued;
                job.gen.bump(); // orphan any in-flight duplicate StartHeld
                self.jobs.sync_hot(id);
                self.trace.record(now, "ctrl-requeue", id.0 as u64, || {
                    "start submission timed out".to_string()
                });
                self.mc
                    .cluster_mut(cluster)
                    .release(alloc)
                    .expect("surrendered allocation was held");
                let mut freed = vec![cluster];
                for (c, a) in extras {
                    self.mc
                        .cluster_mut(c)
                        .release(a)
                        .expect("surrendered component was held");
                    if !freed.contains(&c) {
                        freed.push(c);
                    }
                }
                self.queue.push_back(id);
                self.fail_try(id);
                self.touch_util(now);
                for c in freed {
                    self.capacity_freed(engine, c);
                }
            }
            CtrlOp::Grow => {
                let job = self
                    .jobs
                    .get_mut(id)
                    .expect("pending op implies a live job");
                let cluster = job.cluster.expect("a growing job was placed");
                let alloc = job.alloc.expect("a growing job holds its allocation");
                let runner = job.runner.as_mut().expect("grow implies malleable");
                let stubs = runner.submitting();
                runner.abort_grow();
                self.trace.record(now, "ctrl-abort-grow", id.0 as u64, || {
                    format!("{stubs} stubs timed out")
                });
                if stubs > 0 {
                    self.mc
                        .cluster_mut(cluster)
                        .shrink(alloc, stubs)
                        .expect("stub processors were held");
                }
                self.touch_util(now);
                self.capacity_freed(engine, cluster);
            }
            CtrlOp::RecruitSync | CtrlOp::ShrinkSync => {
                let grow = op == CtrlOp::RecruitSync;
                self.trace.record(now, "ctrl-force-sync", id.0 as u64, || {
                    format!(
                        "{} sync timed out; completing locally",
                        if grow { "grow" } else { "shrink" }
                    )
                });
                let gen = self
                    .jobs
                    .get(id)
                    .expect("pending op implies a live job")
                    .gen;
                self.on_sync_done(engine, id, gen, grow);
            }
            CtrlOp::Release { .. } => {
                // Keep the batch earmarked; the orphaned-allocation
                // sweep reclaims it after the grace window.
                self.trace
                    .record(now, "ctrl-release-lost", id.0 as u64, String::new);
            }
        }
    }

    /// Periodic orphaned-allocation sweep: a release batch still pending
    /// past the grace window lost its message *and* its retries — the
    /// processors would leak silently without this backstop. Reclaim
    /// locally, exactly as a delivered [`Ev::ShrinkReleased`] would.
    fn on_orphan_sweep(&mut self, engine: &mut Engine<Ev>) {
        let now = engine.now();
        let grace = self.cfg.sched.retry.orphan_grace;
        let mut orphans: Vec<JobId> = Vec::new();
        for j in self.jobs.iter_live() {
            let stuck = j
                .release_since
                .is_some_and(|since| now.saturating_since(since) >= grace)
                && j.runner.as_ref().is_some_and(|r| r.releasing() > 0);
            if stuck {
                orphans.push(j.id);
            }
        }
        for id in orphans {
            let job = self.jobs.get_mut(id).expect("iterated live above");
            let cluster = job.cluster.expect("a releasing job was placed");
            let alloc = job.alloc.expect("a releasing job holds its allocation");
            let runner = job.runner.as_mut().expect("only malleable jobs release");
            let count = runner.releasing();
            runner.release_confirmed();
            job.release_since = None;
            self.trace.record(now, "ctrl-reclaim", id.0 as u64, || {
                format!("{count} orphaned processors on {cluster:?}")
            });
            self.mc
                .cluster_mut(cluster)
                .shrink(alloc, count)
                .expect("orphaned processors were held");
            self.pending_release[cluster.index()] =
                self.pending_release[cluster.index()].saturating_sub(count);
            self.ctrl.reclaimed_allocations += u64::from(count);
            self.touch_util(now);
            self.capacity_freed(engine, cluster);
        }
        if !self.done() {
            engine.schedule_in(self.cfg.sched.retry.orphan_sweep_period, Ev::OrphanSweep);
        }
    }

    // ------------------------------------------------------------------
    // Completion
    // ------------------------------------------------------------------

    fn on_completion(&mut self, engine: &mut Engine<Ev>, id: JobId, gen: Generation) {
        let now = engine.now();
        let slot = match self.jobs.get(id) {
            Some(_) => self.jobs.slot_of(id),
            None => return,
        };
        let job = self.jobs.get_mut(id).expect("checked live above");
        if !job.gen.matches(gen) || job.phase != JobPhase::Running {
            return;
        }
        if let Some(p) = job.progress.as_mut() {
            p.advance(now, &job.model);
            debug_assert!(p.is_complete(), "completion event fired early");
        }
        let cluster = job.cluster.expect("a completing job was placed");
        let alloc = job
            .alloc
            .take()
            .expect("a completing job holds its allocation");
        let extras = std::mem::take(&mut job.extra_allocs);
        // Clean up any in-flight malleability state: pending stubs are
        // part of the allocation and go back with it; a pending release
        // pipeline is cancelled.
        if let Some(runner) = job.runner.as_mut() {
            runner.abort_grow();
            let in_release = runner.releasing();
            if in_release > 0 {
                self.pending_release[cluster.index()] =
                    self.pending_release[cluster.index()].saturating_sub(in_release);
                runner.release_confirmed();
            }
        }
        job.release_since = None;
        job.phase = JobPhase::Completed;
        job.gen.bump(); // invalidate every remaining event for this job
                        // This very event was the tracked completion timer: drop the
                        // handle without an engine cancel (it already popped).
        job.completion_handle = None;
        self.jobs.sync_hot(id);
        self.trace.record(now, "complete", id.0 as u64, String::new);
        self.collect.completed(slot, now);
        // Terminal: the slab drops the job in streaming mode, bounding
        // live memory to the in-flight job count.
        self.jobs.retire(id);
        self.mc
            .cluster_mut(cluster)
            .release(alloc)
            .expect("completed job held an allocation");
        let mut freed_clusters = vec![cluster];
        for (c, a) in extras {
            self.mc
                .cluster_mut(c)
                .release(a)
                .expect("completed job held all its components");
            if !freed_clusters.contains(&c) {
                freed_clusters.push(c);
            }
        }
        self.touch_util(now);
        for c in freed_clusters {
            self.capacity_freed(engine, c);
        }
    }

    /// KOALA-visible capacity change: trigger job management
    /// (Section V-B).
    fn capacity_freed(&mut self, engine: &mut Engine<Ev>, cluster: ClusterId) {
        // Release-side funnel: every "processors came back" path lands
        // here with the exact cluster, so one mark covers completion,
        // requeue, crash-survivor release, orphan reclaim, shrink
        // confirmation, node restore and autoscale grow.
        self.avail_idx.mark(cluster);
        match self.cfg.sched.approach {
            Approach::Pra => {
                // Running applications take precedence; the queue gets
                // whatever they decline.
                self.offer_new_capacity(engine, cluster);
                self.scan_queue(engine);
            }
            Approach::Pwa => {
                // Waiting applications take precedence: scan first; only
                // newly freed capacity no waiting job claims goes to the
                // running jobs.
                self.scan_queue(engine);
                if self.queue.is_empty() {
                    self.offer_new_capacity(engine, cluster);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Background load
    // ------------------------------------------------------------------

    fn on_bg_arrival(&mut self, engine: &mut Engine<Ev>, cluster: ClusterId) {
        let now = engine.now();
        let sample = self.cfg.background.sample_job(&mut self.bg_rng);
        self.next_bg_local += 1;
        let lrm = self.mc.lrm_mut(cluster);
        let job = LocalJob {
            id: multicluster::LocalJobId(self.next_bg_local),
            size: sample.size,
            duration: sample.duration,
            submitted: now,
        };
        match lrm.submit_local(job) {
            SubmitOutcome::Started(alloc) => {
                engine.schedule_in(sample.duration, Ev::BgComplete { cluster, alloc });
                self.touch_util(now);
                self.sync_baseline(cluster);
            }
            SubmitOutcome::Queued | SubmitOutcome::Impossible => {}
        }
        let cap = self.mc.cluster(cluster).capacity();
        if let Some(gap) = self
            .cfg
            .background
            .sample_interarrival_for(&mut self.bg_rng, cap)
        {
            engine.schedule_in(gap, Ev::BgArrival { cluster });
        }
    }

    fn on_bg_complete(&mut self, engine: &mut Engine<Ev>, cluster: ClusterId, alloc: AllocId) {
        let now = engine.now();
        let lrm = self.mc.lrm_mut(cluster);
        // A node crash may have destroyed the allocation outright (the
        // local job died with its last node) — only release what is
        // still live. Allocation ids are never reused, so a missing id
        // can only mean the crash took it.
        if lrm.cluster().alloc_size(alloc).is_some() {
            lrm.complete_local(alloc);
        }
        // FIFO restart of queued local jobs.
        for (job, alloc) in lrm.start_queued() {
            engine.schedule_in(job.duration, Ev::BgComplete { cluster, alloc });
        }
        self.touch_util(now);
        self.sync_baseline(cluster);
        // KOALA does NOT see this until its next KIS poll — the paper's
        // motivation for the polling design.
    }

    // ------------------------------------------------------------------
    // Deferred claiming (the processor claimer, Section IV-A)
    // ------------------------------------------------------------------

    /// The postponed claim fires: take the processors now. A failure
    /// (background users got there first during staging) sends the job
    /// back to the placement queue — the risk the claiming policy trades
    /// against holding processors idle through the whole staging window.
    fn on_claim(&mut self, engine: &mut Engine<Ev>, id: JobId, gen: Generation) {
        let Some(job) = self.jobs.get_mut(id) else {
            return;
        };
        if !job.gen.matches(gen) || job.phase != JobPhase::Staging {
            return;
        }
        let components = job
            .pending_claim
            .take()
            .expect("staging job has a pending claim");
        let mut got: Vec<(ClusterId, AllocId, u32)> = Vec::new();
        let mut all_ok = true;
        for &(cluster, size) in &components {
            match self
                .mc
                .cluster_mut(cluster)
                .allocate(AllocOwner::Koala(id.0 as u64), size)
            {
                Ok(alloc) => got.push((cluster, alloc, size)),
                Err(_) => {
                    all_ok = false;
                    break;
                }
            }
        }
        if all_ok {
            self.commit_placement(engine, id, got);
        } else {
            for (c, alloc, _) in got {
                self.mc.cluster_mut(c).release(alloc).expect("just claimed");
            }
            let job = self.jobs.get_mut(id).expect("staging job is live");
            job.phase = JobPhase::Queued;
            job.cluster = None;
            self.jobs.sync_hot(id);
            self.queue.push_back(id);
            self.fail_try(id);
        }
    }

    // ------------------------------------------------------------------
    // The contended network: bandwidth-true staging, reconfig traffic
    // ------------------------------------------------------------------

    /// Whether job `id` has input files that must move before it can
    /// start at `cluster`: the network layer is on, and at least one
    /// input file has no replica at the destination but a *reachable*
    /// replica elsewhere. Unreachable files never gate the start —
    /// like the catalog estimators, reachability is a ranking concern,
    /// not an admission check, and blocking forever on a marooned file
    /// would hang the job.
    fn staging_required(&self, id: JobId, cluster: ClusterId) -> bool {
        let Some(net) = self.net.as_ref() else {
            return false;
        };
        let Some(cat) = self.files.as_ref() else {
            return false;
        };
        let job = self.jobs.get(id).expect("placed job is live");
        let topo = net.flows.topology();
        job.spec.input_files.iter().any(|&f| {
            cat.meta(FileId(f)).is_some_and(|m| {
                !m.replicas.contains(&cluster)
                    && m.replicas
                        .iter()
                        .any(|&r| topo.path_bandwidth_gbps(r, cluster) > 0.0)
            })
        })
    }

    /// Opens the staging transfers of a placed job: one flow per input
    /// file missing at the destination, each from its best replica
    /// (highest uncontended path bandwidth; ties to the lowest cluster
    /// id — deterministic because replicas iterate in `BTreeSet`
    /// order). With nothing to move the job proceeds immediately.
    fn on_transfer_start(&mut self, engine: &mut Engine<Ev>, id: JobId, gen: Generation) {
        let now = engine.now();
        let Some(job) = self.jobs.get(id) else {
            return;
        };
        if !job.gen.matches(gen) || !matches!(job.phase, JobPhase::Starting | JobPhase::Staging) {
            return;
        }
        let dest = job.cluster.expect("a staging job was placed");
        let mut opened = 0u32;
        {
            let net = self
                .net
                .as_mut()
                .expect("TransferStart is only scheduled by the network layer");
            let cat = self
                .files
                .as_ref()
                .expect("the network layer installs a catalog");
            for f in job.spec.input_files.iter().map(|&f| FileId(f)) {
                let Some(meta) = cat.meta(f) else { continue };
                if meta.replicas.contains(&dest) {
                    continue;
                }
                let mut best: Option<(f64, ClusterId)> = None;
                for &r in &meta.replicas {
                    let bw = net.flows.topology().path_bandwidth_gbps(r, dest);
                    if bw <= 0.0 {
                        continue;
                    }
                    if best.is_none_or(|(b, _)| bw > b) {
                        best = Some((bw, r));
                    }
                }
                let Some((_, src)) = best else { continue };
                let (flow, scheds) = net.flows.open(now, src, dest, meta.size_gb);
                net.owners.insert(
                    flow,
                    TransferOwner {
                        job: id,
                        gen,
                        file: Some(f),
                        dest,
                    },
                );
                net.stats.transfers_opened += 1;
                net.stats.bytes_staged_gb += meta.size_gb;
                for s in scheds {
                    engine.schedule_at(
                        s.eta,
                        Ev::TransferDone {
                            transfer: s.flow,
                            gen: s.gen,
                        },
                    );
                }
                opened += 1;
            }
            if opened > 0 {
                net.staging.insert(
                    id.0,
                    StagingState {
                        pending: opened,
                        gen,
                        since: now,
                    },
                );
            }
        }
        if opened == 0 {
            self.finish_staging(engine, id);
        } else {
            self.trace.record(now, "stage", id.0 as u64, || {
                format!("{opened} transfers to {dest:?}")
            });
        }
    }

    /// A transfer's completion estimate fires. Stale estimates (the
    /// flow was rescheduled by a fair-share change since) are dropped
    /// by the flow generation; a real completion registers the new
    /// replica, feeds the transfer-time stream, and — when it was the
    /// job's last pending transfer — resumes the job's start path.
    fn on_transfer_done(&mut self, engine: &mut Engine<Ev>, transfer: u64, gen: u64) {
        let now = engine.now();
        let Some(net) = self.net.as_mut() else {
            return;
        };
        let Some((done, scheds)) = net.flows.complete(now, transfer, gen) else {
            return; // stale estimate
        };
        for s in scheds {
            engine.schedule_at(
                s.eta,
                Ev::TransferDone {
                    transfer: s.flow,
                    gen: s.gen,
                },
            );
        }
        let owner = net
            .owners
            .remove(&transfer)
            .expect("completed flow has an owner");
        net.stats.transfers_completed += 1;
        // The session decrement is gated on the generation pair: a
        // flow opened for an abandoned placement must not count down
        // a newer session of the same job id.
        let mut since = None;
        if owner.file.is_some() {
            if let Some(st) = net.staging.get_mut(&owner.job.0) {
                if st.gen.matches(owner.gen) {
                    st.pending -= 1;
                    if st.pending == 0 {
                        since = net.staging.remove(&owner.job.0).map(|st| st.since);
                    }
                }
            }
        }
        self.collect
            .transfer_done(now, now.saturating_since(done.opened_at).as_secs_f64());
        if let Some(f) = owner.file {
            // The data landed whether or not the job still wants it.
            if let Some(cat) = self.files.as_mut() {
                cat.add_replica(f, owner.dest);
            }
        }
        if let Some(since) = since {
            let live = self.jobs.get(owner.job).is_some_and(|j| {
                j.gen.matches(owner.gen)
                    && matches!(j.phase, JobPhase::Starting | JobPhase::Staging)
            });
            if live {
                self.collect
                    .staging_delayed(now, now.saturating_since(since).as_secs_f64());
                self.finish_staging(engine, owner.job);
            }
        }
    }

    /// All of a job's staging transfers have landed: resume the start
    /// path. Immediate-claiming jobs (phase `Starting`, allocation
    /// already held) send the GRAM batch now; deferred-claiming jobs
    /// (phase `Staging`, nothing held) claim their processors now —
    /// under measured transfers the claim fires exactly when the data
    /// is in place.
    fn finish_staging(&mut self, engine: &mut Engine<Ev>, id: JobId) {
        let Some(job) = self.jobs.get(id) else {
            return;
        };
        let gen = job.gen;
        match job.phase {
            JobPhase::Starting => {
                let (cluster, delay) = self.resend_params(id, CtrlOp::Start);
                self.send_ctrl(engine, id, gen, CtrlOp::Start, cluster, delay, 0);
            }
            JobPhase::Staging => engine.schedule_now(Ev::Claim { job: id, gen }),
            _ => {}
        }
    }

    /// Opens the redistribution traffic of a reconfiguration on the
    /// job's site access link (`reconfig_gb_per_proc` × processors
    /// moved). Nothing waits on this flow — the job pays its
    /// suspension through the [`crate::config::ReconfigCost`] model as
    /// before — but the flow contends with staging transfers crossing
    /// the same link, which is the coupling the knob buys.
    fn open_reconfig_traffic(
        &mut self,
        engine: &mut Engine<Ev>,
        id: JobId,
        cluster: ClusterId,
        procs: u32,
    ) {
        let Some(net) = self.net.as_mut() else { return };
        if net.reconfig_gb_per_proc <= 0.0 || procs == 0 {
            return;
        }
        let now = engine.now();
        let gen = match self.jobs.get(id) {
            Some(j) => j.gen,
            None => return,
        };
        let (link, latency) = {
            let topo = net.flows.topology();
            let link = topo.access_link(cluster);
            (link, topo.links()[link.index()].latency)
        };
        let size = net.reconfig_gb_per_proc * procs as f64;
        let (flow, scheds) = net.flows.open_on(now, vec![link], latency, size);
        net.owners.insert(
            flow,
            TransferOwner {
                job: id,
                gen,
                file: None,
                dest: cluster,
            },
        );
        net.stats.transfers_opened += 1;
        net.stats.reconfig_transfers += 1;
        for s in scheds {
            engine.schedule_at(
                s.eta,
                Ev::TransferDone {
                    transfer: s.flow,
                    gen: s.gen,
                },
            );
        }
    }

    /// Finalizes the network tallies: drains link busy-time up to the
    /// end of the run and derives the busy-fraction denominator
    /// (`makespan × links`). Zero everything without a network layer.
    fn final_net_stats(&mut self, now: SimTime) -> NetStats {
        match self.net.as_mut() {
            Some(n) => {
                n.flows.advance(now);
                let mut s = n.stats;
                s.link_busy_s = n.flows.busy_seconds();
                s.link_span_s = now.as_secs_f64() * n.flows.link_count() as f64;
                s
            }
            None => NetStats::default(),
        }
    }

    // ------------------------------------------------------------------
    // Application-initiated growth (Section VIII extension)
    // ------------------------------------------------------------------

    /// Schedules the job's pending grow initiative, if any, for the
    /// instant its progress will cross the configured boundary. Called
    /// whenever the job (re)enters steady execution; the generation
    /// stamp invalidates it on the next reconfiguration.
    fn schedule_initiative(&mut self, engine: &mut Engine<Ev>, id: JobId) {
        let job = self.jobs.get(id).expect("running job is live");
        let Some(gi) = job.spec.initiative else {
            return;
        };
        if job.initiative_fired {
            return;
        }
        let Some(progress) = job.progress.as_ref() else {
            return;
        };
        if progress.done() >= gi.at_progress {
            engine.schedule_now(Ev::AppGrowRequest {
                job: id,
                gen: job.gen,
            });
            return;
        }
        // Time until the boundary at the current rate: the remaining
        // fraction scaled by the full-work time at the current size.
        let Some(full) = progress.remaining_time(&job.model) else {
            return;
        };
        let frac = (gi.at_progress - progress.done()) / (1.0 - progress.done()).max(1e-12);
        let delay = simcore::SimDuration::from_secs_f64(full.as_secs_f64() * frac);
        engine.schedule_in(
            delay,
            Ev::AppGrowRequest {
                job: id,
                gen: job.gen,
            },
        );
    }

    /// The application asks for more processors (voluntary from the
    /// scheduler's side: it grants only what is free under the reserve
    /// and the expansion threshold, never shrinking other jobs — the
    /// conservative answer to the design question raised in Section
    /// VIII).
    fn on_app_grow_request(&mut self, engine: &mut Engine<Ev>, id: JobId, gen: Generation) {
        let now = engine.now();
        let Some(job) = self.jobs.get_mut(id) else {
            return;
        };
        if !job.gen.matches(gen) || job.phase != JobPhase::Running || job.initiative_fired {
            return;
        }
        job.initiative_fired = true;
        let Some(gi) = job.spec.initiative else {
            return;
        };
        let cluster = job.cluster.expect("running job placed");
        let idle = self.mc.cluster(cluster).idle();
        let grant = gi
            .extra
            .min(idle.saturating_sub(self.cfg.sched.grow_reserve))
            .min(self.koala_headroom());
        if grant == 0 {
            return;
        }
        let job = self.jobs.get_mut(id).expect("running job is live");
        let Some(runner) = job.runner.as_mut() else {
            return;
        };
        self.grow_messages += 1;
        let accepted = runner.offer_grow(grant);
        if accepted == 0 {
            return;
        }
        self.collect.grow_op(now);
        let alloc = job.alloc.expect("running job allocated");
        let gen = job.gen;
        self.mc
            .cluster_mut(cluster)
            .grow(alloc, accepted)
            .expect("bounded by idle");
        self.avail_idx.mark(cluster);
        let delay = self.cfg.sched.gram.batch_submit_time(accepted);
        self.send_ctrl(engine, id, gen, CtrlOp::Grow, Some(cluster), delay, 0);
        self.touch_util(now);
        self.sync_baseline(cluster);
    }

    // ------------------------------------------------------------------
    // Availability variation (node withdrawal / restore)
    // ------------------------------------------------------------------

    fn on_node_withdraw(&mut self, engine: &mut Engine<Ev>, cluster: ClusterId, count: u32) {
        let now = engine.now();
        self.trace
            .record(engine.now(), "withdraw", cluster.0 as u64, || {
                format!("{count} nodes requested")
            });
        let taken = self.mc.cluster_mut(cluster).withdraw_free(count);
        if taken > 0 {
            self.avail_idx.mark(cluster);
            self.sync_baseline(cluster);
            self.touch_util(now);
        }
        let remaining = count - taken;
        if remaining == 0 {
            return;
        }
        // Not enough free nodes: reclaim from running malleable jobs via
        // the configured policy (mandatory shrinks), then retry once the
        // releases have landed.
        let shrinkable: u32 = self
            .running_views(cluster, false)
            .iter()
            .map(|v| v.size - v.min)
            .sum();
        if shrinkable == 0 && self.pending_release[cluster.index()] == 0 {
            // Nothing left to reclaim without killing rigid jobs; the
            // withdrawal stays partial (documented behaviour).
            return;
        }
        self.shrink_cluster(engine, cluster, remaining.min(shrinkable));
        engine.schedule_in(
            simcore::SimDuration::from_secs(30),
            Ev::NodeWithdraw {
                cluster,
                count: remaining,
            },
        );
    }

    fn on_node_restore(&mut self, engine: &mut Engine<Ev>, cluster: ClusterId, count: u32) {
        let now = engine.now();
        let restored = self.mc.cluster_mut(cluster).restore(count);
        if restored > 0 {
            self.touch_util(now);
            // Restored nodes are newly available processors: the
            // malleability manager reacts exactly as for any release.
            self.capacity_freed(engine, cluster);
        }
    }

    // ------------------------------------------------------------------
    // Elasticity: monitoring, autoscaling, node failures
    // ------------------------------------------------------------------

    /// Samples per-cluster utilization and the placement-queue depth
    /// into the report. Strictly passive: the sample drives no
    /// scheduling decision, so enabling monitoring never perturbs the
    /// trajectory.
    fn on_monitor_sample(&mut self, engine: &mut Engine<Ev>) {
        let now = engine.now();
        let utilization = self.mc.clusters().map(|c| {
            let cap = c.capacity();
            if cap == 0 {
                0.0
            } else {
                f64::from(c.used()) / f64::from(cap)
            }
        });
        self.collect
            .monitor_sample(now, utilization, self.queue.len());
        if !self.done() {
            engine.schedule_in(self.cfg.elasticity.monitor_period, Ev::MonitorSample);
        }
    }

    /// One autoscaling cycle: observe every cluster, ask the policy, and
    /// schedule the non-`Hold` decisions to land after the propagation
    /// delay — by which time the observed state may be stale.
    fn on_autoscale_cycle(&mut self, engine: &mut Engine<Ev>) {
        let Some(scaler) = self.autoscaler.as_deref() else {
            return;
        };
        let delay = self.cfg.elasticity.autoscale_delay;
        let queue_depth = self.queue.len();
        for (i, c) in self.mc.clusters().enumerate() {
            let obs = ClusterObservation {
                cluster: ClusterId(i as u16),
                capacity: c.capacity(),
                spec_nodes: c.spec().nodes,
                used: c.used(),
                queue_depth,
            };
            match scaler.decide(&obs) {
                ScaleDecision::Hold => {}
                ScaleDecision::Grow(count) => engine.schedule_in(
                    delay,
                    Ev::AutoscaleApply {
                        cluster: obs.cluster,
                        grow: true,
                        count,
                    },
                ),
                ScaleDecision::Shrink(count) => engine.schedule_in(
                    delay,
                    Ev::AutoscaleApply {
                        cluster: obs.cluster,
                        grow: false,
                        count,
                    },
                ),
            }
        }
        if !self.done() {
            engine.schedule_in(self.cfg.elasticity.autoscale_period, Ev::AutoscaleCycle);
        }
    }

    /// A scale decision lands. Grow repairs down nodes (the pool ceiling
    /// is the cluster's static size); shrink withdraws free nodes only —
    /// autoscaling never kills or shrinks running jobs, that is the
    /// failure stream's (or [`Ev::NodeWithdraw`]'s) job.
    fn on_autoscale_apply(
        &mut self,
        engine: &mut Engine<Ev>,
        cluster: ClusterId,
        grow: bool,
        count: u32,
    ) {
        let now = engine.now();
        if grow {
            let restored = self.mc.cluster_mut(cluster).restore(count);
            if restored > 0 {
                self.collect.scale_op(now, true);
                self.trace.record(now, "scale-up", cluster.0 as u64, || {
                    format!("{restored} nodes")
                });
                self.touch_util(now);
                self.capacity_freed(engine, cluster);
            }
        } else {
            let taken = self.mc.cluster_mut(cluster).withdraw_free(count);
            if taken > 0 {
                self.collect.scale_op(now, false);
                self.trace.record(now, "scale-down", cluster.0 as u64, || {
                    format!("{taken} nodes")
                });
                self.avail_idx.mark(cluster);
                self.sync_baseline(cluster);
                self.touch_util(now);
            }
        }
    }

    /// Seeded node crash: take nodes (busy ones included), handle every
    /// job that lost processors per the configured
    /// [`multicluster::FailurePolicy`], and schedule the repair.
    fn on_node_crash(
        &mut self,
        engine: &mut Engine<Ev>,
        cluster: ClusterId,
        count: u32,
        repair_after: SimDuration,
    ) {
        let now = engine.now();
        let (taken, victims) = self.mc.cluster_mut(cluster).crash(count);
        if taken > 0 {
            self.avail_idx.mark(cluster);
        }
        self.trace.record(now, "crash", cluster.0 as u64, || {
            format!("{taken} nodes, {} victim allocations", victims.len())
        });
        for v in &victims {
            match v.owner {
                AllocOwner::Koala(jid) => {
                    self.crash_koala_victim(engine, JobId(jid as u32), v);
                }
                AllocOwner::Local(_) => {
                    // The background job's allocation shrank in place or
                    // vanished with its last node; `on_bg_complete`
                    // tolerates both when its completion fires.
                }
            }
        }
        if taken > 0 {
            self.sync_baseline(cluster);
            self.touch_util(now);
            engine.schedule_in(
                repair_after,
                Ev::NodeRestore {
                    cluster,
                    count: taken,
                },
            );
        }
        // Draw the next failure unconditionally — the stream is a pure
        // function of its seed, never of what this crash hit.
        if let Some(stream) = self.failures.as_mut() {
            let f = stream.next_event();
            engine.schedule_at(
                f.at,
                Ev::NodeCrash {
                    cluster: f.cluster,
                    count: f.nodes,
                    repair_after: f.repair_after,
                },
            );
        }
    }

    /// One KOALA job lost processors to a crash: release whatever
    /// survived (the remainder of the crashed allocation plus any
    /// co-allocated components elsewhere), then kill or re-queue the job
    /// per the failure policy. The work done so far is lost either way —
    /// the paper's malleable applications checkpoint nothing.
    fn crash_koala_victim(&mut self, engine: &mut Engine<Ev>, id: JobId, v: &CrashVictim) {
        let now = engine.now();
        let Some(job) = self.jobs.get(id) else {
            return;
        };
        if job.is_terminal() {
            return;
        }
        let slot = self.jobs.slot_of(id);
        let job = self.jobs.get_mut(id).expect("checked live above");
        let home = job.cluster.take();
        // Cancel any in-flight malleability state, as on completion.
        if let Some(runner) = job.runner.as_mut() {
            runner.abort_grow();
            let in_release = runner.releasing();
            if in_release > 0 {
                if let Some(c) = home {
                    self.pending_release[c.index()] =
                        self.pending_release[c.index()].saturating_sub(in_release);
                }
                runner.release_confirmed();
            }
        }
        let alloc = job.alloc.take();
        let extras = std::mem::take(&mut job.extra_allocs);
        job.runner = None;
        job.progress = None;
        job.started = None;
        job.initiative_fired = false;
        job.pending_claim = None;
        job.release_since = None;
        job.gen.bump(); // invalidate every remaining event for this job
        Self::cancel_completion(engine, job);
        match self.cfg.elasticity.failure_policy {
            FailurePolicy::Kill => {
                job.phase = JobPhase::Failed;
                self.trace.record(now, "killed", id.0 as u64, || {
                    format!("crash took {} nodes", v.lost)
                });
                self.collect.job_killed(slot);
                self.jobs.retire(id);
            }
            FailurePolicy::Requeue => {
                job.phase = JobPhase::Queued;
                self.trace.record(now, "requeue", id.0 as u64, || {
                    format!("crash took {} nodes", v.lost)
                });
                self.collect.job_requeued();
                self.queue.push_back(id);
            }
        }
        // One mirror refresh covers the `cluster.take()` above and the
        // phase write of whichever policy arm ran (a no-op for a killed
        // streaming job whose slot was just freed).
        self.jobs.sync_hot(id);
        // Release the survivors. The crashed allocation may be gone
        // entirely (`alloc_size` is `None` once its last node went
        // down); co-allocated components on other clusters are intact.
        let mut freed: Vec<ClusterId> = Vec::new();
        for (c, a) in home.zip(alloc).into_iter().chain(extras) {
            if self.mc.cluster(c).alloc_size(a).is_some() {
                self.mc
                    .cluster_mut(c)
                    .release(a)
                    .expect("liveness checked above");
                if !freed.contains(&c) {
                    freed.push(c);
                }
            }
        }
        self.touch_util(now);
        for c in freed {
            self.capacity_freed(engine, c);
        }
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    /// Scheduler-side views of the malleable jobs running on `cluster`
    /// that can currently receive requests. `for_grow` filters to jobs
    /// below their maximum ("as long as at least one running malleable
    /// job can still be grown"); otherwise to jobs above their minimum.
    fn running_views(&self, cluster: ClusterId, for_grow: bool) -> Vec<RunningView> {
        #[cfg(debug_assertions)]
        self.jobs.assert_hot_coherent();
        // The struct-of-arrays columns pre-select "running on this
        // cluster" with two contiguous scans; only the (usually few)
        // survivors dereference their `Job`.
        self.jobs
            .running_slots_on(cluster)
            .filter_map(|slot| self.jobs.job_at(slot))
            .filter(|j| j.eligible_for_malleability())
            // A crash can destroy a job's allocation outright; until its
            // victim cleanup runs (later in the same event), the job
            // still looks Running but can no longer receive grow/shrink
            // requests — its allocation handle dangles.
            .filter(|j| {
                j.alloc
                    .is_some_and(|a| self.mc.cluster(cluster).alloc_size(a).is_some())
            })
            .filter_map(|j| {
                let runner = j.runner.as_ref().expect("eligible implies runner");
                let size = runner.dynaco.size();
                let (min, max) = (runner.dynaco.min(), runner.dynaco.max());
                let useful = if for_grow { size < max } else { size > min };
                useful.then_some(RunningView {
                    job: j.id,
                    started: j.started.expect("running job started"),
                    size,
                    min,
                    max,
                })
            })
            .collect()
    }

    fn touch_util(&mut self, now: SimTime) {
        self.collect.utilization(now, &self.mc);
    }

    /// Finalizes the full report.
    ///
    /// # Panics
    /// Panics in summarized mode — use [`World::finish_summary`].
    pub fn finish(mut self, engine: &Engine<Ev>) -> RunReport {
        let mut ctrl = self.ctrl;
        ctrl.leaked_allocations = u64::from(self.mc.total_used_by_koala());
        let net = self.final_net_stats(engine.now());
        self.collect.into_full().finish(
            self.cfg.name.clone(),
            self.seed,
            engine.now(),
            self.grow_messages,
            self.shrink_messages,
            self.kis.polls(),
            self.queue.total_tries(),
            self.queue.failed_submissions(),
            engine.stats().delivered,
            ctrl,
            net,
            self.trace,
        )
    }

    /// Finalizes the memory-bounded summary report.
    ///
    /// # Panics
    /// Panics in full-report mode — use [`World::finish`].
    pub fn finish_summary(mut self, engine: &Engine<Ev>) -> SummaryReport {
        let mut ctrl = self.ctrl;
        ctrl.leaked_allocations = u64::from(self.mc.total_used_by_koala());
        let net = self.final_net_stats(engine.now());
        self.collect.into_summary().finish(
            self.cfg.name.clone(),
            self.seed,
            engine.now(),
            self.grow_messages,
            self.shrink_messages,
            self.kis.polls(),
            self.queue.total_tries(),
            self.queue.failed_submissions(),
            engine.stats().delivered,
            self.jobs.peak_live() as u64,
            ctrl,
            net,
        )
    }
}

// ---------------------------------------------------------------------
// Snapshot / restore (the byte layer lives in `crate::snapshot`; the
// world-structure codec lives here, where the private fields are)
// ---------------------------------------------------------------------

use crate::snapshot::{
    config_fingerprint, fork_fingerprint, ByteReader, ByteWriter, Snapshot, SnapshotError, VERSION,
};

impl<'a> World<'a> {
    /// Captures the complete mid-run state of this world and its
    /// engine as a versioned, deterministic [`Snapshot`] — queue
    /// contents in `(time, seq)` order with the next sequence number,
    /// the job slab's runtime overlay, cluster/allocation/availability
    /// state, in-flight retry timers, open network flows, streaming
    /// accumulators and every seeded RNG position. The world is
    /// untouched; a [`World::restore`]d copy continues bit-identically.
    ///
    /// Only **summarized-mode, fixed-intake, trace-disabled** worlds
    /// can be captured (full reports hold unbounded job tables, and a
    /// job stream cannot be rewound); anything else is a typed
    /// [`SnapshotError::UnsupportedMode`].
    pub fn snapshot(&self, engine: &Engine<Ev>) -> Result<Snapshot, SnapshotError> {
        if !self.collect.is_summarized() {
            return Err(SnapshotError::UnsupportedMode(
                "full-report mode (build with World::for_seed_summarized)".into(),
            ));
        }
        if !matches!(self.intake, Intake::Fixed(_)) {
            return Err(SnapshotError::UnsupportedMode(
                "streaming intake (the job stream cannot be rewound)".into(),
            ));
        }
        if self.trace.is_enabled() {
            return Err(SnapshotError::UnsupportedMode(
                "job-lifecycle trace enabled".into(),
            ));
        }
        if self.files.is_some() && self.cfg.network.is_none() {
            return Err(SnapshotError::UnsupportedMode(
                "explicit file catalog installed via World::with_files".into(),
            ));
        }
        Ok(Snapshot {
            version: VERSION,
            seed: self.seed,
            full_fingerprint: config_fingerprint(self.cfg),
            fork_fingerprint: fork_fingerprint(self.cfg),
            body: self.encode_body(engine),
        })
    }

    /// Rebuilds a world + engine pair from a snapshot taken under the
    /// **same** configuration (full fingerprint match required).
    /// Continue with [`World::resume_to_summary`] — not
    /// [`World::run_to_summary`], which would bootstrap a second time.
    pub fn restore(
        cfg: &'a ExperimentConfig,
        snap: &Snapshot,
    ) -> Result<(World<'a>, Engine<Ev>), SnapshotError> {
        if config_fingerprint(cfg) != snap.full_fingerprint {
            return Err(SnapshotError::ConfigMismatch);
        }
        Self::rebuild(cfg, snap)
    }

    /// Forks a warmed prefix into a **different policy cell**: like
    /// [`World::restore`], but `cfg` may differ from the captured
    /// configuration in `name`, `sched.placement` and
    /// `sched.malleability` (the fork-invariant fingerprint enforces
    /// that nothing else differs). The restored world resolves the
    /// *new* policies from the registry, so the shared warmup replays
    /// once and every cell diverges only from the fork point.
    pub fn fork_with(
        cfg: &'a ExperimentConfig,
        snap: &Snapshot,
    ) -> Result<(World<'a>, Engine<Ev>), SnapshotError> {
        if fork_fingerprint(cfg) != snap.fork_fingerprint {
            return Err(SnapshotError::ConfigMismatch);
        }
        Self::rebuild(cfg, snap)
    }

    fn rebuild(
        cfg: &'a ExperimentConfig,
        snap: &Snapshot,
    ) -> Result<(World<'a>, Engine<Ev>), SnapshotError> {
        if snap.version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(snap.version));
        }
        cfg.validate()
            .map_err(|e| SnapshotError::Corrupt(format!("target configuration invalid: {e}")))?;
        let mut w = World::for_seed_summarized(cfg, snap.seed);
        let mut r = ByteReader::new(&snap.body);
        let engine = w.decode_body(&mut r)?;
        r.finish()?;
        Ok((w, engine))
    }

    fn encode_body(&self, engine: &Engine<Ev>) -> Vec<u8> {
        let mut w = ByteWriter::new();
        // --- engine ---------------------------------------------------
        let es = engine.capture_state();
        w.u64(es.now.as_millis());
        w.u64(es.horizon.as_millis());
        w.u64(es.stats.delivered);
        w.u64(es.stats.scheduled);
        w.u64(es.stats.beyond_horizon);
        w.u64(es.stats.cancelled);
        w.u8(match es.queue_impl {
            QueueImpl::Heap => 0,
            QueueImpl::Calendar => 1,
        });
        w.u64(es.next_seq);
        w.opt(es.calendar_tuning.as_ref(), |w, t| {
            w.u64(t.buckets as u64);
            w.u64(t.width_ms);
            w.u64(t.cursor_day);
            w.u64(t.pushes_since_resize as u64);
        });
        w.len(es.entries.len());
        for (t, seq, ev) in &es.entries {
            w.u64(t.as_millis());
            w.u64(*seq);
            enc_ev(&mut w, ev);
        }
        // --- world scalars --------------------------------------------
        w.u64(self.grow_messages);
        w.u64(self.shrink_messages);
        w.u64(self.arrivals_seen as u64);
        w.u64(self.next_bg_local);
        for word in self.bg_rng.state() {
            w.u64(word);
        }
        w.len(self.pending_release.len());
        for &v in &self.pending_release {
            w.u32(v);
        }
        w.len(self.idle_baseline.len());
        for &v in &self.idle_baseline {
            w.u32(v);
        }
        // --- clusters + LRMs ------------------------------------------
        w.len(self.mc.len());
        for c in 0..self.mc.len() {
            let id = ClusterId(c as u16);
            enc_cluster(&mut w, &self.mc.cluster(id).capture_state());
            enc_lrm(&mut w, &self.mc.lrm(id).capture_state());
        }
        // --- information service --------------------------------------
        let kis = self.kis.capture_state();
        w.opt(kis.visible.as_ref(), enc_info_snapshot);
        w.len(kis.in_flight.len());
        for s in &kis.in_flight {
            enc_info_snapshot(&mut w, s);
        }
        w.u64(kis.polls);
        // --- file catalog ---------------------------------------------
        w.opt(
            self.files.as_ref().map(|f| f.capture_state()).as_ref(),
            |w, cat| {
                w.len(cat.files.len());
                for (id, meta) in &cat.files {
                    w.u64(id.0);
                    w.f64(meta.size_gb);
                    w.len(meta.replicas.len());
                    for r in &meta.replicas {
                        w.u16(r.0);
                    }
                }
                w.u64(cat.next_file);
            },
        );
        // --- placement queue + availability index ---------------------
        let q = self.queue.capture_state();
        w.len(q.entries.len());
        for (job, tries) in &q.entries {
            w.u32(job.0);
            w.u32(*tries);
        }
        w.u64(q.total_tries);
        w.u64(q.failed_submissions);
        let av = self.avail_idx.capture_state();
        w.len(av.dirty.len());
        for &d in &av.dirty {
            w.bool(d);
        }
        w.u32(av.max_eff);
        w.u64(av.sum_eff);
        w.u64(av.rebuilds);
        w.u64(av.quick_rejects);
        // --- failure + control-plane fault streams --------------------
        w.opt(
            self.failures.as_ref().map(|f| f.capture_state()).as_ref(),
            |w, f| {
                for word in f.rng {
                    w.u64(word);
                }
                w.u64(f.clock.as_millis());
            },
        );
        w.opt(
            self.faults.as_ref().map(|f| f.capture_state()).as_ref(),
            |w, f| {
                w.u64(f.hash_seed);
                for s in f.seq {
                    w.u64(s);
                }
                w.len(f.channels.len());
                for ch in &f.channels {
                    for word in ch.rng {
                        w.u64(word);
                    }
                    w.u64(ch.start.as_millis());
                    w.u64(ch.end.as_millis());
                }
            },
        );
        w.u64(self.ctrl.messages_lost);
        w.u64(self.ctrl.timeouts);
        w.u64(self.ctrl.retries);
        w.u64(self.ctrl.duplicates_dropped);
        w.u64(self.ctrl.polls_lost);
        w.u64(self.ctrl.reclaimed_allocations);
        w.u64(self.ctrl.flaky_deferrals);
        w.u64(self.ctrl.leaked_allocations);
        // --- network runtime ------------------------------------------
        w.opt(self.net.as_ref(), |w, net| {
            let fs = net.flows.capture_state();
            w.len(fs.flows.len());
            for f in &fs.flows {
                w.u64(f.id);
                w.len(f.route.len());
                for l in &f.route {
                    w.u32(l.0);
                }
                w.f64(f.size_gb);
                w.f64(f.remaining_gb);
                w.f64(f.rate_gbps);
                w.u64(f.gen);
                w.u64(f.latency.as_millis());
                w.u64(f.opened_at.as_millis());
            }
            w.u64(fs.next_flow);
            w.len(fs.busy_s.len());
            for &b in &fs.busy_s {
                w.f64(b);
            }
            w.u64(fs.last_update.as_millis());
            let mut owners: Vec<_> = net.owners.iter().collect();
            owners.sort_by_key(|(id, _)| **id);
            w.len(owners.len());
            for (id, o) in owners {
                w.u64(*id);
                w.u32(o.job.0);
                w.u32(o.gen.raw());
                w.opt(o.file.as_ref(), |w, f| w.u64(f.0));
                w.u16(o.dest.0);
            }
            let mut staging: Vec<_> = net.staging.iter().collect();
            staging.sort_by_key(|(job, _)| **job);
            w.len(staging.len());
            for (job, s) in staging {
                w.u32(*job);
                w.u32(s.pending);
                w.u32(s.gen.raw());
                w.u64(s.since.as_millis());
            }
            w.u64(net.stats.transfers_opened);
            w.u64(net.stats.transfers_completed);
            w.u64(net.stats.reconfig_transfers);
            w.f64(net.stats.bytes_staged_gb);
            w.f64(net.stats.link_busy_s);
            w.f64(net.stats.link_span_s);
        });
        // --- job slab runtime overlay ---------------------------------
        // Specs are NOT serialized: the workload regenerates from
        // (config, seed) at restore, and only the mutable runtime
        // fields are overwritten on the rebuilt jobs.
        w.len(self.jobs.slots.len());
        for slot in &self.jobs.slots {
            let job = slot.as_ref().expect("fixed slabs keep every slot");
            enc_job(&mut w, job);
        }
        w.u64(self.jobs.live as u64);
        w.u64(self.jobs.peak_live as u64);
        // --- streaming collector --------------------------------------
        let Collector::Summary(c) = &self.collect else {
            unreachable!("snapshot() gates on summarized mode");
        };
        enc_collector(&mut w, &c.capture_state());
        w.into_bytes()
    }

    /// Overwrites this freshly built world's state from an encoded body
    /// and returns the restored engine. `self` must come from
    /// [`World::for_seed_summarized`] under the snapshot's config/seed.
    fn decode_body(&mut self, r: &mut ByteReader<'_>) -> Result<Engine<Ev>, SnapshotError> {
        let corrupt = |what: &str| SnapshotError::Corrupt(what.into());
        // --- engine ---------------------------------------------------
        let now = SimTime::from_millis(r.u64()?);
        let horizon = SimTime::from_millis(r.u64()?);
        let stats = EngineStats {
            delivered: r.u64()?,
            scheduled: r.u64()?,
            beyond_horizon: r.u64()?,
            cancelled: r.u64()?,
        };
        let queue_impl = match r.u8()? {
            0 => QueueImpl::Heap,
            1 => QueueImpl::Calendar,
            t => return Err(SnapshotError::Corrupt(format!("queue-impl tag {t}"))),
        };
        let next_seq = r.u64()?;
        let calendar_tuning = r.opt(|r| {
            Ok(CalendarTuning {
                buckets: r.u64()? as usize,
                width_ms: r.u64()?,
                cursor_day: r.u64()?,
                pushes_since_resize: r.u64()? as usize,
            })
        })?;
        if queue_impl == QueueImpl::Calendar {
            let t = calendar_tuning
                .as_ref()
                .ok_or_else(|| corrupt("calendar snapshot without tuning"))?;
            if t.buckets < 4 || !t.buckets.is_power_of_two() || t.width_ms == 0 {
                return Err(corrupt("calendar tuning out of range"));
            }
        }
        let n_entries = r.len(17)?;
        let mut entries = Vec::with_capacity(n_entries);
        let mut prev: Option<(SimTime, u64)> = None;
        for _ in 0..n_entries {
            let t = SimTime::from_millis(r.u64()?);
            let seq = r.u64()?;
            if seq >= next_seq {
                return Err(corrupt("queue entry from the future"));
            }
            if let Some(p) = prev {
                if (t, seq) <= p {
                    return Err(corrupt("queue entries out of pop order"));
                }
            }
            prev = Some((t, seq));
            entries.push((t, seq, dec_ev(r)?));
        }
        let engine = Engine::restore_state(EngineSnapshot {
            now,
            horizon,
            stats,
            queue_impl,
            next_seq,
            entries,
            calendar_tuning,
        });
        // --- world scalars --------------------------------------------
        self.grow_messages = r.u64()?;
        self.shrink_messages = r.u64()?;
        self.arrivals_seen = r.u64()? as usize;
        self.next_bg_local = r.u64()?;
        let rng = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        self.bg_rng = SimRng::from_state(rng);
        let n_clusters = self.mc.len();
        let n = r.len(4)?;
        if n != n_clusters {
            return Err(corrupt("pending-release length"));
        }
        for i in 0..n {
            self.pending_release[i] = r.u32()?;
        }
        let n = r.len(4)?;
        if n != n_clusters {
            return Err(corrupt("idle-baseline length"));
        }
        for i in 0..n {
            self.idle_baseline[i] = r.u32()?;
        }
        // --- clusters + LRMs ------------------------------------------
        let n = r.len(1)?;
        if n != n_clusters {
            return Err(corrupt("cluster count"));
        }
        for c in 0..n_clusters {
            let id = ClusterId(c as u16);
            let state = dec_cluster(r)?;
            self.mc
                .cluster_mut(id)
                .restore_state(state)
                .map_err(SnapshotError::Corrupt)?;
            let lrm = dec_lrm(r)?;
            self.mc.lrm_mut(id).restore_state(lrm);
        }
        // --- information service --------------------------------------
        let visible = r.opt(|r| dec_info_snapshot(r, n_clusters))?;
        let n = r.len(1)?;
        let mut in_flight = Vec::with_capacity(n);
        for _ in 0..n {
            in_flight.push(dec_info_snapshot(r, n_clusters)?);
        }
        let polls = r.u64()?;
        self.kis.restore_state(InfoState {
            visible,
            in_flight,
            polls,
        });
        // --- file catalog ---------------------------------------------
        let files = r.opt(|r| {
            let n = r.len(8)?;
            let mut files = Vec::with_capacity(n);
            for _ in 0..n {
                let id = FileId(r.u64()?);
                let size_gb = r.f64()?;
                let n_rep = r.len(2)?;
                let mut replicas = std::collections::BTreeSet::new();
                for _ in 0..n_rep {
                    replicas.insert(ClusterId(r.u16()?));
                }
                files.push((id, FileMeta { size_gb, replicas }));
            }
            Ok(FileCatalogState {
                files,
                next_file: r.u64()?,
            })
        })?;
        match (files, self.files.as_mut()) {
            (Some(state), Some(cat)) => cat.restore_state(state).map_err(SnapshotError::Corrupt)?,
            (None, None) => {}
            _ => return Err(corrupt("file-catalog presence mismatch")),
        }
        // --- placement queue + availability index ---------------------
        let n = r.len(8)?;
        let mut q_entries = Vec::with_capacity(n);
        for _ in 0..n {
            q_entries.push((JobId(r.u32()?), r.u32()?));
        }
        self.queue = PlacementQueue::from_state(crate::placement::PlacementQueueState {
            entries: q_entries,
            total_tries: r.u64()?,
            failed_submissions: r.u64()?,
        });
        let n = r.len(1)?;
        if n != n_clusters {
            return Err(corrupt("availability-index width"));
        }
        let mut dirty = Vec::with_capacity(n);
        for _ in 0..n {
            dirty.push(r.bool()?);
        }
        self.avail_idx = AvailIndex::from_state(crate::avail::AvailIndexState {
            dirty,
            max_eff: r.u32()?,
            sum_eff: r.u64()?,
            rebuilds: r.u64()?,
            quick_rejects: r.u64()?,
        });
        // --- failure + control-plane fault streams --------------------
        let failures = r.opt(|r| {
            let rng = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
            Ok(FailureStreamState {
                rng,
                clock: SimTime::from_millis(r.u64()?),
            })
        })?;
        match (failures, self.failures.as_mut()) {
            (Some(state), Some(stream)) => stream.restore_state(state),
            (None, None) => {}
            _ => return Err(corrupt("failure-stream presence mismatch")),
        }
        let faults = r.opt(|r| {
            let hash_seed = r.u64()?;
            let seq = [r.u64()?, r.u64()?, r.u64()?, r.u64()?, r.u64()?, r.u64()?];
            let n = r.len(48)?;
            let mut channels = Vec::with_capacity(n);
            for _ in 0..n {
                let rng = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
                channels.push(FlakyChannelState {
                    rng,
                    start: SimTime::from_millis(r.u64()?),
                    end: SimTime::from_millis(r.u64()?),
                });
            }
            Ok(ControlPlaneFaultsState {
                hash_seed,
                seq,
                channels,
            })
        })?;
        match (faults, self.faults.as_mut()) {
            (Some(state), Some(model)) => {
                model.restore_state(state).map_err(SnapshotError::Corrupt)?
            }
            (None, None) => {}
            _ => return Err(corrupt("control-plane fault presence mismatch")),
        }
        self.ctrl = CtrlStats {
            messages_lost: r.u64()?,
            timeouts: r.u64()?,
            retries: r.u64()?,
            duplicates_dropped: r.u64()?,
            polls_lost: r.u64()?,
            reclaimed_allocations: r.u64()?,
            flaky_deferrals: r.u64()?,
            leaked_allocations: r.u64()?,
        };
        // --- network runtime ------------------------------------------
        let has_net = r.bool()?;
        match (has_net, self.net.is_some()) {
            (true, true) => {
                let n = r.len(8)?;
                let mut flows = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = r.u64()?;
                    let n_route = r.len(4)?;
                    let mut route = Vec::with_capacity(n_route);
                    for _ in 0..n_route {
                        route.push(LinkId(r.u32()?));
                    }
                    flows.push(FlowState {
                        id,
                        route,
                        size_gb: r.f64()?,
                        remaining_gb: r.f64()?,
                        rate_gbps: r.f64()?,
                        gen: r.u64()?,
                        latency: SimDuration::from_millis(r.u64()?),
                        opened_at: SimTime::from_millis(r.u64()?),
                    });
                }
                let next_flow = r.u64()?;
                let n_busy = r.len(8)?;
                let mut busy_s = Vec::with_capacity(n_busy);
                for _ in 0..n_busy {
                    busy_s.push(r.f64()?);
                }
                let last_update = SimTime::from_millis(r.u64()?);
                let n_owners = r.len(8)?;
                let mut owners = HashMap::with_capacity(n_owners);
                for _ in 0..n_owners {
                    let id = r.u64()?;
                    let owner = TransferOwner {
                        job: JobId(r.u32()?),
                        gen: Generation::from_raw(r.u32()?),
                        file: r.opt(|r| Ok(FileId(r.u64()?)))?,
                        dest: ClusterId(r.u16()?),
                    };
                    if owners.insert(id, owner).is_some() {
                        return Err(corrupt("duplicate transfer owner"));
                    }
                }
                let n_staging = r.len(8)?;
                let mut staging = HashMap::with_capacity(n_staging);
                for _ in 0..n_staging {
                    let job = r.u32()?;
                    let state = StagingState {
                        pending: r.u32()?,
                        gen: Generation::from_raw(r.u32()?),
                        since: SimTime::from_millis(r.u64()?),
                    };
                    if staging.insert(job, state).is_some() {
                        return Err(corrupt("duplicate staging session"));
                    }
                }
                let stats = NetStats {
                    transfers_opened: r.u64()?,
                    transfers_completed: r.u64()?,
                    reconfig_transfers: r.u64()?,
                    bytes_staged_gb: r.f64()?,
                    link_busy_s: r.f64()?,
                    link_span_s: r.f64()?,
                };
                let net = self.net.as_mut().expect("presence checked");
                net.flows
                    .restore_state(FlowNetState {
                        flows,
                        next_flow,
                        busy_s,
                        last_update,
                    })
                    .map_err(SnapshotError::Corrupt)?;
                net.owners = owners;
                net.staging = staging;
                net.stats = stats;
            }
            (false, false) => {}
            _ => return Err(corrupt("network-layer presence mismatch")),
        }
        // --- job slab runtime overlay ---------------------------------
        let n = r.len(8)?;
        if n != self.jobs.slots.len() {
            return Err(corrupt("job count does not match the workload"));
        }
        for slot in 0..n {
            let job = self.jobs.slots[slot]
                .as_mut()
                .expect("fixed slabs keep every slot");
            dec_job_into(r, job)?;
            self.jobs.phases[slot] = job.phase;
            self.jobs.clusters[slot] = job.cluster;
        }
        let live = r.u64()? as usize;
        let peak_live = r.u64()? as usize;
        if live > n || peak_live > n {
            return Err(corrupt("live-job counters exceed the workload"));
        }
        self.jobs.live = live;
        self.jobs.peak_live = peak_live;
        // --- streaming collector --------------------------------------
        let cstate = dec_collector(r)?;
        self.collect = Collector::Summary(crate::report::SummaryCollector::from_state(cstate));
        Ok(engine)
    }
}

fn enc_ev(w: &mut ByteWriter, ev: &Ev) {
    match *ev {
        Ev::Arrival(i) => {
            w.u8(0);
            w.u32(i);
        }
        Ev::ArrivalBatch { first, count } => {
            w.u8(1);
            w.u32(first);
            w.u32(count);
        }
        Ev::QueueScan => w.u8(2),
        Ev::KisPoll => w.u8(3),
        Ev::StartHeld { job, gen } => {
            w.u8(4);
            w.u32(job.0);
            w.u32(gen.raw());
        }
        Ev::GrowHeld { job, gen } => {
            w.u8(5);
            w.u32(job.0);
            w.u32(gen.raw());
        }
        Ev::SyncDone { job, gen, grow } => {
            w.u8(6);
            w.u32(job.0);
            w.u32(gen.raw());
            w.bool(grow);
        }
        Ev::ShrinkReleased { job, gen, count } => {
            w.u8(7);
            w.u32(job.0);
            w.u32(gen.raw());
            w.u32(count);
        }
        Ev::Completion { job, gen } => {
            w.u8(8);
            w.u32(job.0);
            w.u32(gen.raw());
        }
        Ev::BgArrival { cluster } => {
            w.u8(9);
            w.u16(cluster.0);
        }
        Ev::BgComplete { cluster, alloc } => {
            w.u8(10);
            w.u16(cluster.0);
            w.u64(alloc.0);
        }
        Ev::NodeWithdraw { cluster, count } => {
            w.u8(11);
            w.u16(cluster.0);
            w.u32(count);
        }
        Ev::Claim { job, gen } => {
            w.u8(12);
            w.u32(job.0);
            w.u32(gen.raw());
        }
        Ev::AppGrowRequest { job, gen } => {
            w.u8(13);
            w.u32(job.0);
            w.u32(gen.raw());
        }
        Ev::NodeRestore { cluster, count } => {
            w.u8(14);
            w.u16(cluster.0);
            w.u32(count);
        }
        Ev::MonitorSample => w.u8(15),
        Ev::AutoscaleCycle => w.u8(16),
        Ev::AutoscaleApply {
            cluster,
            grow,
            count,
        } => {
            w.u8(17);
            w.u16(cluster.0);
            w.bool(grow);
            w.u32(count);
        }
        Ev::NodeCrash {
            cluster,
            count,
            repair_after,
        } => {
            w.u8(18);
            w.u16(cluster.0);
            w.u32(count);
            w.u64(repair_after.as_millis());
        }
        Ev::CtrlTimeout {
            job,
            gen,
            op,
            attempt,
        } => {
            w.u8(19);
            w.u32(job.0);
            w.u32(gen.raw());
            enc_ctrl_op(w, op);
            w.u32(attempt);
        }
        Ev::OrphanSweep => w.u8(20),
        Ev::TransferStart { job, gen } => {
            w.u8(21);
            w.u32(job.0);
            w.u32(gen.raw());
        }
        Ev::TransferDone { transfer, gen } => {
            w.u8(22);
            w.u64(transfer);
            w.u64(gen);
        }
    }
}

fn dec_ev(r: &mut ByteReader<'_>) -> Result<Ev, SnapshotError> {
    fn jg(r: &mut ByteReader<'_>) -> Result<(JobId, Generation), SnapshotError> {
        Ok((JobId(r.u32()?), Generation::from_raw(r.u32()?)))
    }
    Ok(match r.u8()? {
        0 => Ev::Arrival(r.u32()?),
        1 => Ev::ArrivalBatch {
            first: r.u32()?,
            count: r.u32()?,
        },
        2 => Ev::QueueScan,
        3 => Ev::KisPoll,
        4 => {
            let (job, gen) = jg(r)?;
            Ev::StartHeld { job, gen }
        }
        5 => {
            let (job, gen) = jg(r)?;
            Ev::GrowHeld { job, gen }
        }
        6 => {
            let (job, gen) = jg(r)?;
            Ev::SyncDone {
                job,
                gen,
                grow: r.bool()?,
            }
        }
        7 => {
            let (job, gen) = jg(r)?;
            Ev::ShrinkReleased {
                job,
                gen,
                count: r.u32()?,
            }
        }
        8 => {
            let (job, gen) = jg(r)?;
            Ev::Completion { job, gen }
        }
        9 => Ev::BgArrival {
            cluster: ClusterId(r.u16()?),
        },
        10 => Ev::BgComplete {
            cluster: ClusterId(r.u16()?),
            alloc: AllocId(r.u64()?),
        },
        11 => Ev::NodeWithdraw {
            cluster: ClusterId(r.u16()?),
            count: r.u32()?,
        },
        12 => {
            let (job, gen) = jg(r)?;
            Ev::Claim { job, gen }
        }
        13 => {
            let (job, gen) = jg(r)?;
            Ev::AppGrowRequest { job, gen }
        }
        14 => Ev::NodeRestore {
            cluster: ClusterId(r.u16()?),
            count: r.u32()?,
        },
        15 => Ev::MonitorSample,
        16 => Ev::AutoscaleCycle,
        17 => Ev::AutoscaleApply {
            cluster: ClusterId(r.u16()?),
            grow: r.bool()?,
            count: r.u32()?,
        },
        18 => Ev::NodeCrash {
            cluster: ClusterId(r.u16()?),
            count: r.u32()?,
            repair_after: SimDuration::from_millis(r.u64()?),
        },
        19 => {
            let (job, gen) = jg(r)?;
            Ev::CtrlTimeout {
                job,
                gen,
                op: dec_ctrl_op(r)?,
                attempt: r.u32()?,
            }
        }
        20 => Ev::OrphanSweep,
        21 => {
            let (job, gen) = jg(r)?;
            Ev::TransferStart { job, gen }
        }
        22 => Ev::TransferDone {
            transfer: r.u64()?,
            gen: r.u64()?,
        },
        t => return Err(SnapshotError::Corrupt(format!("event tag {t}"))),
    })
}

fn enc_ctrl_op(w: &mut ByteWriter, op: CtrlOp) {
    match op {
        CtrlOp::Start => w.u8(0),
        CtrlOp::Grow => w.u8(1),
        CtrlOp::RecruitSync => w.u8(2),
        CtrlOp::ShrinkSync => w.u8(3),
        CtrlOp::Release { count } => {
            w.u8(4);
            w.u32(count);
        }
    }
}

fn dec_ctrl_op(r: &mut ByteReader<'_>) -> Result<CtrlOp, SnapshotError> {
    Ok(match r.u8()? {
        0 => CtrlOp::Start,
        1 => CtrlOp::Grow,
        2 => CtrlOp::RecruitSync,
        3 => CtrlOp::ShrinkSync,
        4 => CtrlOp::Release { count: r.u32()? },
        t => return Err(SnapshotError::Corrupt(format!("ctrl-op tag {t}"))),
    })
}

fn enc_cluster(w: &mut ByteWriter, s: &ClusterState) {
    w.len(s.states.len());
    for st in &s.states {
        match st {
            NodeState::Free => w.u8(0),
            NodeState::Busy(a) => {
                w.u8(1);
                w.u64(a.0);
            }
            NodeState::Down => w.u8(2),
        }
    }
    w.len(s.free.len());
    for n in &s.free {
        w.u32(n.0);
    }
    w.len(s.allocs.len());
    for (id, owner, nodes) in &s.allocs {
        w.u64(id.0);
        match owner {
            AllocOwner::Koala(j) => {
                w.u8(0);
                w.u64(*j);
            }
            AllocOwner::Local(j) => {
                w.u8(1);
                w.u64(*j);
            }
        }
        w.len(nodes.len());
        for n in nodes {
            w.u32(n.0);
        }
    }
    w.u64(s.next_alloc);
    w.u32(s.down);
}

fn dec_cluster(r: &mut ByteReader<'_>) -> Result<ClusterState, SnapshotError> {
    let n = r.len(1)?;
    let mut states = Vec::with_capacity(n);
    for _ in 0..n {
        states.push(match r.u8()? {
            0 => NodeState::Free,
            1 => NodeState::Busy(AllocId(r.u64()?)),
            2 => NodeState::Down,
            t => return Err(SnapshotError::Corrupt(format!("node-state tag {t}"))),
        });
    }
    let n = r.len(4)?;
    let mut free = Vec::with_capacity(n);
    for _ in 0..n {
        free.push(NodeId(r.u32()?));
    }
    let n = r.len(8)?;
    let mut allocs = Vec::with_capacity(n);
    for _ in 0..n {
        let id = AllocId(r.u64()?);
        let owner = match r.u8()? {
            0 => AllocOwner::Koala(r.u64()?),
            1 => AllocOwner::Local(r.u64()?),
            t => return Err(SnapshotError::Corrupt(format!("alloc-owner tag {t}"))),
        };
        let n_nodes = r.len(4)?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            nodes.push(NodeId(r.u32()?));
        }
        allocs.push((id, owner, nodes));
    }
    Ok(ClusterState {
        states,
        free,
        allocs,
        next_alloc: r.u64()?,
        down: r.u32()?,
    })
}

fn enc_lrm(w: &mut ByteWriter, s: &LrmState) {
    w.len(s.queue.len());
    for j in &s.queue {
        w.u64(j.id.0);
        w.u32(j.size);
        w.u64(j.duration.as_millis());
        w.u64(j.submitted.as_millis());
    }
    w.u64(s.next_local);
    w.u64(s.completed_local);
}

fn dec_lrm(r: &mut ByteReader<'_>) -> Result<LrmState, SnapshotError> {
    let n = r.len(28)?;
    let mut queue = Vec::with_capacity(n);
    for _ in 0..n {
        queue.push(LocalJob {
            id: LocalJobId(r.u64()?),
            size: r.u32()?,
            duration: SimDuration::from_millis(r.u64()?),
            submitted: SimTime::from_millis(r.u64()?),
        });
    }
    Ok(LrmState {
        queue,
        next_local: r.u64()?,
        completed_local: r.u64()?,
    })
}

fn enc_info_snapshot(w: &mut ByteWriter, s: &InfoSnapshot) {
    w.u64(s.taken_at.as_millis());
    for col in [&s.idle, &s.capacity, &s.used_by_koala, &s.used_by_local] {
        w.len(col.len());
        for &v in col {
            w.u32(v);
        }
    }
}

fn dec_info_snapshot(
    r: &mut ByteReader<'_>,
    n_clusters: usize,
) -> Result<InfoSnapshot, SnapshotError> {
    let taken_at = SimTime::from_millis(r.u64()?);
    let mut cols: [Vec<u32>; 4] = Default::default();
    for col in &mut cols {
        let n = r.len(4)?;
        if n != n_clusters {
            return Err(SnapshotError::Corrupt("info-snapshot width".into()));
        }
        col.reserve(n);
        for _ in 0..n {
            col.push(r.u32()?);
        }
    }
    let [idle, capacity, used_by_koala, used_by_local] = cols;
    Ok(InfoSnapshot {
        taken_at,
        idle,
        capacity,
        used_by_koala,
        used_by_local,
    })
}

fn enc_job(w: &mut ByteWriter, job: &Job) {
    w.u8(match job.phase {
        JobPhase::Queued => 0,
        JobPhase::Staging => 1,
        JobPhase::Starting => 2,
        JobPhase::Running => 3,
        JobPhase::Reconfiguring => 4,
        JobPhase::Completed => 5,
        JobPhase::Failed => 6,
    });
    w.opt(job.cluster.as_ref(), |w, c| w.u16(c.0));
    w.opt(job.alloc.as_ref(), |w, a| w.u64(a.0));
    w.len(job.extra_allocs.len());
    for (c, a) in &job.extra_allocs {
        w.u16(c.0);
        w.u64(a.0);
    }
    w.opt(job.runner.as_ref(), |w, runner| {
        let d = &runner.dynaco;
        w.u32(d.min());
        w.u32(d.max());
        match d.constraint() {
            SizeConstraint::Any => w.u8(0),
            SizeConstraint::PowerOfTwo => w.u8(1),
            SizeConstraint::MultipleOf(k) => {
                w.u8(2);
                w.u32(k);
            }
        }
        w.u32(d.size());
        match d.phase() {
            DynacoPhase::Steady => w.u8(0),
            DynacoPhase::Growing { target } => {
                w.u8(1);
                w.u32(target);
            }
            DynacoPhase::Shrinking { target } => {
                w.u8(2);
                w.u32(target);
            }
        }
        w.u32(runner.held());
        w.u32(runner.submitting());
        w.u32(runner.releasing());
    });
    w.opt(job.progress.as_ref(), |w, p| {
        w.f64(p.done());
        w.u64(p.updated().as_millis());
        w.u32(p.size());
        w.bool(p.is_paused());
        w.f64(p.work_scale());
    });
    w.u32(job.gen.raw());
    w.opt(job.started.as_ref(), |w, t| w.u64(t.as_millis()));
    w.bool(job.initiative_fired);
    w.opt(job.pending_claim.as_ref(), |w, claim| {
        w.len(claim.len());
        for (c, n) in claim {
            w.u16(c.0);
            w.u32(*n);
        }
    });
    w.opt(job.release_since.as_ref(), |w, t| w.u64(t.as_millis()));
    w.opt(job.completion_handle.as_ref(), |w, h| {
        w.u64(h.time().as_millis());
        w.u64(h.seq());
    });
}

/// Overwrites the mutable runtime fields of a freshly regenerated job
/// from the encoded overlay (the spec, model and submission time come
/// from the regenerated workload and are not in the blob).
fn dec_job_into(r: &mut ByteReader<'_>, job: &mut Job) -> Result<(), SnapshotError> {
    job.phase = match r.u8()? {
        0 => JobPhase::Queued,
        1 => JobPhase::Staging,
        2 => JobPhase::Starting,
        3 => JobPhase::Running,
        4 => JobPhase::Reconfiguring,
        5 => JobPhase::Completed,
        6 => JobPhase::Failed,
        t => return Err(SnapshotError::Corrupt(format!("job-phase tag {t}"))),
    };
    job.cluster = r.opt(|r| Ok(ClusterId(r.u16()?)))?;
    job.alloc = r.opt(|r| Ok(AllocId(r.u64()?)))?;
    let n = r.len(10)?;
    job.extra_allocs = Vec::with_capacity(n);
    for _ in 0..n {
        job.extra_allocs
            .push((ClusterId(r.u16()?), AllocId(r.u64()?)));
    }
    job.runner = r.opt(|r| {
        let min = r.u32()?;
        let max = r.u32()?;
        let constraint = match r.u8()? {
            0 => SizeConstraint::Any,
            1 => SizeConstraint::PowerOfTwo,
            2 => {
                let k = r.u32()?;
                if k == 0 {
                    return Err(SnapshotError::Corrupt("zero size multiple".into()));
                }
                SizeConstraint::MultipleOf(k)
            }
            t => return Err(SnapshotError::Corrupt(format!("constraint tag {t}"))),
        };
        let size = r.u32()?;
        let phase = match r.u8()? {
            0 => DynacoPhase::Steady,
            1 => DynacoPhase::Growing { target: r.u32()? },
            2 => DynacoPhase::Shrinking { target: r.u32()? },
            t => return Err(SnapshotError::Corrupt(format!("dynaco-phase tag {t}"))),
        };
        // Dynaco::from_parts panics on invalid parts; reject here so a
        // corrupted blob stays a typed error.
        if !(min >= 1 && min <= max && (min..=max).contains(&size) && constraint.allows(size)) {
            return Err(SnapshotError::Corrupt("dynaco parts out of range".into()));
        }
        let dynaco = Dynaco::from_parts(min, max, constraint, size, phase);
        let held = r.u32()?;
        let submitting = r.u32()?;
        let releasing = r.u32()?;
        Ok(MRunner::from_parts(dynaco, held, submitting, releasing))
    })?;
    job.progress = r.opt(|r| {
        let done = r.f64()?;
        let updated = SimTime::from_millis(r.u64()?);
        let size = r.u32()?;
        let paused = r.bool()?;
        let work_scale = r.f64()?;
        // Progress::from_parts panics on invalid parts; pre-validate.
        if !(size >= 1 && work_scale > 0.0 && (0.0..=1.0).contains(&done)) {
            return Err(SnapshotError::Corrupt("progress parts out of range".into()));
        }
        Ok(Progress::from_parts(
            done, updated, size, paused, work_scale,
        ))
    })?;
    job.gen = Generation::from_raw(r.u32()?);
    job.started = r.opt(|r| Ok(SimTime::from_millis(r.u64()?)))?;
    job.initiative_fired = r.bool()?;
    job.pending_claim = r.opt(|r| {
        let n = r.len(6)?;
        let mut claim = Vec::with_capacity(n);
        for _ in 0..n {
            claim.push((ClusterId(r.u16()?), r.u32()?));
        }
        Ok(claim)
    })?;
    job.release_since = r.opt(|r| Ok(SimTime::from_millis(r.u64()?)))?;
    job.completion_handle = r.opt(|r| {
        Ok(EventHandle::from_parts(
            SimTime::from_millis(r.u64()?),
            r.u64()?,
        ))
    })?;
    Ok(())
}

fn enc_collector(w: &mut ByteWriter, s: &crate::report::SummaryCollectorState) {
    w.u64(s.warmup.as_millis());
    w.len(s.meters.len());
    for m in &s.meters {
        w.u64(m.submitted.as_millis());
        w.opt(m.started.as_ref(), |w, t| w.u64(t.as_millis()));
        w.f64(m.size);
        w.u64(m.last_change.as_millis());
        w.f64(m.size_integral);
        w.f64(m.size_max);
    }
    w.u64(s.jobs_submitted);
    w.u64(s.jobs_completed);
    w.u64(s.jobs_failed);
    w.u64(s.grow_ops);
    w.u64(s.shrink_ops);
    w.u64(s.scale_ups);
    w.u64(s.scale_downs);
    w.u64(s.jobs_killed);
    w.u64(s.jobs_requeued);
    w.len(s.streams.len());
    for (stats, quant) in &s.streams {
        w.u64(stats.count);
        w.len(stats.partials.len());
        for &p in &stats.partials {
            w.f64(p);
        }
        w.f64(stats.w_mean);
        w.f64(stats.m2);
        w.f64(stats.min);
        w.f64(stats.max);
        w.u64(quant.seed);
        w.u64(quant.capacity as u64);
        w.u64(quant.pushed);
        w.len(quant.entries.len());
        for (pri, v) in &quant.entries {
            w.u64(*pri);
            w.f64(*v);
        }
    }
    w.u64(s.last_t.as_millis());
    w.f64(s.last_total);
    w.f64(s.last_koala);
    w.f64(s.util_integral);
    w.f64(s.util_koala_integral);
}

fn dec_collector(
    r: &mut ByteReader<'_>,
) -> Result<crate::report::SummaryCollectorState, SnapshotError> {
    use crate::report::{JobMeterState, SummaryCollectorState};
    let warmup = SimTime::from_millis(r.u64()?);
    let n = r.len(41)?;
    let mut meters = Vec::with_capacity(n);
    for _ in 0..n {
        meters.push(JobMeterState {
            submitted: SimTime::from_millis(r.u64()?),
            started: r.opt(|r| Ok(SimTime::from_millis(r.u64()?)))?,
            size: r.f64()?,
            last_change: SimTime::from_millis(r.u64()?),
            size_integral: r.f64()?,
            size_max: r.f64()?,
        });
    }
    let jobs_submitted = r.u64()?;
    let jobs_completed = r.u64()?;
    let jobs_failed = r.u64()?;
    let grow_ops = r.u64()?;
    let shrink_ops = r.u64()?;
    let scale_ups = r.u64()?;
    let scale_downs = r.u64()?;
    let jobs_killed = r.u64()?;
    let jobs_requeued = r.u64()?;
    let n = r.len(64)?;
    if n != 10 {
        return Err(SnapshotError::Corrupt("summary stream count".into()));
    }
    let mut streams = Vec::with_capacity(n);
    for _ in 0..n {
        let count = r.u64()?;
        let n_part = r.len(8)?;
        let mut partials = Vec::with_capacity(n_part);
        for _ in 0..n_part {
            partials.push(r.f64()?);
        }
        let stats = koala_metrics::StreamStatsState {
            count,
            partials,
            w_mean: r.f64()?,
            m2: r.f64()?,
            min: r.f64()?,
            max: r.f64()?,
        };
        let seed = r.u64()?;
        let capacity = r.u64()? as usize;
        let pushed = r.u64()?;
        let n_ent = r.len(16)?;
        if n_ent > capacity {
            return Err(SnapshotError::Corrupt("reservoir over capacity".into()));
        }
        let mut entries = Vec::with_capacity(n_ent);
        for _ in 0..n_ent {
            entries.push((r.u64()?, r.f64()?));
        }
        streams.push((
            stats,
            koala_metrics::StreamQuantilesState {
                seed,
                capacity,
                pushed,
                entries,
            },
        ));
    }
    Ok(SummaryCollectorState {
        warmup,
        meters,
        jobs_submitted,
        jobs_completed,
        jobs_failed,
        grow_ops,
        shrink_ops,
        scale_ups,
        scale_downs,
        jobs_killed,
        jobs_requeued,
        streams,
        last_t: SimTime::from_millis(r.u64()?),
        last_total: r.f64()?,
        last_koala: r.f64()?,
        util_integral: r.f64()?,
        util_koala_integral: r.f64()?,
    })
}

/// The multicluster substrate a configuration runs on: a uniform
/// synthetic topology when requested, else the (possibly heterogeneous)
/// DAS-3 preset.
fn topology_for(cfg: &ExperimentConfig) -> Multicluster {
    match &cfg.uniform_topology {
        Some(u) => multicluster::uniform(u.clusters, u.nodes_per_cluster),
        None if cfg.heterogeneous => multicluster::das3_heterogeneous(),
        None => das3(),
    }
}

/// Builds a run engine for `cfg`: horizon from the configuration, event
/// queue pre-sized from the workload (the bootstrap schedules one arrival
/// per job up front, so the pending-event peak is at least the job
/// count — sizing here avoids the heap growing incrementally mid-run).
pub fn engine_for(cfg: &ExperimentConfig) -> Engine<Ev> {
    let jobs = cfg
        .trace
        .as_ref()
        .map(|t| t.len())
        .unwrap_or(cfg.workload.jobs);
    let cap = jobs * 2 + 64;
    Engine::configured(
        cfg.sched.event_queue,
        cfg.horizon.map(|h| SimTime::ZERO + h),
        cap,
    )
}

/// Runs the warmup prefix of `cfg` under an explicit `seed` — bootstrap
/// plus every event strictly before `at` — and captures the resulting
/// [`Snapshot`]. The boundary event itself is left in the queue, so
/// every [`World::restore`]d or [`World::fork_with`]ed continuation
/// replays it identically.
///
/// This is the warm half of a warm-forked sweep: run it once per
/// `(workload, seed)` group, then [`fork_summary`] once per policy cell.
pub fn warm_snapshot_seeded(
    cfg: &ExperimentConfig,
    seed: u64,
    at: SimTime,
) -> Result<Snapshot, SnapshotError> {
    cfg.validate()
        .map_err(|e| SnapshotError::UnsupportedMode(format!("invalid configuration: {e}")))?;
    let mut engine = engine_for(cfg);
    let mut world = World::for_seed_summarized(cfg, seed);
    world.bootstrap(&mut engine);
    world.run_until(&mut engine, at);
    world.snapshot(&engine)
}

/// Restores `snap` under the **same** configuration it was captured
/// with and runs the tail to its [`SummaryReport`] — bit-identical to
/// the uninterrupted run.
pub fn resume_summary(
    cfg: &ExperimentConfig,
    snap: &Snapshot,
) -> Result<SummaryReport, SnapshotError> {
    let (world, mut engine) = World::restore(cfg, snap)?;
    Ok(world.resume_to_summary(&mut engine))
}

/// Forks `snap` into the (possibly different) policy cell `cfg` and
/// runs the tail to its [`SummaryReport`] — bit-identical to a cold run
/// of `cfg` under the snapshot's seed.
pub fn fork_summary(
    cfg: &ExperimentConfig,
    snap: &Snapshot,
) -> Result<SummaryReport, SnapshotError> {
    let (world, mut engine) = World::fork_with(cfg, snap)?;
    Ok(world.resume_to_summary(&mut engine))
}

/// Runs one experiment configuration to completion.
///
/// # Panics
/// Panics on an invalid configuration (see
/// [`ExperimentConfig::validate`]) — experiments should fail loudly, not
/// produce subtly wrong numbers. Use [`try_run_experiment`] to handle
/// configuration errors as values instead.
pub fn run_experiment(cfg: &ExperimentConfig) -> RunReport {
    run_experiment_seeded(cfg, cfg.seed)
}

/// [`run_experiment`] with configuration errors surfaced as a typed
/// [`ConfigError`] instead of a panic — for callers assembling
/// configurations from untrusted input (files, CLI flags).
pub fn try_run_experiment(cfg: &ExperimentConfig) -> Result<RunReport, ConfigError> {
    try_run_experiment_seeded(cfg, cfg.seed)
}

/// Runs one configuration under an explicit `seed` without cloning the
/// configuration — the cell entry point of [`crate::parallel`].
///
/// # Panics
/// Panics on an invalid configuration, like [`run_experiment`].
pub fn run_experiment_seeded(cfg: &ExperimentConfig, seed: u64) -> RunReport {
    try_run_experiment_seeded(cfg, seed)
        .unwrap_or_else(|e| panic!("invalid experiment configuration: {e}"))
}

/// [`run_experiment_seeded`] with a `Result`-shaped error path.
pub fn try_run_experiment_seeded(
    cfg: &ExperimentConfig,
    seed: u64,
) -> Result<RunReport, ConfigError> {
    cfg.validate()?;
    let mut engine = engine_for(cfg);
    let mut world = World::for_seed(cfg, seed);
    if let Some(wf) = &cfg.warm_fork {
        world
            .use_policies(&wf.base_placement, &wf.base_malleability)
            .expect("validate() resolved the base policies");
        world.bootstrap(&mut engine);
        world.run_until(&mut engine, SimTime::ZERO + wf.at);
        world
            .use_policies(&cfg.sched.placement, &cfg.sched.malleability)
            .expect("validate() resolved the cell policies");
        Ok(world.resume_to_completion(&mut engine))
    } else {
        Ok(world.run_to_completion(&mut engine))
    }
}

/// Runs the same configuration across several seeds in parallel on the
/// work-stealing cell runner (the paper repeats every configuration 4
/// times), with [`crate::parallel::default_threads`] workers —
/// overridable via `KOALA_THREADS` or the binaries' `--threads` flag.
/// The aggregate is merged in seed order and is bit-identical to
/// [`crate::parallel::run_seeds_sequential`] for any thread count.
pub fn run_seeds(cfg: &ExperimentConfig, seeds: &[u64]) -> crate::report::MultiReport {
    crate::parallel::run_seeds_with_threads(cfg, seeds, crate::parallel::default_threads())
}

/// Runs one configuration through the **memory-bounded** summary path
/// (see [`crate::report::SummaryReport`]): no job table, no step series,
/// no trace — the report's footprint is independent of job count. The
/// simulation trajectory is identical to [`run_experiment`]'s.
///
/// # Panics
/// Panics on an invalid configuration, like [`run_experiment`].
pub fn run_experiment_summary(cfg: &ExperimentConfig) -> SummaryReport {
    run_experiment_summary_seeded(cfg, cfg.seed)
}

/// [`run_experiment_summary`] with a `Result`-shaped error path.
pub fn try_run_experiment_summary(cfg: &ExperimentConfig) -> Result<SummaryReport, ConfigError> {
    try_run_experiment_summary_seeded(cfg, cfg.seed)
}

/// [`run_experiment_summary`] under an explicit `seed` without cloning
/// the configuration — the cell entry point of summarized sweeps.
///
/// # Panics
/// Panics on an invalid configuration, like [`run_experiment`].
pub fn run_experiment_summary_seeded(cfg: &ExperimentConfig, seed: u64) -> SummaryReport {
    try_run_experiment_summary_seeded(cfg, seed)
        .unwrap_or_else(|e| panic!("invalid experiment configuration: {e}"))
}

/// [`run_experiment_summary_seeded`] with a `Result`-shaped error path.
pub fn try_run_experiment_summary_seeded(
    cfg: &ExperimentConfig,
    seed: u64,
) -> Result<SummaryReport, ConfigError> {
    cfg.validate()?;
    let mut engine = engine_for(cfg);
    let mut world = World::for_seed_summarized(cfg, seed);
    if let Some(wf) = &cfg.warm_fork {
        // A warm-forked cell means: run the *base* policy pair over the
        // shared prefix [0, at), then this cell's own pair for the
        // tail. This cold arm switches policies in place; the warm arm
        // ([`crate::parallel::run_cells_summary_warm`]) restores a
        // shared snapshot instead, and must be bit-identical.
        world
            .use_policies(&wf.base_placement, &wf.base_malleability)
            .expect("validate() resolved the base policies");
        world.bootstrap(&mut engine);
        world.run_until(&mut engine, SimTime::ZERO + wf.at);
        world
            .use_policies(&cfg.sched.placement, &cfg.sched.malleability)
            .expect("validate() resolved the cell policies");
        Ok(world.resume_to_summary(&mut engine))
    } else {
        Ok(world.run_to_summary(&mut engine))
    }
}

/// Summarized counterpart of [`run_seeds`]: one memory-bounded run per
/// seed on the work-stealing cell runner, aggregated in seed order —
/// bit-identical to [`crate::parallel::run_seeds_summary_sequential`]
/// for any thread count.
pub fn run_seeds_summary(cfg: &ExperimentConfig, seeds: &[u64]) -> MultiSummary {
    crate::parallel::run_seeds_summary_with_threads(cfg, seeds, crate::parallel::default_threads())
}

/// Runs one configuration over an **externally supplied job stream**
/// through the streaming intake: at most `lookahead` arrivals are
/// scheduled ahead of simulated time, jobs are dropped from memory at
/// their terminal phase, and the report is the memory-bounded summary —
/// so the run's footprint is bounded by the in-flight job count, never
/// the stream length. `cfg.workload`/`cfg.trace`/`cfg.generator` are
/// ignored; the stream *is* the workload. The stream is borrowed so the
/// caller can inspect it afterwards — for an
/// [`appsim::swf::SwfJobStream`], check
/// [`error()`](appsim::swf::SwfJobStream::error) after the run, or a
/// truncating parse failure would be indistinguishable from a shorter
/// trace.
///
/// # Panics
/// Panics on invalid scheduler/report settings, like [`run_experiment`].
/// Use [`try_run_stream_summary`] for a `Result`-shaped error path.
pub fn run_stream_summary(
    cfg: &ExperimentConfig,
    seed: u64,
    stream: &mut dyn JobStream,
    lookahead: usize,
) -> SummaryReport {
    try_run_stream_summary(cfg, seed, stream, lookahead)
        .unwrap_or_else(|e| panic!("invalid experiment configuration: {e}"))
}

/// [`run_stream_summary`] with a `Result`-shaped error path. Validates
/// the scheduler, report and elasticity settings only — the stream *is*
/// the workload, so the configured workload/generator are not checked.
pub fn try_run_stream_summary(
    cfg: &ExperimentConfig,
    seed: u64,
    stream: &mut dyn JobStream,
    lookahead: usize,
) -> Result<SummaryReport, ConfigError> {
    cfg.sched.validate()?;
    if cfg.report.quantile_capacity == 0 {
        return Err(ConfigError::ZeroQuantileCapacity);
    }
    cfg.elasticity.validate()?;
    let cap = lookahead.max(1) * 2 + 64;
    let mut engine = Engine::configured(
        cfg.sched.event_queue,
        cfg.horizon.map(|h| SimTime::ZERO + h),
        cap,
    );
    Ok(World::for_stream_summarized(cfg, seed, stream, lookahead).run_to_summary(&mut engine))
}

/// [`run_stream_summary`] over the configuration's **own** workload:
/// an explicit `cfg.trace` takes precedence (streamed borrowed, one
/// job cloned at a time — the same precedence the eager paths honour),
/// else the named generator (`cfg.generator`, seeded with `seed`,
/// `cfg.workload.jobs` jobs). This is the cell entry point of streamed
/// sweeps: each cell opens its own stream, so the parallel runner needs
/// no shared stream state.
///
/// # Panics
/// Panics when the configuration has neither a trace nor a generator,
/// or on an unknown source name / invalid settings. Use
/// [`try_run_generator_summary_seeded`] for a `Result`-shaped path.
pub fn run_generator_summary_seeded(
    cfg: &ExperimentConfig,
    seed: u64,
    lookahead: usize,
) -> SummaryReport {
    try_run_generator_summary_seeded(cfg, seed, lookahead)
        .unwrap_or_else(|e| panic!("invalid experiment configuration: {e}"))
}

/// [`run_generator_summary_seeded`] with a `Result`-shaped error path:
/// a configuration with neither a trace nor a generator yields
/// [`ConfigError::MissingGenerator`], an unknown source name the
/// registry's typed error.
pub fn try_run_generator_summary_seeded(
    cfg: &ExperimentConfig,
    seed: u64,
    lookahead: usize,
) -> Result<SummaryReport, ConfigError> {
    if let Some(trace) = &cfg.trace {
        let mut stream = appsim::generate::SliceStream::new(trace);
        return try_run_stream_summary(cfg, seed, &mut stream, lookahead);
    }
    let Some(name) = &cfg.generator else {
        return Err(ConfigError::MissingGenerator);
    };
    let src = appsim::generate::WorkloadRegistry::global().source(name)?;
    let mut stream = src.stream(seed, cfg.workload.jobs as u64);
    try_run_stream_summary(cfg, seed, stream.as_mut(), lookahead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use appsim::workload::WorkloadSpec;

    fn small(policy: &str, workload: WorkloadSpec, jobs: usize) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_pra(policy, workload);
        cfg.workload.jobs = jobs;
        cfg.seed = 7;
        cfg
    }

    #[test]
    fn single_job_runs_to_completion_and_grows_from_releases() {
        let cfg = small("fpsma", WorkloadSpec::wm(), 1);
        let r = run_experiment(&cfg);
        assert_eq!(r.jobs.len(), 1);
        assert!((r.jobs.completion_ratio() - 1.0).abs() < 1e-12);
        let rec = &r.jobs.records()[0];
        assert!(rec.execution_time().unwrap() > 0.0);
        // Growth is fuelled by *released* processors only (the paper's
        // growValue); with background users releasing capacity, the lone
        // malleable job should pick up at least some of it.
        assert!(
            rec.max_size().unwrap() > 2.0,
            "max size {:?}",
            rec.max_size()
        );
    }

    #[test]
    fn without_releases_nothing_grows() {
        // No background, one job: no processors are ever released while
        // it runs, so the paper's growth procedure never fires.
        let mut cfg = small("egs", WorkloadSpec::wm(), 1);
        cfg.background = multicluster::BackgroundLoad::none();
        let r = run_experiment(&cfg);
        let rec = &r.jobs.records()[0];
        assert_eq!(rec.max_size(), Some(2.0));
        assert_eq!(r.grow_ops.total(), 0);
    }

    #[test]
    fn small_wm_batch_completes_under_both_policies() {
        for policy in ["fpsma", "egs"] {
            let cfg = small(policy, WorkloadSpec::wm(), 20);
            let r = run_experiment(&cfg);
            assert!(
                (r.jobs.completion_ratio() - 1.0).abs() < 1e-12,
                "{policy} left jobs unfinished"
            );
            assert!(r.grow_ops.total() > 0, "{policy} never grew anything");
        }
    }

    #[test]
    fn pwa_shrinks_under_load() {
        // Shrinks only trigger once grown jobs saturate the platform,
        // which needs the sustained W'm arrival pressure (the paper's
        // overload regime); 200 jobs are enough to reach it.
        let mut cfg = ExperimentConfig::paper_pwa("egs", WorkloadSpec::wm_prime());
        cfg.workload.jobs = 200;
        cfg.seed = 3;
        let r = run_experiment(&cfg);
        assert!(
            (r.jobs.completion_ratio() - 1.0).abs() < 1e-12,
            "jobs unfinished"
        );
        assert!(r.shrink_ops.total() > 0, "PWA under W'm should shrink");
        assert!(
            r.placement_tries > 0,
            "saturation should cause failed placement tries"
        );
    }

    #[test]
    fn pra_never_shrinks() {
        let cfg = small("egs", WorkloadSpec::wm(), 25);
        let r = run_experiment(&cfg);
        assert_eq!(r.shrink_ops.total(), 0);
        assert_eq!(r.shrink_messages, 0);
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let cfg = small("egs", WorkloadSpec::wmr(), 15);
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.events, b.events);
        assert_eq!(a.grow_messages, b.grow_messages);
        let ea: Vec<f64> = a.jobs.execution_time_ecdf().samples().to_vec();
        let eb: Vec<f64> = b.jobs.execution_time_ecdf().samples().to_vec();
        assert_eq!(ea, eb);
    }

    #[test]
    fn rigid_jobs_keep_their_size() {
        let mut cfg = small("egs", WorkloadSpec::wmr(), 20);
        cfg.seed = 11;
        let r = run_experiment(&cfg);
        for rec in r.jobs.records().iter().filter(|r| !r.malleable) {
            assert_eq!(rec.max_size(), Some(2.0), "rigid job grew: {rec:?}");
            assert_eq!(rec.grows, 0);
        }
    }

    #[test]
    fn multi_seed_runs_aggregate() {
        let cfg = small("fpsma", WorkloadSpec::wm(), 10);
        let m = run_seeds(&cfg, &[1, 2, 3]);
        assert_eq!(m.runs.len(), 3);
        assert_eq!(m.merged_jobs().len(), 30);
        assert!((m.completion_ratio() - 1.0).abs() < 1e-12);
    }

    /// Every capacity-mutation entry point marks exactly the cluster it
    /// touched in the availability index — no neighbours, no misses.
    /// (The release-side funnel `capacity_freed` covers completion,
    /// requeue, crash-survivor release, orphan reclaim, shrink
    /// confirmation, node restore and autoscale grow; the remaining
    /// sites are exercised directly.)
    #[test]
    fn avail_index_mutations_dirty_exactly_the_touched_cluster() {
        let mut cfg = small("egs", WorkloadSpec::wm(), 0);
        cfg.background = multicluster::BackgroundLoad::none();
        let mut w = World::new(&cfg);
        let n = w.avail_idx.dirty_count();
        assert!(n >= 2, "paper topology has multiple clusters");
        let mut engine = Engine::new();
        let clean = vec![0u32; n];

        // Release-side funnel (no KIS snapshot yet, so the scan it
        // triggers cannot rebuild and wipe the mark under us).
        w.avail_idx.rebuild(&clean);
        w.capacity_freed(&mut engine, ClusterId(1));
        assert!(w.avail_idx.is_dirty(ClusterId(1)));
        assert_eq!(w.avail_idx.dirty_count(), 1, "funnel dirtied neighbours");

        // Node crash takes nodes (busy included) from one cluster.
        w.avail_idx.rebuild(&clean);
        w.on_node_crash(&mut engine, ClusterId(0), 1, SimDuration::from_secs(60));
        assert!(w.avail_idx.is_dirty(ClusterId(0)));
        assert_eq!(w.avail_idx.dirty_count(), 1, "crash dirtied neighbours");

        // Autoscale shrink withdraws free nodes from one cluster...
        w.avail_idx.rebuild(&clean);
        w.on_autoscale_apply(&mut engine, ClusterId(1), false, 1);
        assert!(w.avail_idx.is_dirty(ClusterId(1)));
        assert_eq!(w.avail_idx.dirty_count(), 1, "shrink dirtied neighbours");

        // ...and the matching grow restores them (via the funnel).
        w.avail_idx.rebuild(&clean);
        w.on_autoscale_apply(&mut engine, ClusterId(1), true, 1);
        assert!(w.avail_idx.is_dirty(ClusterId(1)));
        assert_eq!(w.avail_idx.dirty_count(), 1, "grow dirtied neighbours");

        // Explicit node withdrawal (the elasticity layer's direct path).
        w.avail_idx.rebuild(&clean);
        w.on_node_withdraw(&mut engine, ClusterId(0), 1);
        assert!(w.avail_idx.is_dirty(ClusterId(0)));
        assert_eq!(w.avail_idx.dirty_count(), 1, "withdraw dirtied neighbours");
    }

    /// The claim side keeps the index live across a real run: placements
    /// rebuild it (so the aggregates track the scan's availability
    /// vector) and the final completion leaves its cluster marked.
    #[test]
    fn avail_index_is_maintained_across_a_full_run() {
        let cfg = small("fpsma", WorkloadSpec::wm(), 3);
        let mut engine = Engine::new();
        let mut w = World::new(&cfg);
        w.run_loop(&mut engine);
        let idx = w.avail_index();
        assert!(idx.rebuilds() > 0, "no scan ever rebuilt the index");
        assert!(
            idx.dirty_count() > 0,
            "the last completion must leave its cluster marked"
        );
    }

    #[test]
    fn application_initiated_growth_fires_once_per_job() {
        let mut cfg = small("fpsma", WorkloadSpec::wm(), 8);
        cfg.workload.initiative = Some(appsim::GrowInitiative {
            at_progress: 0.3,
            extra: 8,
        });
        cfg.workload.initiative_fraction = 1.0;
        let r = run_experiment(&cfg);
        assert!((r.jobs.completion_ratio() - 1.0).abs() < 1e-12);
        // Every job asked once; grants depend on capacity, but with an
        // idle platform most requests succeed, so growth must exceed the
        // release-driven baseline of the same run without initiatives.
        let mut base = small("fpsma", WorkloadSpec::wm(), 8);
        base.seed = cfg.seed;
        let b = run_experiment(&base);
        assert!(
            r.grow_ops.total() > b.grow_ops.total(),
            "initiatives should add grow operations ({} vs {})",
            r.grow_ops.total(),
            b.grow_ops.total()
        );
    }

    #[test]
    fn moldable_jobs_take_a_size_at_start_and_keep_it() {
        let mut cfg = small("egs", WorkloadSpec::wm(), 12);
        cfg.workload.malleable_fraction = 0.0;
        cfg.workload.moldable_fraction = 1.0;
        cfg.sched.koala_share = 0.45;
        let r = run_experiment(&cfg);
        assert!((r.jobs.completion_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(r.grow_ops.total(), 0, "moldable jobs never grow");
        for rec in r.jobs.records() {
            let avg = rec.average_size().unwrap();
            let max = rec.max_size().unwrap();
            assert!(
                (avg - max).abs() < 1e-9,
                "moldable size must not change: {rec:?}"
            );
            assert!(max >= 2.0);
        }
    }

    #[test]
    fn trace_records_the_full_lifecycle() {
        let cfg = small("egs", WorkloadSpec::wm(), 5);
        let mut engine = simcore::Engine::new();
        let r = World::new(&cfg)
            .with_trace(10_000)
            .run_to_completion(&mut engine);
        assert!(r.trace.is_enabled());
        assert_eq!(r.trace.of_category("arrive").count(), 5);
        assert_eq!(r.trace.of_category("place").count(), 5);
        assert_eq!(r.trace.of_category("start").count(), 5);
        assert_eq!(r.trace.of_category("complete").count(), 5);
        // Per-job lifecycle order: arrive ≤ place ≤ start ≤ complete.
        for j in 0..5u64 {
            let cats: Vec<&str> = r.trace.of_subject(j).map(|e| e.category).collect();
            let pos = |c: &str| cats.iter().position(|&x| x == c).unwrap();
            assert!(pos("arrive") < pos("place"));
            assert!(pos("place") < pos("start"));
            assert!(pos("start") < pos("complete"));
        }
        // Grow entries are always followed by a resume for the same job.
        assert_eq!(
            r.trace.of_category("grow").count(),
            r.trace.of_category("resume").count(),
            "every accepted grow must resume"
        );
    }

    #[test]
    fn committed_grows_never_exceed_decided_ops() {
        let cfg = small("fpsma", WorkloadSpec::wm(), 15);
        let r = run_experiment(&cfg);
        // Committed (per-job) grows are a subset of decided ops: an op
        // aborts when the job completes while its stubs submit.
        assert!(r.jobs.total_grows() <= r.grow_ops.total() as u64);
        assert!(r.jobs.total_grows() > 0);
    }

    #[test]
    fn background_load_runs_alongside() {
        let mut cfg = small("fpsma", WorkloadSpec::wm(), 10);
        cfg.background = multicluster::BackgroundLoad::light();
        let r = run_experiment(&cfg);
        assert!((r.jobs.completion_ratio() - 1.0).abs() < 1e-12);
    }
}
