//! The open scheduling-policy API: placement and malleability policies
//! as object-safe traits, plus the name-indexed [`PolicyRegistry`] that
//! lets binaries and configuration files select policies by string name.
//!
//! The paper compares two *families* of approaches (KOALA placement
//! policies, FPSMA/EGS malleability management); this module makes each
//! family an open set. Adding a policy is a ~50-line drop-in:
//!
//! 1. implement [`Placement`] or [`Malleability`] on a (usually unit)
//!    struct;
//! 2. register a constructor under the policy's [`name`](Placement::name)
//!    with [`PolicyRegistry::register_placement`] /
//!    [`PolicyRegistry::register_malleability`] (the built-ins are
//!    pre-registered in [`PolicyRegistry::global`]);
//! 3. reference the name from a
//!    [`ScenarioBuilder`](crate::scenario::ScenarioBuilder) or an
//!    [`ExperimentConfig`](crate::config::ExperimentConfig).
//!
//! Nothing in the simulation core dispatches on concrete policy types:
//! [`World`](crate::sim::World) resolves the configured names once at
//! construction and drives `Box<dyn Placement>` / `Box<dyn Malleability>`
//! through the allocation-free scheduling hot path (the traits take
//! caller-owned scratch buffers exactly like the former enum methods, so
//! the zero-allocation guarantee of the perf subsystem survives open
//! dispatch).
//!
//! ```
//! use koala::policy::{Malleability, PolicyRegistry};
//!
//! let registry = PolicyRegistry::global();
//! let egs = registry.malleability("egs").unwrap();
//! assert_eq!(egs.name(), "egs");
//! assert_eq!(egs.label(), "EGS");
//! // Unknown names fail with the list of known policies.
//! assert!(registry.malleability("no_such_policy").is_err());
//! ```

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

use multicluster::FileCatalog;

use crate::ids::JobId;
use crate::malleability::{GrowOp, PolicyOutcome, RunningView, ShrinkOp};
use crate::placement::{PlacementDecision, PlacementRequest};

/// A placement policy (Section IV-A of the paper): decides which
/// cluster(s) host a job's components, given a (possibly stale) snapshot
/// of per-cluster availability.
///
/// Implementations must be stateless with respect to runs (`&self`
/// methods): the same inputs must always produce the same decision, which
/// is what keeps multi-seed sweeps deterministic and the parallel cell
/// runner bit-identical to the sequential loop.
pub trait Placement: Send + Sync {
    /// Registry key (`snake_case`), e.g. `"worst_fit"`.
    fn name(&self) -> &'static str;

    /// Short report label, e.g. `"WF"`.
    fn label(&self) -> &'static str;

    /// Attempts to place `req` given per-cluster availability `avail`.
    /// On success `avail` must be deducted by exactly the granted
    /// sizes; on failure it must be left untouched (all-or-nothing, as
    /// in KOALA's co-allocator). `scratch` is a reusable buffer for the
    /// working copy that guarantees this — it arrives *unpopulated*;
    /// route the implementation through
    /// [`place_all_or_nothing`](crate::placement::place_all_or_nothing)
    /// like the built-ins do rather than reading it or deducting from
    /// `avail` directly. The queue scan calls this once per queued job
    /// per tick, reusing one buffer for the whole run instead of
    /// allocating a fresh copy every call — implementations must not
    /// stash the buffer or rely on its previous contents.
    ///
    /// Returns `None` when the job cannot be placed now (the caller
    /// queues it).
    fn place_in(
        &self,
        req: &PlacementRequest,
        avail: &mut [u32],
        scratch: &mut Vec<u32>,
        catalog: Option<&FileCatalog>,
    ) -> Option<PlacementDecision>;

    /// [`Placement::place_in`] with a locally allocated scratch buffer —
    /// the convenient entry point for tests and one-off calls.
    fn place(
        &self,
        req: &PlacementRequest,
        avail: &mut [u32],
        catalog: Option<&FileCatalog>,
    ) -> Option<PlacementDecision> {
        let mut scratch = Vec::with_capacity(avail.len());
        self.place_in(req, avail, &mut scratch, catalog)
    }
}

/// A malleability-management policy (Section V-C of the paper): decides
/// which running malleable jobs grow or shrink and by how much, given a
/// grow/shrink value for one cluster.
///
/// The protocol matches the paper's pseudo-code (Figs. 4 and 5): the
/// policy sends a request to a job, the job answers through `accept` with
/// the number of processors it takes/releases (its DYNACO decide step —
/// the scheduler never reasons about application size constraints), and
/// the policy updates its remaining budget. Like [`Placement`],
/// implementations must be stateless across calls.
pub trait Malleability: Send + Sync {
    /// Registry key (`snake_case`), e.g. `"fpsma"`.
    fn name(&self) -> &'static str;

    /// Short report label, e.g. `"FPSMA"`.
    fn label(&self) -> &'static str;

    /// Distributes `grow_value` freshly available processors over the
    /// running malleable jobs of one cluster. `accept(job, offered)`
    /// must return how many of the offered processors the job takes; the
    /// policy never hands out more than `grow_value` in total.
    fn run_grow(
        &self,
        jobs: &[RunningView],
        grow_value: u32,
        accept: &mut dyn FnMut(JobId, u32) -> u32,
    ) -> PolicyOutcome<GrowOp>;

    /// Reclaims `shrink_value` processors from the running malleable
    /// jobs of one cluster (mandatory shrinks; PWA and failure
    /// handling). `accept(job, requested)` returns how many processors
    /// the job will release (possibly more than requested — voluntary
    /// surplus — or fewer when its minimum binds).
    fn run_shrink(
        &self,
        jobs: &[RunningView],
        shrink_value: u32,
        accept: &mut dyn FnMut(JobId, u32) -> u32,
    ) -> PolicyOutcome<ShrinkOp>;
}

/// Failure to resolve a policy name against a [`PolicyRegistry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// No placement policy registered under this name.
    UnknownPlacement {
        /// The name that failed to resolve.
        name: String,
        /// The names that would have resolved.
        known: Vec<String>,
    },
    /// No malleability policy registered under this name.
    UnknownMalleability {
        /// The name that failed to resolve.
        name: String,
        /// The names that would have resolved.
        known: Vec<String>,
    },
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::UnknownPlacement { name, known } => write!(
                f,
                "unknown placement policy {name:?} (known: {})",
                known.join(", ")
            ),
            PolicyError::UnknownMalleability { name, known } => write!(
                f,
                "unknown malleability policy {name:?} (known: {})",
                known.join(", ")
            ),
        }
    }
}

impl std::error::Error for PolicyError {}

type PlacementCtor = Arc<dyn Fn() -> Box<dyn Placement> + Send + Sync>;
type MalleabilityCtor = Arc<dyn Fn() -> Box<dyn Malleability> + Send + Sync>;

/// Maps policy names to constructors, so configurations and binaries can
/// select policies by string name (and external code can plug new ones
/// in without touching the simulation core).
///
/// [`PolicyRegistry::global`] is the shared instance pre-loaded with the
/// built-ins; [`PolicyRegistry::new`] builds an empty one for tests that
/// want full control. Registration replaces any previous entry under the
/// same name (latest wins), and lookups construct a fresh boxed policy
/// per call — policies are stateless, so sharing is never needed.
pub struct PolicyRegistry {
    placements: RwLock<BTreeMap<String, PlacementCtor>>,
    malleability: RwLock<BTreeMap<String, MalleabilityCtor>>,
}

impl Default for PolicyRegistry {
    fn default() -> Self {
        Self::with_defaults()
    }
}

impl PolicyRegistry {
    /// An empty registry (no built-ins).
    pub fn new() -> Self {
        PolicyRegistry {
            placements: RwLock::new(BTreeMap::new()),
            malleability: RwLock::new(BTreeMap::new()),
        }
    }

    /// A registry pre-loaded with every built-in policy.
    pub fn with_defaults() -> Self {
        use crate::malleability::{Egs, Equipartition, Folding, Fpsma, GreedyGrowLazyShrink};
        use crate::placement::{
            CloseToFiles, ClusterMinimization, FirstFit, FlexibleClusterMinimization, WorstFit,
        };
        let r = Self::new();
        r.register_placement(|| Box::new(WorstFit));
        r.register_placement(|| Box::new(CloseToFiles));
        r.register_placement(|| Box::new(ClusterMinimization));
        r.register_placement(|| Box::new(FlexibleClusterMinimization));
        r.register_placement(|| Box::new(FirstFit));
        r.register_malleability(|| Box::new(Fpsma));
        r.register_malleability(|| Box::new(Egs));
        r.register_malleability(|| Box::new(Equipartition));
        r.register_malleability(|| Box::new(Folding));
        r.register_malleability(|| Box::new(GreedyGrowLazyShrink));
        r
    }

    /// The process-wide registry every configuration resolves against
    /// (pre-loaded with the built-ins). Register additional policies
    /// here before building scenarios that reference them.
    pub fn global() -> &'static PolicyRegistry {
        static GLOBAL: OnceLock<PolicyRegistry> = OnceLock::new();
        GLOBAL.get_or_init(PolicyRegistry::with_defaults)
    }

    /// Registers a placement-policy constructor under the name the
    /// constructed policy reports.
    pub fn register_placement<F>(&self, ctor: F)
    where
        F: Fn() -> Box<dyn Placement> + Send + Sync + 'static,
    {
        let name = ctor().name().to_string();
        self.placements
            .write()
            .expect("registry lock poisoned")
            .insert(name, Arc::new(ctor));
    }

    /// Registers a malleability-policy constructor under the name the
    /// constructed policy reports.
    pub fn register_malleability<F>(&self, ctor: F)
    where
        F: Fn() -> Box<dyn Malleability> + Send + Sync + 'static,
    {
        let name = ctor().name().to_string();
        self.malleability
            .write()
            .expect("registry lock poisoned")
            .insert(name, Arc::new(ctor));
    }

    /// Constructs the placement policy registered under `name`.
    ///
    /// The constructor runs *after* the registry lock is released, so a
    /// policy may itself consult (or extend) the registry.
    pub fn placement(&self, name: &str) -> Result<Box<dyn Placement>, PolicyError> {
        let ctor = {
            let map = self.placements.read().expect("registry lock poisoned");
            map.get(name).cloned()
        };
        match ctor {
            Some(ctor) => Ok(ctor()),
            None => Err(PolicyError::UnknownPlacement {
                name: name.to_string(),
                known: self.placement_names(),
            }),
        }
    }

    /// Constructs the malleability policy registered under `name`.
    ///
    /// Like [`PolicyRegistry::placement`], the constructor runs outside
    /// the registry lock.
    pub fn malleability(&self, name: &str) -> Result<Box<dyn Malleability>, PolicyError> {
        let ctor = {
            let map = self.malleability.read().expect("registry lock poisoned");
            map.get(name).cloned()
        };
        match ctor {
            Some(ctor) => Ok(ctor()),
            None => Err(PolicyError::UnknownMalleability {
                name: name.to_string(),
                known: self.malleability_names(),
            }),
        }
    }

    /// The registered placement-policy names, sorted.
    pub fn placement_names(&self) -> Vec<String> {
        self.placements
            .read()
            .expect("registry lock poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// The registered malleability-policy names, sorted.
    pub fn malleability_names(&self) -> Vec<String> {
        self.malleability
            .read()
            .expect("registry lock poisoned")
            .keys()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_knows_the_builtins() {
        let r = PolicyRegistry::global();
        for name in [
            "worst_fit",
            "close_to_files",
            "cluster_min",
            "flexible_cluster_min",
            "first_fit",
        ] {
            assert_eq!(r.placement(name).unwrap().name(), name);
        }
        for name in [
            "fpsma",
            "egs",
            "equipartition",
            "folding",
            "greedy_grow_lazy_shrink",
        ] {
            assert_eq!(r.malleability(name).unwrap().name(), name);
        }
    }

    #[test]
    fn unknown_names_list_the_known_policies() {
        let r = PolicyRegistry::global();
        let err = r.placement("nope").err().expect("unknown name");
        let msg = err.to_string();
        assert!(msg.contains("nope") && msg.contains("worst_fit"), "{msg}");
        let err = r.malleability("nope").err().expect("unknown name");
        assert!(err.to_string().contains("fpsma"));
    }

    #[test]
    fn custom_policies_can_be_registered() {
        struct Never;
        impl Placement for Never {
            fn name(&self) -> &'static str {
                "never"
            }
            fn label(&self) -> &'static str {
                "NV"
            }
            fn place_in(
                &self,
                _req: &PlacementRequest,
                _avail: &mut [u32],
                _scratch: &mut Vec<u32>,
                _catalog: Option<&FileCatalog>,
            ) -> Option<PlacementDecision> {
                None
            }
        }
        let r = PolicyRegistry::new();
        r.register_placement(|| Box::new(Never));
        assert_eq!(r.placement_names(), vec!["never".to_string()]);
        let p = r.placement("never").unwrap();
        assert_eq!(p.label(), "NV");
    }
}
