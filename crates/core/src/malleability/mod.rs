//! Malleability-management policies (Section V-C of the paper).
//!
//! A policy decides *which* running malleable jobs grow or shrink and by
//! how much, given a grow/shrink value for one cluster ("the policies are
//! applied for each cluster separately"). The protocol matches the
//! paper's pseudo-code (Figs. 4 and 5): the policy sends a request to a
//! job, the job answers with the number of processors it *accepts*
//! (applying its own size constraint — the scheduler never reasons about
//! constraints), and the policy updates its remaining budget.
//!
//! Each policy is a named implementor of the open [`Malleability`] trait
//! (see [`crate::policy`]):
//!
//! * [`Fpsma`] (`"fpsma"`) — *Favour Previously Started Malleable
//!   Applications*: grow oldest-first, shrink youngest-first, offering
//!   the whole remaining value to each job in turn.
//! * [`Egs`] (`"egs"`) — *Equi-Grow & Shrink*: split the value equally
//!   over all running malleable jobs; the remainder goes to the least
//!   recently started jobs as a bonus (grow) or is reclaimed from the
//!   most recently started as a malus (shrink). Unlike classic
//!   equipartition, EGS distributes the *delta*, not the whole processor
//!   set, and never mixes grows with shrinks in one operation.
//! * [`Equipartition`] (`"equipartition"`) — the classic baseline (AMPI;
//!   McCann & Zahorjan): drive all jobs toward an equal share of the
//!   processors available to malleable work.
//! * [`Folding`] (`"folding"`) — the folding baseline (Utrera et al.;
//!   McCann & Zahorjan): double/halve job sizes.
//! * [`GreedyGrowLazyShrink`] (`"greedy_grow_lazy_shrink"`) — not in the
//!   paper: grow the *largest* job first (greedy concentration), shrink
//!   by spreading the reclaim as thinly as possible over the jobs with
//!   the most slack (lazy disruption). A variant the closed policy enum
//!   could not express.
//!
//! The accept callback is how the simulation wires these policies to each
//! job's DYNACO instance; unit tests here use plain closures.

use simcore::SimTime;

use crate::ids::JobId;

pub use crate::policy::Malleability;

/// Scheduler-side view of one running malleable job on a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunningView {
    /// The job.
    pub job: JobId,
    /// When it started executing (the sort key of FPSMA and of the
    /// EGS bonus/malus assignment).
    pub started: SimTime,
    /// Current allocation size.
    pub size: u32,
    /// Its minimum size (never shrunk below).
    pub min: u32,
    /// Its maximum size (never grown above).
    pub max: u32,
}

/// One executed grow operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrowOp {
    /// The job that grew.
    pub job: JobId,
    /// Processors offered to it.
    pub offered: u32,
    /// Processors it accepted (> 0 by construction).
    pub accepted: u32,
}

/// One executed shrink operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShrinkOp {
    /// The job that shrank.
    pub job: JobId,
    /// Processors requested back from it.
    pub requested: u32,
    /// Processors it will release (> 0; may exceed `requested` when the
    /// job's size constraint forces a lower feasible size).
    pub released: u32,
}

/// Outcome of one policy initiation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyOutcome<Op> {
    /// Operations with a non-zero accepted amount, in protocol order.
    pub ops: Vec<Op>,
    /// Requests sent, including declined ones (manager activity metric).
    pub messages: u32,
}

impl<Op> Default for PolicyOutcome<Op> {
    fn default() -> Self {
        PolicyOutcome {
            ops: Vec::new(),
            messages: 0,
        }
    }
}

/// Views sorted oldest-first (the grow order of FPSMA and the EGS bonus
/// order).
fn oldest_first(jobs: &[RunningView]) -> Vec<RunningView> {
    let mut order = jobs.to_vec();
    order.sort_by_key(|v| (v.started, v.job));
    order
}

/// Views sorted youngest-first (the shrink order of FPSMA and the EGS
/// malus order).
fn youngest_first(jobs: &[RunningView]) -> Vec<RunningView> {
    let mut order = jobs.to_vec();
    order.sort_by_key(|v| (std::cmp::Reverse(v.started), std::cmp::Reverse(v.job)));
    order
}

/// Offers the whole remaining budget to each view in `order` until it is
/// spent — the shared engine of FPSMA's grow/shrink and the greedy grow.
fn drain_budget_grow(
    order: &[RunningView],
    budget: u32,
    accept: &mut dyn FnMut(JobId, u32) -> u32,
) -> PolicyOutcome<GrowOp> {
    let mut out = PolicyOutcome::default();
    let mut remaining = budget;
    for v in order {
        out.messages += 1;
        let accepted = accept(v.job, remaining).min(remaining);
        if accepted > 0 {
            out.ops.push(GrowOp {
                job: v.job,
                offered: remaining,
                accepted,
            });
            remaining -= accepted;
        }
        if remaining == 0 {
            break;
        }
    }
    out
}

/// Favour Previously Started Malleable Applications (`"fpsma"`, label
/// `FPSMA`): grow oldest-first, shrink youngest-first, offering the whole
/// remaining value to each job in turn (Fig. 4 of the paper).
///
/// ```
/// use koala::malleability::{Fpsma, Egs, Malleability, RunningView};
/// use koala::JobId;
/// use simcore::SimTime;
/// let jobs = [
///     RunningView { job: JobId(0), started: SimTime::from_secs(10), size: 2, min: 2, max: 46 },
///     RunningView { job: JobId(1), started: SimTime::from_secs(90), size: 2, min: 2, max: 46 },
/// ];
/// // FPSMA offers the whole grow value to the oldest job first…
/// let out = Fpsma.run_grow(&jobs, 10, &mut |_, offered| offered);
/// assert_eq!(out.ops[0].job, JobId(0));
/// assert_eq!(out.ops[0].accepted, 10);
/// // …while EGS splits it equally.
/// let out = Egs.run_grow(&jobs, 10, &mut |_, offered| offered);
/// assert!(out.ops.iter().all(|op| op.accepted == 5));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fpsma;

impl Malleability for Fpsma {
    fn name(&self) -> &'static str {
        "fpsma"
    }
    fn label(&self) -> &'static str {
        "FPSMA"
    }

    fn run_grow(
        &self,
        jobs: &[RunningView],
        grow_value: u32,
        accept: &mut dyn FnMut(JobId, u32) -> u32,
    ) -> PolicyOutcome<GrowOp> {
        if grow_value == 0 || jobs.is_empty() {
            return PolicyOutcome::default();
        }
        // Fig. 4: oldest job first; each is offered the whole remaining
        // grow value.
        drain_budget_grow(&oldest_first(jobs), grow_value, accept)
    }

    fn run_shrink(
        &self,
        jobs: &[RunningView],
        shrink_value: u32,
        accept: &mut dyn FnMut(JobId, u32) -> u32,
    ) -> PolicyOutcome<ShrinkOp> {
        let mut out = PolicyOutcome::default();
        if shrink_value == 0 || jobs.is_empty() {
            return out;
        }
        // Fig. 4: youngest job first; each is asked for the whole
        // remaining shrink value.
        let mut remaining = shrink_value;
        for v in &youngest_first(jobs) {
            out.messages += 1;
            let released = accept(v.job, remaining);
            if released > 0 {
                out.ops.push(ShrinkOp {
                    job: v.job,
                    requested: remaining,
                    released,
                });
                remaining = remaining.saturating_sub(released);
            }
            if remaining == 0 {
                break;
            }
        }
        out
    }
}

/// Equi-Grow & Shrink (`"egs"`, label `EGS`): split the value equally
/// over all running malleable jobs, remainder to the least recently
/// started (grow bonus) or reclaimed from the most recently started
/// (shrink malus) — Fig. 5 of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Egs;

impl Malleability for Egs {
    fn name(&self) -> &'static str {
        "egs"
    }
    fn label(&self) -> &'static str {
        "EGS"
    }

    fn run_grow(
        &self,
        jobs: &[RunningView],
        grow_value: u32,
        accept: &mut dyn FnMut(JobId, u32) -> u32,
    ) -> PolicyOutcome<GrowOp> {
        let mut out = PolicyOutcome::default();
        if grow_value == 0 || jobs.is_empty() {
            return out;
        }
        // Fig. 5: equal share, remainder as a bonus to the least
        // recently started jobs.
        let order = oldest_first(jobs);
        let n = order.len() as u32;
        let share = grow_value / n;
        let rem = grow_value % n;
        for (i, v) in order.iter().enumerate() {
            let bonus = u32::from((i as u32) < rem);
            let offered = share + bonus;
            if offered == 0 {
                continue;
            }
            out.messages += 1;
            let accepted = accept(v.job, offered).min(offered);
            if accepted > 0 {
                out.ops.push(GrowOp {
                    job: v.job,
                    offered,
                    accepted,
                });
            }
        }
        out
    }

    fn run_shrink(
        &self,
        jobs: &[RunningView],
        shrink_value: u32,
        accept: &mut dyn FnMut(JobId, u32) -> u32,
    ) -> PolicyOutcome<ShrinkOp> {
        let mut out = PolicyOutcome::default();
        if shrink_value == 0 || jobs.is_empty() {
            return out;
        }
        // Fig. 5 with the malus assigned to the most recently started
        // jobs, as the prose specifies. (The paper's pseudo-code tests
        // `i ≥ growRemainder` over the descending list, which would
        // spare the youngest jobs — we follow the stated intent
        // instead.)
        let order = youngest_first(jobs);
        let n = order.len() as u32;
        let share = shrink_value / n;
        let rem = shrink_value % n;
        for (i, v) in order.iter().enumerate() {
            let malus = u32::from((i as u32) < rem);
            let requested = share + malus;
            if requested == 0 {
                continue;
            }
            out.messages += 1;
            let released = accept(v.job, requested);
            if released > 0 {
                out.ops.push(ShrinkOp {
                    job: v.job,
                    requested,
                    released,
                });
            }
        }
        out
    }
}

/// Classic equipartition baseline (`"equipartition"`, label `EQUI`):
/// drive all jobs toward an equal share of the processors available to
/// malleable work (AMPI; McCann & Zahorjan).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Equipartition;

impl Malleability for Equipartition {
    fn name(&self) -> &'static str {
        "equipartition"
    }
    fn label(&self) -> &'static str {
        "EQUI"
    }

    fn run_grow(
        &self,
        jobs: &[RunningView],
        grow_value: u32,
        accept: &mut dyn FnMut(JobId, u32) -> u32,
    ) -> PolicyOutcome<GrowOp> {
        let mut out = PolicyOutcome::default();
        if grow_value == 0 || jobs.is_empty() {
            return out;
        }
        // Drive sizes toward an equal share of (current malleable
        // holdings + the new processors).
        let order = oldest_first(jobs);
        let n = order.len() as u32;
        let pool: u32 = order.iter().map(|v| v.size).sum::<u32>() + grow_value;
        let share = pool / n;
        let rem = pool % n;
        let mut remaining = grow_value;
        for (i, v) in order.iter().enumerate() {
            let target = share + u32::from((i as u32) < rem);
            if target <= v.size || remaining == 0 {
                continue;
            }
            let offered = (target - v.size).min(remaining);
            out.messages += 1;
            let accepted = accept(v.job, offered).min(offered);
            if accepted > 0 {
                out.ops.push(GrowOp {
                    job: v.job,
                    offered,
                    accepted,
                });
                remaining -= accepted;
            }
        }
        out
    }

    fn run_shrink(
        &self,
        jobs: &[RunningView],
        shrink_value: u32,
        accept: &mut dyn FnMut(JobId, u32) -> u32,
    ) -> PolicyOutcome<ShrinkOp> {
        let mut out = PolicyOutcome::default();
        if shrink_value == 0 || jobs.is_empty() {
            return out;
        }
        // Drive sizes toward an equal share of (current holdings − the
        // processors being reclaimed).
        let order = youngest_first(jobs);
        let n = order.len() as u32;
        let pool: u32 = order.iter().map(|v| v.size).sum::<u32>();
        let pool = pool.saturating_sub(shrink_value);
        let share = pool / n;
        let mut remaining = shrink_value;
        for v in &order {
            if remaining == 0 {
                break;
            }
            if v.size <= share {
                continue;
            }
            let requested = (v.size - share).min(remaining);
            out.messages += 1;
            let released = accept(v.job, requested);
            if released > 0 {
                out.ops.push(ShrinkOp {
                    job: v.job,
                    requested,
                    released,
                });
                remaining = remaining.saturating_sub(released);
            }
        }
        out
    }
}

/// Folding baseline (`"folding"`, label `FOLD`): double job sizes
/// oldest-first on grow, halve youngest-first on shrink (Utrera et al.;
/// McCann & Zahorjan).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Folding;

impl Malleability for Folding {
    fn name(&self) -> &'static str {
        "folding"
    }
    fn label(&self) -> &'static str {
        "FOLD"
    }

    fn run_grow(
        &self,
        jobs: &[RunningView],
        grow_value: u32,
        accept: &mut dyn FnMut(JobId, u32) -> u32,
    ) -> PolicyOutcome<GrowOp> {
        let mut out = PolicyOutcome::default();
        if grow_value == 0 || jobs.is_empty() {
            return out;
        }
        // Unfold (double) jobs oldest-first while the budget lasts.
        let mut remaining = grow_value;
        for v in &oldest_first(jobs) {
            if remaining == 0 {
                break;
            }
            let double = v.size.min(v.max.saturating_sub(v.size));
            let offered = double.min(remaining);
            if offered == 0 {
                continue;
            }
            out.messages += 1;
            let accepted = accept(v.job, offered).min(offered);
            if accepted > 0 {
                out.ops.push(GrowOp {
                    job: v.job,
                    offered,
                    accepted,
                });
                remaining -= accepted;
            }
        }
        out
    }

    fn run_shrink(
        &self,
        jobs: &[RunningView],
        shrink_value: u32,
        accept: &mut dyn FnMut(JobId, u32) -> u32,
    ) -> PolicyOutcome<ShrinkOp> {
        let mut out = PolicyOutcome::default();
        if shrink_value == 0 || jobs.is_empty() {
            return out;
        }
        // Fold (halve) jobs youngest-first until satisfied.
        let mut remaining = shrink_value;
        for v in &youngest_first(jobs) {
            if remaining == 0 {
                break;
            }
            let half = v.size / 2;
            let requested = half.min(v.size.saturating_sub(v.min));
            if requested == 0 {
                continue;
            }
            out.messages += 1;
            let released = accept(v.job, requested);
            if released > 0 {
                out.ops.push(ShrinkOp {
                    job: v.job,
                    requested,
                    released,
                });
                remaining = remaining.saturating_sub(released);
            }
        }
        out
    }
}

/// Greedy-grow / lazy-shrink (`"greedy_grow_lazy_shrink"`, label `GGLS`)
/// — a policy outside the paper's pair, expressible only through the
/// open [`Malleability`] trait:
///
/// * **grow**: offer the whole remaining value to the *largest* running
///   job first (ties to the older job). Concentrating processors in the
///   jobs already holding the most exploits super-linear regions of
///   their speedup curves instead of spreading thin.
/// * **shrink**: reclaim as thinly as possible — jobs ordered by
///   descending slack (`size − min`), each asked for an equal share of
///   what remains, so no single application suffers a deep
///   reconfiguration when many can give a little.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GreedyGrowLazyShrink;

impl Malleability for GreedyGrowLazyShrink {
    fn name(&self) -> &'static str {
        "greedy_grow_lazy_shrink"
    }
    fn label(&self) -> &'static str {
        "GGLS"
    }

    fn run_grow(
        &self,
        jobs: &[RunningView],
        grow_value: u32,
        accept: &mut dyn FnMut(JobId, u32) -> u32,
    ) -> PolicyOutcome<GrowOp> {
        if grow_value == 0 || jobs.is_empty() {
            return PolicyOutcome::default();
        }
        // Largest job first; ties to the older job, then the lower id —
        // fully deterministic.
        let mut order = jobs.to_vec();
        order.sort_by_key(|v| (std::cmp::Reverse(v.size), v.started, v.job));
        drain_budget_grow(&order, grow_value, accept)
    }

    fn run_shrink(
        &self,
        jobs: &[RunningView],
        shrink_value: u32,
        accept: &mut dyn FnMut(JobId, u32) -> u32,
    ) -> PolicyOutcome<ShrinkOp> {
        let mut out = PolicyOutcome::default();
        if shrink_value == 0 || jobs.is_empty() {
            return out;
        }
        // Jobs with the most slack first; each round asks every
        // remaining candidate only for an equal share of what is still
        // owed, so the reclaim is spread as thinly as the minima allow.
        // Rounds repeat (jobs whose first concession was small are asked
        // again) until the value is delivered or nobody gives any more —
        // lazy per request, but still honouring the mandatory total.
        let mut order = jobs.to_vec();
        order.sort_by_key(|v| {
            (
                std::cmp::Reverse(v.size.saturating_sub(v.min)),
                v.started,
                v.job,
            )
        });
        // Scheduler-side slack estimate per job; a decline zeroes it so
        // the rounds always terminate.
        let mut slack: Vec<u32> = order.iter().map(|v| v.size.saturating_sub(v.min)).collect();
        let mut remaining = shrink_value;
        let mut progress = true;
        while remaining > 0 && progress {
            progress = false;
            let candidates = slack.iter().filter(|&&s| s > 0).count() as u32;
            if candidates == 0 {
                break;
            }
            let fair = remaining.div_ceil(candidates);
            for (i, v) in order.iter().enumerate() {
                if remaining == 0 {
                    break;
                }
                let requested = fair.min(slack[i]).min(remaining);
                if requested == 0 {
                    continue;
                }
                out.messages += 1;
                let released = accept(v.job, requested);
                if released > 0 {
                    out.ops.push(ShrinkOp {
                        job: v.job,
                        requested,
                        released,
                    });
                    slack[i] = slack[i].saturating_sub(released);
                    remaining = remaining.saturating_sub(released);
                    progress = true;
                } else {
                    slack[i] = 0;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appsim::SizeConstraint;

    fn view(id: u32, started_s: u64, size: u32, min: u32, max: u32) -> RunningView {
        RunningView {
            job: JobId(id),
            started: SimTime::from_secs(started_s),
            size,
            min,
            max,
        }
    }

    fn all_policies() -> Vec<Box<dyn Malleability>> {
        vec![
            Box::new(Fpsma),
            Box::new(Egs),
            Box::new(Equipartition),
            Box::new(Folding),
            Box::new(GreedyGrowLazyShrink),
        ]
    }

    /// An accept callback for jobs with the Any constraint: accept up to
    /// max (grow) and release down to min (shrink).
    fn greedy_accept(jobs: &[RunningView]) -> impl FnMut(JobId, u32) -> u32 + '_ {
        move |id, offered| {
            let v = jobs.iter().find(|v| v.job == id).unwrap();
            SizeConstraint::Any.accept_grow(v.size, offered, v.max)
        }
    }

    fn greedy_release(jobs: &[RunningView]) -> impl FnMut(JobId, u32) -> u32 + '_ {
        move |id, requested| {
            let v = jobs.iter().find(|v| v.job == id).unwrap();
            SizeConstraint::Any.accept_shrink(v.size, requested, v.min)
        }
    }

    #[test]
    fn fpsma_grows_oldest_first() {
        let jobs = [
            view(1, 100, 2, 2, 46),
            view(2, 50, 2, 2, 46),
            view(3, 200, 2, 2, 46),
        ];
        let out = Fpsma.run_grow(&jobs, 10, &mut greedy_accept(&jobs));
        // Job 2 (started at 50 s) gets the whole offer first and accepts
        // all 10 (max 46).
        assert_eq!(
            out.ops,
            vec![GrowOp {
                job: JobId(2),
                offered: 10,
                accepted: 10
            }]
        );
        assert_eq!(out.messages, 1);
    }

    #[test]
    fn fpsma_spills_to_next_oldest_when_capped() {
        let jobs = [view(1, 50, 40, 2, 46), view(2, 100, 2, 2, 46)];
        let out = Fpsma.run_grow(&jobs, 10, &mut greedy_accept(&jobs));
        assert_eq!(
            out.ops,
            vec![
                GrowOp {
                    job: JobId(1),
                    offered: 10,
                    accepted: 6
                },
                GrowOp {
                    job: JobId(2),
                    offered: 4,
                    accepted: 4
                },
            ]
        );
        assert_eq!(out.messages, 2);
    }

    #[test]
    fn fpsma_shrinks_youngest_first() {
        let jobs = [view(1, 50, 20, 2, 46), view(2, 100, 20, 2, 46)];
        let out = Fpsma.run_shrink(&jobs, 10, &mut greedy_release(&jobs));
        assert_eq!(
            out.ops,
            vec![ShrinkOp {
                job: JobId(2),
                requested: 10,
                released: 10
            }]
        );
    }

    #[test]
    fn fpsma_shrink_cascades_across_jobs() {
        let jobs = [view(1, 50, 20, 2, 46), view(2, 100, 6, 2, 46)];
        let out = Fpsma.run_shrink(&jobs, 10, &mut greedy_release(&jobs));
        // Youngest (job 2) can only give 4 (min 2); the rest comes from
        // job 1.
        assert_eq!(
            out.ops,
            vec![
                ShrinkOp {
                    job: JobId(2),
                    requested: 10,
                    released: 4
                },
                ShrinkOp {
                    job: JobId(1),
                    requested: 6,
                    released: 6
                },
            ]
        );
    }

    #[test]
    fn egs_splits_equally_with_bonus_to_oldest() {
        let jobs = [
            view(1, 100, 2, 2, 46),
            view(2, 50, 2, 2, 46),
            view(3, 200, 2, 2, 46),
        ];
        let out = Egs.run_grow(&jobs, 11, &mut greedy_accept(&jobs));
        // share 3, remainder 2 → oldest two (jobs 2 and 1) get 4.
        let by_job: std::collections::BTreeMap<_, _> =
            out.ops.iter().map(|o| (o.job, o.accepted)).collect();
        assert_eq!(by_job[&JobId(2)], 4);
        assert_eq!(by_job[&JobId(1)], 4);
        assert_eq!(by_job[&JobId(3)], 3);
        assert_eq!(out.messages, 3, "EGS messages every job");
    }

    #[test]
    fn egs_grow_value_smaller_than_job_count() {
        let jobs = [
            view(1, 1, 2, 2, 46),
            view(2, 2, 2, 2, 46),
            view(3, 3, 2, 2, 46),
        ];
        let out = Egs.run_grow(&jobs, 2, &mut greedy_accept(&jobs));
        // share 0, remainder 2: only the two oldest get an offer.
        assert_eq!(out.ops.len(), 2);
        assert_eq!(out.messages, 2);
        assert!(out.ops.iter().all(|o| o.accepted == 1));
        assert_eq!(
            out.ops.iter().map(|o| o.job).collect::<Vec<_>>(),
            vec![JobId(1), JobId(2)]
        );
    }

    #[test]
    fn egs_shrink_malus_hits_youngest() {
        let jobs = [
            view(1, 100, 10, 2, 46),
            view(2, 50, 10, 2, 46),
            view(3, 200, 10, 2, 46),
        ];
        let out = Egs.run_shrink(&jobs, 7, &mut greedy_release(&jobs));
        // share 2, remainder 1 → youngest (job 3) releases 3.
        let by_job: std::collections::BTreeMap<_, _> =
            out.ops.iter().map(|o| (o.job, o.released)).collect();
        assert_eq!(by_job[&JobId(3)], 3);
        assert_eq!(by_job[&JobId(1)], 2);
        assert_eq!(by_job[&JobId(2)], 2);
        let total: u32 = out.ops.iter().map(|o| o.released).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn egs_never_mixes_grow_and_shrink() {
        // By construction: run_grow only sends grow offers, run_shrink
        // only shrink requests. This test documents the EGS-vs-
        // equipartition distinction from the paper.
        let jobs = [view(1, 1, 10, 2, 46), view(2, 2, 2, 2, 46)];
        let grow = Egs.run_grow(&jobs, 4, &mut greedy_accept(&jobs));
        assert!(grow.ops.iter().all(|o| o.accepted > 0));
        let shrink = Egs.run_shrink(&jobs, 4, &mut greedy_release(&jobs));
        assert!(shrink.ops.iter().all(|o| o.released > 0));
    }

    #[test]
    fn grow_never_exceeds_budget() {
        for policy in all_policies() {
            let jobs = [
                view(1, 1, 2, 2, 46),
                view(2, 2, 4, 2, 46),
                view(3, 3, 8, 2, 46),
            ];
            for budget in [0u32, 1, 3, 7, 20, 100] {
                let out = policy.run_grow(&jobs, budget, &mut greedy_accept(&jobs));
                let total: u32 = out.ops.iter().map(|o| o.accepted).sum();
                assert!(
                    total <= budget,
                    "{} budget {budget} handed out {total}",
                    policy.name()
                );
            }
        }
    }

    #[test]
    fn ft_style_acceptance_limits_fpsma() {
        // A power-of-two job at 8 offered 7 accepts nothing; FPSMA moves
        // on to the next job.
        let jobs = [view(1, 1, 8, 2, 32), view(2, 2, 2, 2, 46)];
        let mut accept = |id: JobId, offered: u32| {
            let v = jobs.iter().find(|v| v.job == id).unwrap();
            let c = if id == JobId(1) {
                SizeConstraint::PowerOfTwo
            } else {
                SizeConstraint::Any
            };
            c.accept_grow(v.size, offered, v.max)
        };
        let out = Fpsma.run_grow(&jobs, 7, &mut accept);
        assert_eq!(out.messages, 2);
        assert_eq!(
            out.ops,
            vec![GrowOp {
                job: JobId(2),
                offered: 7,
                accepted: 7
            }]
        );
    }

    #[test]
    fn equipartition_tops_up_small_jobs_first() {
        let jobs = [view(1, 1, 20, 2, 46), view(2, 2, 2, 2, 46)];
        let out = Equipartition.run_grow(&jobs, 8, &mut greedy_accept(&jobs));
        // Pool = 30, share 15: job 2 should be offered up to 13 but the
        // budget is 8.
        assert_eq!(
            out.ops,
            vec![GrowOp {
                job: JobId(2),
                offered: 8,
                accepted: 8
            }]
        );
    }

    #[test]
    fn folding_doubles_oldest() {
        let jobs = [view(1, 1, 8, 2, 46), view(2, 2, 4, 2, 46)];
        let out = Folding.run_grow(&jobs, 20, &mut greedy_accept(&jobs));
        assert_eq!(
            out.ops[0],
            GrowOp {
                job: JobId(1),
                offered: 8,
                accepted: 8
            }
        );
        assert_eq!(
            out.ops[1],
            GrowOp {
                job: JobId(2),
                offered: 4,
                accepted: 4
            }
        );
    }

    #[test]
    fn folding_halves_youngest() {
        let jobs = [view(1, 1, 8, 2, 46), view(2, 2, 8, 2, 46)];
        let out = Folding.run_shrink(&jobs, 4, &mut greedy_release(&jobs));
        assert_eq!(
            out.ops,
            vec![ShrinkOp {
                job: JobId(2),
                requested: 4,
                released: 4
            }]
        );
    }

    #[test]
    fn greedy_grow_favours_the_largest_job() {
        let jobs = [
            view(1, 1, 4, 2, 46),
            view(2, 2, 12, 2, 46),
            view(3, 3, 8, 2, 46),
        ];
        let out = GreedyGrowLazyShrink.run_grow(&jobs, 10, &mut greedy_accept(&jobs));
        // Job 2 (size 12) takes the whole budget.
        assert_eq!(
            out.ops,
            vec![GrowOp {
                job: JobId(2),
                offered: 10,
                accepted: 10
            }]
        );
        assert_eq!(out.messages, 1);
    }

    #[test]
    fn greedy_grow_spills_when_the_largest_caps_out() {
        let jobs = [view(1, 1, 40, 2, 46), view(2, 2, 10, 2, 46)];
        let out = GreedyGrowLazyShrink.run_grow(&jobs, 12, &mut greedy_accept(&jobs));
        assert_eq!(
            out.ops,
            vec![
                GrowOp {
                    job: JobId(1),
                    offered: 12,
                    accepted: 6
                },
                GrowOp {
                    job: JobId(2),
                    offered: 6,
                    accepted: 6
                },
            ]
        );
    }

    #[test]
    fn lazy_shrink_spreads_the_reclaim_thin() {
        let jobs = [
            view(1, 1, 10, 2, 46),
            view(2, 2, 10, 2, 46),
            view(3, 3, 10, 2, 46),
        ];
        let out = GreedyGrowLazyShrink.run_shrink(&jobs, 6, &mut greedy_release(&jobs));
        // 6 over 3 jobs: 2 each — no job shoulders the whole reclaim.
        assert_eq!(out.ops.len(), 3);
        assert!(out.ops.iter().all(|o| o.released == 2), "{:?}", out.ops);
        let total: u32 = out.ops.iter().map(|o| o.released).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn lazy_shrink_respects_minima_and_still_delivers() {
        // Job 1 has no slack; jobs 2 and 3 must cover the reclaim.
        let jobs = [
            view(1, 1, 2, 2, 46),
            view(2, 2, 12, 2, 46),
            view(3, 3, 8, 2, 46),
        ];
        let out = GreedyGrowLazyShrink.run_shrink(&jobs, 9, &mut greedy_release(&jobs));
        let total: u32 = out.ops.iter().map(|o| o.released).sum();
        assert_eq!(total, 9);
        assert!(
            out.ops.iter().all(|o| o.job != JobId(1)),
            "no slack, no ask"
        );
    }

    #[test]
    fn empty_inputs_do_nothing() {
        for policy in all_policies() {
            let out = policy.run_grow(&[], 10, &mut |_, _| 0);
            assert!(out.ops.is_empty() && out.messages == 0);
            let jobs = [view(1, 1, 4, 2, 8)];
            let out = policy.run_grow(&jobs, 0, &mut |_, _| 0);
            assert!(out.ops.is_empty());
            let out = policy.run_shrink(&jobs, 0, &mut |_, _| 0);
            assert!(out.ops.is_empty());
        }
    }

    #[test]
    fn labels_and_names() {
        assert_eq!(Fpsma.label(), "FPSMA");
        assert_eq!(Fpsma.name(), "fpsma");
        assert_eq!(Egs.label(), "EGS");
        assert_eq!(GreedyGrowLazyShrink.name(), "greedy_grow_lazy_shrink");
        assert_eq!(GreedyGrowLazyShrink.label(), "GGLS");
    }
}
