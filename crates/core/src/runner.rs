//! The Malleable Runner (MRunner), Section V-A of the paper.
//!
//! KOALA runners are the per-application frontends between user, scheduler
//! and execution sites. The MRunner extends the usual runner with
//! malleability: because GRAM cannot manage malleable jobs, the MRunner
//! manages the application as a **collection of GRAM jobs of size 1**:
//!
//! * on *growth* it submits new GRAM jobs (empty stubs, so the submission
//!   overlaps execution) and hands the enlarged collection to the
//!   application only once all resources are held;
//! * on *shrink* it first reclaims processors from the application, and
//!   only after the application's `shrunk` feedback does it release the
//!   corresponding GRAM jobs.
//!
//! A complete DYNACO instance runs inside the MRunner per application
//! ([`appsim::dynaco::Dynaco`] here); this module adds the GRAM-collection
//! bookkeeping and exposes the protocol the scheduler's malleability
//! manager speaks.

use appsim::dynaco::{Decision, Dynaco, Observation};

/// Protocol state of one MRunner instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MRunner {
    /// The application-side adaptation framework.
    pub dynaco: Dynaco,
    /// Size-1 GRAM jobs currently *held* (stubs or application
    /// processes). Mirrors the cluster allocation size.
    active_gram_jobs: u32,
    /// GRAM submissions in flight (stubs not yet running).
    submitting: u32,
    /// Processors the application has agreed to release but whose GRAM
    /// jobs are not yet released.
    releasing: u32,
}

impl MRunner {
    /// Creates an MRunner for an application started with `initial`
    /// processors (the initial GRAM collection).
    pub fn new(dynaco: Dynaco, initial: u32) -> Self {
        MRunner {
            dynaco,
            active_gram_jobs: initial,
            submitting: 0,
            releasing: 0,
        }
    }

    /// GRAM jobs currently held (the application's processor count plus
    /// any stubs being recruited).
    pub fn held(&self) -> u32 {
        self.active_gram_jobs
    }

    /// Stub submissions in flight.
    pub fn submitting(&self) -> u32 {
        self.submitting
    }

    /// Processors in the release pipeline.
    pub fn releasing(&self) -> u32 {
        self.releasing
    }

    /// True while any malleability operation is in progress.
    pub fn busy(&self) -> bool {
        self.dynaco.is_adapting() || self.submitting > 0 || self.releasing > 0
    }

    /// Scheduler sends a grow offer. Returns the accepted count; when
    /// positive, the caller must submit that many GRAM jobs and later
    /// call [`MRunner::stubs_held`].
    pub fn offer_grow(&mut self, offered: u32) -> u32 {
        if self.busy() {
            return 0;
        }
        match self.dynaco.decide(Observation::GrowOffer { offered }) {
            Decision::Grow { accepted } => {
                self.submitting = accepted;
                accepted
            }
            _ => 0,
        }
    }

    /// Scheduler sends a shrink request. Returns the number of
    /// processors the application will release; when positive, the caller
    /// waits for the application's sync and then calls
    /// [`MRunner::shrunk_feedback`].
    pub fn request_shrink(&mut self, requested: u32, mandatory: bool) -> u32 {
        if self.busy() {
            return 0;
        }
        match self.dynaco.decide(Observation::ShrinkRequest {
            requested,
            mandatory,
        }) {
            Decision::Shrink { released } => {
                self.releasing = released;
                released
            }
            _ => 0,
        }
    }

    /// GRAM reports the grow-batch stubs active: the collection enlarges
    /// and the application can start recruiting them.
    pub fn stubs_held(&mut self) -> u32 {
        let n = self.submitting;
        self.active_gram_jobs += n;
        self.submitting = 0;
        n
    }

    /// The application finished its grow redistribution: commit the new
    /// size.
    pub fn grow_complete(&mut self) {
        self.dynaco.commit();
        debug_assert_eq!(self.dynaco.size(), self.active_gram_jobs);
    }

    /// The application reports `shrunk` after its sync: commit the new
    /// size; the returned count of GRAM jobs must now be released.
    pub fn shrunk_feedback(&mut self) -> u32 {
        let n = self.releasing;
        self.dynaco.commit();
        self.active_gram_jobs -= n;
        debug_assert_eq!(self.dynaco.size(), self.active_gram_jobs);
        n
    }

    /// GRAM confirms the released jobs are gone.
    pub fn release_confirmed(&mut self) {
        self.releasing = 0;
    }

    /// Abandons an in-flight grow (e.g. the application completed while
    /// stubs were submitting). Returns the number of stub submissions to
    /// cancel.
    pub fn abort_grow(&mut self) -> u32 {
        let n = self.submitting;
        self.submitting = 0;
        self.dynaco.abort();
        n
    }

    /// Rebuilds a mid-protocol MRunner from captured parts, for
    /// checkpoint restore: the DYNACO instance plus the GRAM-collection
    /// counters ([`MRunner::held`], [`MRunner::submitting`],
    /// [`MRunner::releasing`]) exactly as they were captured.
    pub fn from_parts(dynaco: Dynaco, held: u32, submitting: u32, releasing: u32) -> Self {
        MRunner {
            dynaco,
            active_gram_jobs: held,
            submitting,
            releasing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appsim::SizeConstraint;

    fn runner(initial: u32) -> MRunner {
        MRunner::new(Dynaco::new(2, 46, SizeConstraint::Any, initial), initial)
    }

    #[test]
    fn grow_protocol_roundtrip() {
        let mut r = runner(2);
        assert_eq!(r.offer_grow(10), 10);
        assert!(r.busy());
        assert_eq!(r.submitting(), 10);
        assert_eq!(r.held(), 2, "collection grows only when stubs are active");
        assert_eq!(r.stubs_held(), 10);
        assert_eq!(r.held(), 12);
        r.grow_complete();
        assert!(!r.busy());
        assert_eq!(r.dynaco.size(), 12);
    }

    #[test]
    fn shrink_protocol_roundtrip() {
        let mut r = runner(12);
        assert_eq!(r.request_shrink(5, true), 5);
        assert!(r.busy());
        assert_eq!(r.held(), 12, "GRAM jobs released only after feedback");
        assert_eq!(r.shrunk_feedback(), 5);
        assert_eq!(r.held(), 7);
        assert!(r.busy(), "release confirmation still pending");
        r.release_confirmed();
        assert!(!r.busy());
    }

    #[test]
    fn busy_runner_declines_everything() {
        let mut r = runner(2);
        r.offer_grow(4);
        assert_eq!(r.offer_grow(4), 0);
        assert_eq!(r.request_shrink(1, true), 0);
    }

    #[test]
    fn abort_grow_cancels_stubs() {
        let mut r = runner(2);
        r.offer_grow(8);
        assert_eq!(r.abort_grow(), 8);
        assert!(!r.busy());
        assert_eq!(r.held(), 2);
        assert_eq!(r.dynaco.size(), 2);
    }

    #[test]
    fn power_of_two_runner_voluntarily_trims_offers() {
        let mut r = MRunner::new(Dynaco::new(2, 32, SizeConstraint::PowerOfTwo, 4), 4);
        assert_eq!(r.offer_grow(7), 4, "4 + 7 = 11 floors to 8: accepts 4");
        r.stubs_held();
        r.grow_complete();
        assert_eq!(r.held(), 8);
    }

    #[test]
    fn consecutive_operations_serialize() {
        let mut r = runner(4);
        // grow, complete, shrink, complete, grow again — each must wait
        // for the previous protocol round to finish.
        assert_eq!(r.offer_grow(6), 6);
        r.stubs_held();
        r.grow_complete();
        assert_eq!(r.held(), 10);
        assert_eq!(r.request_shrink(3, true), 3);
        assert_eq!(r.shrunk_feedback(), 3);
        r.release_confirmed();
        assert_eq!(r.held(), 7);
        assert_eq!(r.offer_grow(2), 2);
        r.stubs_held();
        r.grow_complete();
        assert_eq!(r.held(), 9);
        assert_eq!(r.dynaco.size(), 9);
    }

    #[test]
    fn shrink_to_minimum_then_decline() {
        let mut r = runner(4);
        assert_eq!(r.request_shrink(10, true), 2, "min 2 binds");
        r.shrunk_feedback();
        r.release_confirmed();
        assert_eq!(r.held(), 2);
        assert_eq!(r.request_shrink(1, true), 0, "nothing left to give");
        assert!(!r.busy(), "a declined request leaves the runner idle");
    }

    #[test]
    fn voluntary_shrink_requests_can_be_declined() {
        let mut r = runner(20);
        // Voluntary shrinks of more than half the size are declined by
        // the decide component.
        assert_eq!(r.request_shrink(15, false), 0);
        assert!(!r.busy());
        // Small voluntary shrinks are honoured.
        assert_eq!(r.request_shrink(4, false), 4);
    }

    #[test]
    fn from_parts_resumes_the_protocol_exactly() {
        // Capture mid-grow (stubs in flight) and rebuild: the restored
        // runner finishes the protocol identically.
        let mut r = runner(4);
        assert_eq!(r.offer_grow(6), 6);
        let mut copy =
            MRunner::from_parts(r.dynaco.clone(), r.held(), r.submitting(), r.releasing());
        assert_eq!(copy, r);
        assert_eq!(r.stubs_held(), copy.stubs_held());
        r.grow_complete();
        copy.grow_complete();
        assert_eq!(copy, r);
        assert_eq!(copy.held(), 10);
    }

    #[test]
    fn declined_offer_leaves_runner_idle() {
        let mut r = runner(46);
        assert_eq!(r.offer_grow(10), 0, "already at max");
        assert!(!r.busy());
    }
}
