//! Incremental per-cluster availability index for the placement scan.
//!
//! [`World::scan_queue`](crate::sim) walks the placement queue and runs
//! the configured [`Placement`](crate::placement::Placement) policy per
//! job against the effective availability vector (the KIS snapshot capped
//! by the expansion-threshold headroom). Under overload most of those
//! attempts are doomed — the queue is long precisely because nothing
//! fits — yet each one pays the full policy walk (ranking clusters,
//! consulting the file catalog, copying scratch vectors).
//!
//! The index removes that cost with two cheap aggregates maintained at
//! every effective-availability rebuild:
//!
//! * `max_eff` — the largest single-cluster availability, and
//! * `sum_eff` — the total availability across clusters.
//!
//! A job is *quick-rejected* without running the policy when either
//!
//! * its smallest component minimum exceeds `max_eff` (no cluster can
//!   host any component), or
//! * the sum of its component minimums exceeds `sum_eff` (the platform
//!   as a whole cannot host the job).
//!
//! Both tests are **provably conservative** for every policy honouring
//! the Section V-B placement rule the [`Placement`] trait documents: a
//! component is granted only on a cluster whose availability is at least
//! the component's minimum, and grants deduct from disjoint capacity. A
//! quick-rejected job therefore takes *exactly* the path a `None` from
//! the policy would have taken — placement decisions, retry counters and
//! the whole trajectory are bit-identical with the index on or off (the
//! hot-path differential suite and a registry-wide proptest pin this).
//!
//! Between scans the index tracks **dirtiness**: every capacity mutation
//! — claim, release, grow, shrink, node crash, autoscale resize, node
//! withdrawal/restore — marks the touched cluster, so the scan knows
//! which entries of its availability view went stale since the last
//! rebuild and diagnostics can attribute re-work to its cause. The
//! marks are a strict invalidation protocol: a mutation marks exactly
//! the cluster it touched, nothing else (unit-tested per mutation kind).
//!
//! [`Placement`]: crate::placement::Placement

use multicluster::ClusterId;

use crate::placement::PlacementRequest;

/// Per-cluster availability aggregates plus the dirty set that tracks
/// which clusters mutated since the last rebuild. See the module docs
/// for the exactness argument.
#[derive(Debug, Clone)]
pub struct AvailIndex {
    /// Dirty flags, one per cluster.
    dirty: Vec<bool>,
    /// Number of set flags (kept so `dirty_count` is O(1)).
    dirty_count: usize,
    /// Largest single-cluster effective availability at the last
    /// [`AvailIndex::rebuild`].
    max_eff: u32,
    /// Total effective availability at the last rebuild.
    sum_eff: u64,
    /// Rebuilds performed (diagnostics).
    rebuilds: u64,
    /// Placement attempts skipped by the quick-reject (diagnostics).
    quick_rejects: u64,
}

impl AvailIndex {
    /// An index over `clusters` clusters; everything starts dirty (no
    /// rebuild has happened yet) with zero aggregates, so `can_satisfy`
    /// is conservative until the first rebuild.
    pub fn new(clusters: usize) -> Self {
        AvailIndex {
            dirty: vec![true; clusters],
            dirty_count: clusters,
            max_eff: 0,
            sum_eff: 0,
            rebuilds: 0,
            quick_rejects: 0,
        }
    }

    /// Marks `cluster`'s availability stale. Called by every capacity
    /// mutation site (claim / release / grow / shrink / crash /
    /// autoscale / withdraw / restore); marking is idempotent.
    pub fn mark(&mut self, cluster: ClusterId) {
        let i = cluster.index();
        if !self.dirty[i] {
            self.dirty[i] = true;
            self.dirty_count += 1;
        }
    }

    /// Whether `cluster` mutated since the last rebuild.
    pub fn is_dirty(&self, cluster: ClusterId) -> bool {
        self.dirty[cluster.index()]
    }

    /// Number of clusters marked since the last rebuild.
    pub fn dirty_count(&self) -> usize {
        self.dirty_count
    }

    /// Recomputes the aggregates from the scan's effective-availability
    /// vector and clears the dirty set — the vector passed here is the
    /// exact one the placement policy will see next.
    pub fn rebuild(&mut self, eff: &[u32]) {
        self.max_eff = eff.iter().copied().max().unwrap_or(0);
        self.sum_eff = eff.iter().map(|&a| u64::from(a)).sum();
        self.dirty.iter_mut().for_each(|d| *d = false);
        self.dirty_count = 0;
        self.rebuilds += 1;
    }

    /// Largest single-cluster availability at the last rebuild.
    pub fn max_eff(&self) -> u32 {
        self.max_eff
    }

    /// Total availability at the last rebuild.
    pub fn sum_eff(&self) -> u64 {
        self.sum_eff
    }

    /// Whether `req` could *possibly* be granted against the last
    /// rebuilt availability. `false` guarantees the policy would return
    /// `None`; `true` guarantees nothing (the policy still decides).
    /// Empty requests are trivially satisfiable.
    pub fn can_satisfy(&self, req: &PlacementRequest) -> bool {
        let mut min_need = u32::MAX;
        let mut total_need = 0u64;
        for c in &req.components {
            min_need = min_need.min(c.min);
            total_need += u64::from(c.min);
        }
        if total_need == 0 {
            return true;
        }
        min_need <= self.max_eff && total_need <= self.sum_eff
    }

    /// Records one quick-rejected placement attempt.
    pub fn note_quick_reject(&mut self) {
        self.quick_rejects += 1;
    }

    /// Placement attempts skipped so far.
    pub fn quick_rejects(&self) -> u64 {
        self.quick_rejects
    }

    /// Rebuilds performed so far.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Captures the complete index state — dirty flags, aggregates and
    /// diagnostic tallies — for checkpointing. Restoring through
    /// [`AvailIndex::from_state`] reproduces an index whose future
    /// quick-reject decisions are bit-identical to the original's.
    pub fn capture_state(&self) -> AvailIndexState {
        AvailIndexState {
            dirty: self.dirty.clone(),
            max_eff: self.max_eff,
            sum_eff: self.sum_eff,
            rebuilds: self.rebuilds,
            quick_rejects: self.quick_rejects,
        }
    }

    /// Reconstructs an index from a captured [`AvailIndex::capture_state`]
    /// (the dirty count is re-derived from the flags).
    pub fn from_state(s: AvailIndexState) -> Self {
        let dirty_count = s.dirty.iter().filter(|&&d| d).count();
        AvailIndex {
            dirty: s.dirty,
            dirty_count,
            max_eff: s.max_eff,
            sum_eff: s.sum_eff,
            rebuilds: s.rebuilds,
            quick_rejects: s.quick_rejects,
        }
    }
}

/// The raw internals of an [`AvailIndex`], exposed for checkpointing —
/// the capture/restore seam keeps the index's fields private while
/// letting a snapshot carry the dirty set and aggregates exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AvailIndexState {
    /// Dirty flags, one per cluster.
    pub dirty: Vec<bool>,
    /// Largest single-cluster availability at the last rebuild.
    pub max_eff: u32,
    /// Total availability at the last rebuild.
    pub sum_eff: u64,
    /// Rebuilds performed so far.
    pub rebuilds: u64,
    /// Placement attempts skipped so far.
    pub quick_rejects: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{ComponentRequest, PlacementRequest};
    use appsim::SizeConstraint;

    fn req(mins: &[u32]) -> PlacementRequest {
        PlacementRequest {
            components: mins
                .iter()
                .map(|&m| ComponentRequest::fixed(m, SizeConstraint::Any))
                .collect(),
            files: Vec::new(),
            flexible: false,
        }
    }

    #[test]
    fn starts_fully_dirty_and_conservative() {
        let idx = AvailIndex::new(3);
        assert_eq!(idx.dirty_count(), 3);
        assert!(!idx.can_satisfy(&req(&[1])), "no rebuild yet: reject");
        assert!(idx.can_satisfy(&req(&[])), "empty request always passes");
    }

    #[test]
    fn rebuild_sets_aggregates_and_clears_dirty() {
        let mut idx = AvailIndex::new(3);
        idx.rebuild(&[4, 10, 0]);
        assert_eq!(idx.max_eff(), 10);
        assert_eq!(idx.sum_eff(), 14);
        assert_eq!(idx.dirty_count(), 0);
        assert_eq!(idx.rebuilds(), 1);
    }

    #[test]
    fn mark_is_idempotent_and_per_cluster() {
        let mut idx = AvailIndex::new(4);
        idx.rebuild(&[1, 1, 1, 1]);
        idx.mark(ClusterId(2));
        idx.mark(ClusterId(2));
        assert_eq!(idx.dirty_count(), 1);
        assert!(idx.is_dirty(ClusterId(2)));
        assert!(!idx.is_dirty(ClusterId(0)));
    }

    #[test]
    fn capture_restore_roundtrips_exactly() {
        let mut idx = AvailIndex::new(3);
        idx.rebuild(&[4, 10, 0]);
        idx.mark(ClusterId(1));
        idx.note_quick_reject();
        idx.note_quick_reject();
        let state = idx.capture_state();
        let copy = AvailIndex::from_state(state.clone());
        assert_eq!(copy.dirty_count(), 1);
        assert!(copy.is_dirty(ClusterId(1)));
        assert_eq!(copy.max_eff(), idx.max_eff());
        assert_eq!(copy.sum_eff(), idx.sum_eff());
        assert_eq!(copy.rebuilds(), idx.rebuilds());
        assert_eq!(copy.quick_rejects(), idx.quick_rejects());
        // The restored index behaves identically going forward.
        let mut a = idx;
        let mut b = copy;
        a.rebuild(&[1, 2, 3]);
        b.rebuild(&[1, 2, 3]);
        assert_eq!(a.can_satisfy(&req(&[3])), b.can_satisfy(&req(&[3])));
        assert_eq!(a.capture_state(), b.capture_state());
        assert_eq!(b.capture_state().dirty, vec![false; 3]);
        let _ = state;
    }

    #[test]
    fn quick_reject_is_exact_on_the_boundary() {
        let mut idx = AvailIndex::new(2);
        idx.rebuild(&[6, 4]);
        // max_eff = 6, sum_eff = 10.
        assert!(idx.can_satisfy(&req(&[6])), "fits the largest cluster");
        assert!(!idx.can_satisfy(&req(&[7])), "exceeds every cluster");
        assert!(idx.can_satisfy(&req(&[6, 4])), "total exactly fits");
        assert!(!idx.can_satisfy(&req(&[6, 5])), "total exceeds platform");
    }
}
