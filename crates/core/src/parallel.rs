//! Parallel experiment execution: a `std::thread::scope`-based
//! work-stealing cell runner.
//!
//! Every figure of the paper aggregates many independent
//! `(configuration × seed)` simulation runs — an embarrassingly parallel
//! sweep. This module executes such *cells* across N OS threads with a
//! shared work queue (an atomic cursor every idle worker steals the next
//! cell from, so long cells never serialize behind short ones) and merges
//! the results back **in submission order**, which makes the parallel
//! output bit-identical to a sequential loop: each cell is itself a
//! deterministic function of its seed, and nothing about scheduling order
//! can leak into the merged result.
//!
//! No external dependencies (rayon is unavailable offline); plain
//! `std::thread::scope` keeps borrows of the shared configuration alive
//! across workers without `Arc`.
//!
//! ## Thread-count resolution
//!
//! [`default_threads`] resolves, in order:
//!
//! 1. a process-wide override installed with [`set_thread_override`]
//!    (the figure binaries wire their `--threads` flag to this);
//! 2. the `KOALA_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::config::ExperimentConfig;
use crate::report::{MultiReport, MultiSummary, RunReport, SummaryReport};

static THREAD_OVERRIDE: OnceLock<usize> = OnceLock::new();

/// Installs a process-wide thread-count override (first caller wins, as
/// with any [`OnceLock`]). Used by the binaries' `--threads` flag; takes
/// precedence over `KOALA_THREADS` and the detected parallelism.
pub fn set_thread_override(threads: usize) {
    let _ = THREAD_OVERRIDE.set(threads.max(1));
}

/// The number of worker threads sweeps use unless a call site passes an
/// explicit count. See the module docs for the resolution order.
pub fn default_threads() -> usize {
    if let Some(&n) = THREAD_OVERRIDE.get() {
        return n;
    }
    if let Ok(v) = std::env::var("KOALA_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item across `threads` workers and returns the
/// results **in item order** (deterministic regardless of which worker
/// ran which item, or in what order they finished).
///
/// Work distribution is pull-based: workers repeatedly claim the next
/// unprocessed index from a shared atomic cursor, so an item that takes
/// 10× longer than the rest only ever occupies one worker. With
/// `threads <= 1` (or fewer than two items) the map degenerates to a
/// plain sequential loop on the calling thread — no worker threads are
/// spawned, which keeps the sequential reference path trivially
/// comparable in benchmarks.
///
/// # Panics
/// Propagates a panic from `f` (the first panicking worker's payload).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let chunks: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        done.push((i, f(&items[i])));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(done) => done,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    for (i, r) in chunks.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "cell {i} ran twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every cell claimed exactly once"))
        .collect()
}

/// One unit of sweep work: a configuration run under one seed.
#[derive(Debug, Clone, Copy)]
pub struct Cell<'a> {
    /// The experiment configuration (shared, not cloned per cell).
    pub cfg: &'a ExperimentConfig,
    /// The seed this cell runs under (overrides `cfg.seed`).
    pub seed: u64,
}

/// Runs a batch of cells across `threads` workers, returning one report
/// per cell in input order. This is the single execution pathway behind
/// [`crate::run_seeds`] and the figure binaries: cross-configuration
/// sweeps flatten all their `(config, seed)` pairs into one batch so a
/// slow configuration's seeds can run while a fast one's finish.
///
/// # Panics
/// Panics on an invalid configuration, like [`crate::run_experiment`].
pub fn run_cells(cells: &[Cell<'_>], threads: usize) -> Vec<RunReport> {
    parallel_map(cells, threads, |cell| {
        crate::sim::run_experiment_seeded(cell.cfg, cell.seed)
    })
}

/// Runs `cfg` once per seed on `threads` workers and aggregates the
/// reports in **seed order** — bit-identical to the sequential loop for
/// any thread count.
pub fn run_seeds_with_threads(
    cfg: &ExperimentConfig,
    seeds: &[u64],
    threads: usize,
) -> MultiReport {
    let cells: Vec<Cell<'_>> = seeds.iter().map(|&seed| Cell { cfg, seed }).collect();
    MultiReport::new(cfg.name.clone(), run_cells(&cells, threads))
}

/// Single-threaded reference implementation of [`crate::run_seeds`]:
/// the baseline the determinism tests and the perf harness compare the
/// parallel runner against.
pub fn run_seeds_sequential(cfg: &ExperimentConfig, seeds: &[u64]) -> MultiReport {
    run_seeds_with_threads(cfg, seeds, 1)
}

/// Summarized counterpart of [`run_cells`]: each cell runs through the
/// memory-bounded summary path, one [`SummaryReport`] per cell in input
/// order. This is what makes 1000+-cell matrices feasible — the merged
/// result holds streaming accumulators, never per-job tables.
///
/// # Panics
/// Panics on an invalid configuration, like [`crate::run_experiment`].
pub fn run_cells_summary(cells: &[Cell<'_>], threads: usize) -> Vec<SummaryReport> {
    parallel_map(cells, threads, |cell| {
        crate::sim::run_experiment_summary_seeded(cell.cfg, cell.seed)
    })
}

/// Warm-forked counterpart of [`run_cells_summary`]: cells whose
/// configuration carries a [`crate::config::WarmFork`] are grouped by
/// `(fork fingerprint, seed)`, each group's shared warmup prefix — the
/// base policy pair up to the fork time — runs **once** and is
/// captured as a [`crate::Snapshot`], and every cell in the group is
/// then restored from that snapshot under its own policies. Cells
/// without a warm fork fall back to plain cold runs.
///
/// Both phases run on the work-stealing [`parallel_map`], and results
/// come back in input order — the output is bit-identical to
/// [`run_cells_summary`] for any thread count (the cold path runs the
/// identical prefix in process and switches policies at the identical
/// boundary; the differential suite enforces this byte-for-byte).
///
/// # Panics
/// Panics on an invalid configuration or on a snapshot failure (e.g. a
/// warm-forked cell in an unsupported mode) — sweeps should fail
/// loudly, like [`run_cells`].
pub fn run_cells_summary_warm(cells: &[Cell<'_>], threads: usize) -> Vec<SummaryReport> {
    use std::collections::BTreeMap;

    use simcore::SimTime;

    use crate::snapshot::{fork_fingerprint, Snapshot};

    // Phase 0 (cheap, sequential): group warm-forkable cells. The key
    // is the fork-invariant fingerprint plus the seed: cells that agree
    // on everything except name and policy pair share one prefix.
    let mut groups: BTreeMap<(u64, u64), Vec<usize>> = BTreeMap::new();
    for (i, cell) in cells.iter().enumerate() {
        if cell.cfg.warm_fork.is_some() {
            groups
                .entry((fork_fingerprint(cell.cfg), cell.seed))
                .or_default()
                .push(i);
        }
    }
    // Phase 1: one warmup per group, in parallel.
    let warmups: Vec<(Vec<usize>, ExperimentConfig, u64, SimTime)> = groups
        .into_values()
        .map(|idxs| {
            let cell = &cells[idxs[0]];
            let wf = cell.cfg.warm_fork.as_ref().expect("grouped on Some");
            let mut warm_cfg = cell.cfg.clone();
            warm_cfg.sched.placement = wf.base_placement.clone();
            warm_cfg.sched.malleability = wf.base_malleability.clone();
            (idxs, warm_cfg, cell.seed, SimTime::ZERO + wf.at)
        })
        .collect();
    let snaps: Vec<Snapshot> = parallel_map(&warmups, threads, |(_, cfg, seed, at)| {
        crate::sim::warm_snapshot_seeded(cfg, *seed, *at)
            .unwrap_or_else(|e| panic!("warm-fork prefix of `{}` failed: {e}", cfg.name))
    });
    let mut snap_for: Vec<Option<&Snapshot>> = vec![None; cells.len()];
    for ((idxs, ..), snap) in warmups.iter().zip(&snaps) {
        for &i in idxs {
            snap_for[i] = Some(snap);
        }
    }
    // Phase 2: every cell, in parallel — forks resume from their
    // group's snapshot, the rest run cold.
    let order: Vec<usize> = (0..cells.len()).collect();
    parallel_map(&order, threads, |&i| match snap_for[i] {
        Some(snap) => crate::sim::fork_summary(cells[i].cfg, snap)
            .unwrap_or_else(|e| panic!("warm fork of `{}` failed: {e}", cells[i].cfg.name)),
        None => crate::sim::run_experiment_summary_seeded(cells[i].cfg, cells[i].seed),
    })
}

/// Summarized counterpart of [`run_seeds_with_threads`]: aggregates the
/// per-seed summaries in **seed order**, so the result is bit-identical
/// to [`run_seeds_summary_sequential`] for any thread count (each cell
/// is a deterministic function of its seed, and the streaming
/// accumulators merge in a fixed order).
pub fn run_seeds_summary_with_threads(
    cfg: &ExperimentConfig,
    seeds: &[u64],
    threads: usize,
) -> MultiSummary {
    let cells: Vec<Cell<'_>> = seeds.iter().map(|&seed| Cell { cfg, seed }).collect();
    MultiSummary::new(cfg.name.clone(), run_cells_summary(&cells, threads))
}

/// Single-threaded reference implementation of
/// [`crate::run_seeds_summary`].
pub fn run_seeds_summary_sequential(cfg: &ExperimentConfig, seeds: &[u64]) -> MultiSummary {
    run_seeds_summary_with_threads(cfg, seeds, 1)
}

/// **Streamed** counterpart of [`run_seeds_summary_with_threads`]: each
/// cell opens its own job stream from the configuration's workload — an
/// explicit trace first, else the named generator (`cfg.generator`) —
/// and runs through the bounded-memory streaming intake (look-ahead
/// `lookahead`). Cells are independent — each worker owns its stream —
/// so the merged result is bit-identical to the sequential loop for any
/// thread count.
///
/// # Panics
/// Panics when the configuration has neither trace nor generator, like
/// [`crate::sim::run_generator_summary_seeded`].
pub fn run_seeds_stream_summary_with_threads(
    cfg: &ExperimentConfig,
    seeds: &[u64],
    threads: usize,
    lookahead: usize,
) -> MultiSummary {
    let runs = parallel_map(seeds, threads, |&seed| {
        crate::sim::run_generator_summary_seeded(cfg, seed, lookahead)
    });
    MultiSummary::new(cfg.name.clone(), runs)
}

/// Single-threaded reference implementation of
/// [`run_seeds_stream_summary_with_threads`].
pub fn run_seeds_stream_summary_sequential(
    cfg: &ExperimentConfig,
    seeds: &[u64],
    lookahead: usize,
) -> MultiSummary {
    run_seeds_stream_summary_with_threads(cfg, seeds, 1, lookahead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use appsim::workload::WorkloadSpec;

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<u64> = (0..97).collect();
        for threads in [1, 2, 3, 8] {
            let out = parallel_map(&items, threads, |&x| x * x);
            let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_singleton() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(&none, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[41u32], 4, |&x| x + 1), vec![42]);
    }

    #[test]
    fn parallel_map_runs_every_item_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let items: Vec<u32> = (0..1000).collect();
        let out = parallel_map(&items, 7, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
        assert_eq!(out, items);
    }

    #[test]
    #[should_panic(expected = "boom from worker")]
    fn parallel_map_propagates_worker_panics() {
        let items: Vec<u32> = (0..16).collect();
        parallel_map(&items, 4, |&x| {
            if x == 9 {
                panic!("boom from worker");
            }
            x
        });
    }

    #[test]
    fn seeded_sweep_is_identical_across_thread_counts() {
        let mut cfg = ExperimentConfig::paper_pra("egs", WorkloadSpec::wm());
        cfg.workload.jobs = 8;
        let seeds = [3u64, 5, 8, 13];
        let sequential = run_seeds_sequential(&cfg, &seeds);
        for threads in [2, 4] {
            let parallel = run_seeds_with_threads(&cfg, &seeds, threads);
            assert_eq!(
                format!("{sequential:?}"),
                format!("{parallel:?}"),
                "threads={threads} diverged from sequential"
            );
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn warm_runner_matches_cold_runner_and_handles_mixed_batches() {
        use simcore::SimDuration;

        use crate::config::WarmFork;

        // Three warm-forked policy cells sharing one prefix, plus one
        // cell with no warm fork (the cold-fallback path).
        let mut cells_cfg: Vec<ExperimentConfig> = ["fpsma", "egs", "equipartition"]
            .iter()
            .map(|&m| {
                let mut cfg = ExperimentConfig::paper_pra(m, WorkloadSpec::wm());
                cfg.workload.jobs = 8;
                cfg.warm_fork = Some(WarmFork::at(SimDuration::from_secs(900)));
                cfg
            })
            .collect();
        let mut plain = ExperimentConfig::paper_pra("folding", WorkloadSpec::wm());
        plain.workload.jobs = 8;
        cells_cfg.push(plain);
        let cells: Vec<Cell<'_>> = cells_cfg.iter().map(|cfg| Cell { cfg, seed: 23 }).collect();
        let cold = run_cells_summary(&cells, 1);
        for threads in [1, 3] {
            let warm = run_cells_summary_warm(&cells, threads);
            assert_eq!(
                format!("{warm:?}"),
                format!("{cold:?}"),
                "threads={threads}: warm-forked sweep diverged from the cold sweep"
            );
        }
    }
}
