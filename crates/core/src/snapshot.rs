//! Deterministic, versioned serialization of mid-run world state.
//!
//! A [`Snapshot`] captures **everything** a summarized-mode
//! [`World`](crate::World) needs to continue bit-identically: the
//! engine's pending events in `(time, seq)` order with the next
//! sequence number, the job slab's mutable runtime overlay, cluster and
//! allocation state (free-stack order included — it decides which node
//! ids the next allocation receives), the availability index, in-flight
//! control-plane retry timers, open network flows with their generation
//! stamps, the streaming report accumulators (reservoir priorities
//! *and* stream positions), and every seeded RNG stream's word state.
//!
//! The encoding is a little-endian byte format behind a versioned
//! header, hand-rolled so the byte layout is an explicit contract
//! rather than an accident of a derive: canonical (maps are sorted,
//! queue entries are tombstone-free and pop-ordered), so
//! snapshot → bytes → restore → snapshot is a byte-level fixed point.
//!
//! Two FNV-1a fingerprints of the experiment configuration ride in the
//! header: the **full** fingerprint gates strict
//! [`World::restore`](crate::World::restore) (same configuration,
//! byte for byte), while the **fork-invariant** fingerprint — computed
//! with the name, placement and malleability policies canonicalized —
//! gates [`World::fork_with`](crate::World::fork_with), which resumes
//! the warmed prefix under a *different* policy cell of the same sweep.

use crate::config::ExperimentConfig;

/// Magic bytes opening every serialized snapshot.
pub const MAGIC: [u8; 4] = *b"KSNP";

/// The current snapshot format version.
pub const VERSION: u16 = 1;

/// Why a snapshot could not be taken, decoded, or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The blob does not start with [`MAGIC`].
    BadMagic,
    /// The header carries a format version this build cannot read.
    UnsupportedVersion(u16),
    /// The blob ended before the structure it promised.
    Truncated,
    /// Decoding consumed the structure but bytes remain.
    TrailingBytes,
    /// The target configuration's fingerprint does not match the one
    /// the snapshot was taken under.
    ConfigMismatch,
    /// The bytes parse but describe an impossible state (bad enum tag,
    /// mismatched cluster count, inconsistent lengths).
    Corrupt(String),
    /// The world cannot be snapshotted: only summarized-mode,
    /// fixed-intake, trace-disabled worlds have a serializable closure.
    UnsupportedMode(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a KOALA snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads {VERSION})"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::TrailingBytes => write!(f, "trailing bytes after snapshot body"),
            SnapshotError::ConfigMismatch => {
                write!(f, "configuration fingerprint does not match the snapshot")
            }
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::UnsupportedMode(what) => {
                write!(f, "world cannot be snapshotted: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A captured mid-run world: versioned header fields plus the opaque
/// encoded body. Produce with [`World::snapshot`](crate::World::snapshot),
/// consume with [`World::restore`](crate::World::restore) or
/// [`World::fork_with`](crate::World::fork_with); round-trip through
/// bytes with [`Snapshot::to_bytes`] / [`Snapshot::from_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Format version the body is encoded in.
    pub version: u16,
    /// The seed the captured run executes under (the workload is
    /// regenerated from it at restore, so job specifications never
    /// enter the blob).
    pub seed: u64,
    /// FNV-1a fingerprint of the full configuration Debug rendering.
    pub full_fingerprint: u64,
    /// Fingerprint with name/placement/malleability canonicalized —
    /// equal across the policy cells of one sweep.
    pub fork_fingerprint: u64,
    /// The encoded world + engine state.
    pub body: Vec<u8>,
}

impl Snapshot {
    /// Serializes header + body into one self-describing blob.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.bytes(&MAGIC);
        w.u16(self.version);
        w.u64(self.seed);
        w.u64(self.full_fingerprint);
        w.u64(self.fork_fingerprint);
        w.u64(self.body.len() as u64);
        w.bytes(&self.body);
        w.into_bytes()
    }

    /// Parses a blob produced by [`Snapshot::to_bytes`], validating
    /// magic, version and framing. The body is not decoded here — that
    /// happens (and is validated) at restore time.
    pub fn from_bytes(data: &[u8]) -> Result<Snapshot, SnapshotError> {
        let mut r = ByteReader::new(data);
        let magic = r.bytes(4)?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u16()?;
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let seed = r.u64()?;
        let full_fingerprint = r.u64()?;
        let fork_fingerprint = r.u64()?;
        let len = r.u64()? as usize;
        let body = r.bytes(len)?.to_vec();
        r.finish()?;
        Ok(Snapshot {
            version,
            seed,
            full_fingerprint,
            fork_fingerprint,
            body,
        })
    }
}

/// FNV-1a over the canonical Debug rendering of a configuration. Debug
/// output is deterministic for these config types (no maps), so equal
/// configurations always fingerprint equally; the (vanishing) collision
/// risk only weakens an error check, never correctness of a valid
/// restore.
pub fn config_fingerprint(cfg: &ExperimentConfig) -> u64 {
    fnv1a(format!("{cfg:?}").as_bytes())
}

/// The fork-invariant fingerprint: like [`config_fingerprint`] with
/// `name`, `sched.placement`, `sched.malleability` and `seed`
/// canonicalized, so every policy cell of one sweep — which differ in
/// exactly those fields — fingerprints identically and may fork from
/// one shared warmup snapshot.
pub fn fork_fingerprint(cfg: &ExperimentConfig) -> u64 {
    let mut c = cfg.clone();
    c.name = String::new();
    c.sched.placement = String::new();
    c.sched.malleability = String::new();
    c.seed = 0;
    fnv1a(format!("{c:?}").as_bytes())
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Byte codec
// ---------------------------------------------------------------------

/// Little-endian byte encoder backing the snapshot format.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// The accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Raw bytes, verbatim (framing is the caller's contract).
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// One byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// A `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// A `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// An `f64` as its IEEE-754 bit pattern (bit-exact round trip,
    /// NaN payloads included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// A length prefix (`u64`) for the sequence the caller writes next.
    pub fn len(&mut self, n: usize) {
        self.u64(n as u64);
    }

    /// A UTF-8 string, length-prefixed.
    pub fn str(&mut self, s: &str) {
        self.len(s.len());
        self.bytes(s.as_bytes());
    }

    /// An `Option` as a presence byte plus, when present, the payload
    /// written by `f`.
    pub fn opt<T>(&mut self, v: Option<&T>, f: impl FnOnce(&mut Self, &T)) {
        match v {
            Some(x) => {
                self.bool(true);
                f(self, x);
            }
            None => self.bool(false),
        }
    }
}

/// Little-endian byte decoder; every read is bounds-checked and returns
/// [`SnapshotError::Truncated`] past the end — corrupt input can never
/// panic.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `data`, positioned at the start.
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Succeeds only if every byte was consumed.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::TrailingBytes)
        }
    }

    /// The next `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.data.len() {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.bytes(1)?[0])
    }

    /// A `bool` (rejecting anything but 0 or 1 as corruption).
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Corrupt(format!("bool byte {b}"))),
        }
    }

    /// A `u16`, little-endian.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    /// A `u32`, little-endian.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// A `u64`, little-endian.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// An `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length prefix, sanity-capped against the remaining bytes so a
    /// corrupted length cannot provoke a huge allocation (`floor` is
    /// the minimum encoded size of one element; pass 1 for unknown).
    pub fn len(&mut self, floor: usize) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| SnapshotError::Truncated)?;
        if n.saturating_mul(floor.max(1)) > self.remaining() {
            return Err(SnapshotError::Truncated);
        }
        Ok(n)
    }

    /// A length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.len(1)?;
        let raw = self.bytes(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| SnapshotError::Corrupt("invalid UTF-8".into()))
    }

    /// An `Option` mirroring [`ByteWriter::opt`].
    pub fn opt<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, SnapshotError>,
    ) -> Result<Option<T>, SnapshotError> {
        if self.bool()? {
            Ok(Some(f(self)?))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.bool(true);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.str("koala");
        w.opt(Some(&42u32), |w, v| w.u32(*v));
        w.opt(None::<&u32>, |w, v| w.u32(*v));
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.str().unwrap(), "koala");
        assert_eq!(r.opt(|r| r.u32()).unwrap(), Some(42));
        assert_eq!(r.opt(|r| r.u32()).unwrap(), None);
        r.finish().unwrap();
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let mut w = ByteWriter::new();
        w.u64(123);
        w.str("hello");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            let out = r.u64().and_then(|_| r.str());
            assert!(out.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn hostile_length_prefix_cannot_allocate() {
        let mut w = ByteWriter::new();
        w.u64(u64::MAX); // absurd length prefix
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.len(1), Err(SnapshotError::Truncated));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        r.u8().unwrap();
        assert_eq!(r.finish(), Err(SnapshotError::TrailingBytes));
    }

    #[test]
    fn header_round_trips_and_validates() {
        let snap = Snapshot {
            version: VERSION,
            seed: 99,
            full_fingerprint: 0xAA,
            fork_fingerprint: 0xBB,
            body: vec![1, 2, 3, 4],
        };
        let bytes = snap.to_bytes();
        assert_eq!(Snapshot::from_bytes(&bytes).unwrap(), snap);
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(Snapshot::from_bytes(&bad), Err(SnapshotError::BadMagic));
        // Future version.
        let mut bad = bytes.clone();
        bad[4] = 0xFF;
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
        // Truncation anywhere in the blob.
        for cut in 0..bytes.len() {
            assert_eq!(
                Snapshot::from_bytes(&bytes[..cut]),
                Err(SnapshotError::Truncated),
                "cut at {cut}"
            );
        }
        // Trailing junk.
        let mut bad = bytes.clone();
        bad.push(0);
        assert_eq!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::TrailingBytes)
        );
    }

    #[test]
    fn fingerprints_separate_full_from_fork_invariant() {
        use crate::config::ExperimentConfig;
        let a = ExperimentConfig::paper_pra("fpsma", appsim::workload::WorkloadSpec::wm());
        let mut b = a.clone();
        b.name = "other".into();
        b.sched.malleability = "egs".into();
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
        assert_eq!(fork_fingerprint(&a), fork_fingerprint(&b));
        let mut c = a.clone();
        c.workload.jobs += 1;
        assert_ne!(fork_fingerprint(&a), fork_fingerprint(&c));
    }
}
