//! Autoscaling policies and their name-indexed registry — the third twin
//! of the policy and workload registries.
//!
//! The elasticity layer lets cluster capacity move while a run is in
//! flight: nodes crash and get repaired, operators withdraw nodes, and —
//! with an autoscaler configured — the scheduler itself grows and shrinks
//! cluster pools in response to observed load. An [`Autoscaler`] is the
//! decision half of that loop: on every autoscale cycle the simulation
//! hands it one [`ClusterObservation`] per cluster (built from the
//! monitoring samples, *not* from live state) and applies the returned
//! [`ScaleDecision`] after the configured propagation delay.
//!
//! Scalers are object-safe, stateless and selected by `snake_case` name
//! through [`AutoscalerRegistry`], exactly like placement and
//! malleability policies:
//!
//! ```
//! use koala::autoscaler::{AutoscalerRegistry, ClusterObservation, ScaleDecision};
//! use multicluster::ClusterId;
//!
//! let r = AutoscalerRegistry::global();
//! let scaler = r.autoscaler("threshold").unwrap();
//! // Hot (56/60 busy) with 4 repairable down nodes: grow.
//! let hot = ClusterObservation {
//!     cluster: ClusterId(0),
//!     capacity: 60,
//!     spec_nodes: 64,
//!     used: 56,
//!     queue_depth: 3,
//! };
//! assert!(matches!(scaler.decide(&hot), ScaleDecision::Grow(_)));
//! assert!(r.autoscaler("no_such_scaler").is_err());
//! ```
//!
//! Growing is modelled as *repairing* down nodes (the pool can never
//! exceed the cluster's static `spec.nodes`), shrinking as withdrawing
//! free nodes — so an autoscaler only moves capacity between the `Down`
//! and `Free` node states and never kills running jobs; only the failure
//! stream does that.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

use multicluster::ClusterId;

/// What one cluster looked like to the monitoring subsystem at the start
/// of an autoscale cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterObservation {
    /// Which cluster this observes.
    pub cluster: ClusterId,
    /// Live pool size (static nodes minus down nodes).
    pub capacity: u32,
    /// The cluster's static node count — the ceiling any grow can reach.
    pub spec_nodes: u32,
    /// Processors held by allocations (KOALA and local together).
    pub used: u32,
    /// Jobs waiting in the KOALA placement queue (global, same value for
    /// every cluster in a cycle).
    pub queue_depth: usize,
}

impl ClusterObservation {
    /// Used fraction of the live pool; 0 for an empty pool.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.used as f64 / self.capacity as f64
        }
    }

    /// Nodes currently down, i.e. the headroom a grow can repair.
    pub fn down(&self) -> u32 {
        self.spec_nodes - self.capacity
    }

    /// Free nodes, i.e. what a shrink can withdraw without touching jobs.
    pub fn idle(&self) -> u32 {
        self.capacity - self.used
    }
}

/// One cluster's verdict for one autoscale cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Leave the pool alone.
    Hold,
    /// Bring up to this many down nodes back into the pool.
    Grow(u32),
    /// Withdraw up to this many free nodes from the pool.
    Shrink(u32),
}

/// An autoscaling policy: maps per-cluster observations to scale
/// decisions. Implementations must be stateless across calls (same
/// observation, same decision) — that is what keeps multi-seed sweeps
/// deterministic and parallel runs bit-identical to sequential ones.
pub trait Autoscaler: Send + Sync {
    /// Registry key (`snake_case`), e.g. `"threshold"`.
    fn name(&self) -> &'static str;

    /// Short report label, e.g. `"THR"`.
    fn label(&self) -> &'static str;

    /// Decides what to do with one cluster this cycle.
    fn decide(&self, obs: &ClusterObservation) -> ScaleDecision;
}

/// The do-nothing scaler (`"none"`); capacity still moves through node
/// failures and explicit withdraw events, just never by policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoScaler;

impl Autoscaler for NoScaler {
    fn name(&self) -> &'static str {
        "none"
    }
    fn label(&self) -> &'static str {
        "NONE"
    }
    fn decide(&self, _obs: &ClusterObservation) -> ScaleDecision {
        ScaleDecision::Hold
    }
}

/// Utilization-band scaler (`"threshold"`): grow while utilization is
/// above the high-water mark, shrink while it is below the low-water
/// mark, hold in between. The step is fixed per cycle, so reaction speed
/// is `step / autoscale_period`.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdScaler {
    /// Grow when utilization exceeds this.
    pub high: f64,
    /// Shrink when utilization is below this.
    pub low: f64,
    /// Nodes per decision.
    pub step: u32,
}

impl Default for ThresholdScaler {
    fn default() -> Self {
        ThresholdScaler {
            high: 0.85,
            low: 0.25,
            step: 8,
        }
    }
}

impl Autoscaler for ThresholdScaler {
    fn name(&self) -> &'static str {
        "threshold"
    }
    fn label(&self) -> &'static str {
        "THR"
    }
    fn decide(&self, obs: &ClusterObservation) -> ScaleDecision {
        let u = obs.utilization();
        if u > self.high && obs.down() > 0 {
            ScaleDecision::Grow(self.step.min(obs.down()))
        } else if u < self.low && obs.idle() > 0 {
            ScaleDecision::Shrink(self.step.min(obs.idle()))
        } else {
            ScaleDecision::Hold
        }
    }
}

/// Queue-depth scaler (`"queue_depth"`): grow while KOALA jobs are
/// waiting in the placement queue, shrink only when the queue is empty
/// *and* the cluster is mostly idle. This reacts to demand the
/// utilization bands cannot see — a full queue behind a saturated
/// cluster.
#[derive(Debug, Clone, Copy)]
pub struct QueueDepthScaler {
    /// Grow when at least this many jobs queue.
    pub grow_at: usize,
    /// Shrink only when the queue is empty and utilization is below this.
    pub idle_below: f64,
    /// Nodes per decision.
    pub step: u32,
}

impl Default for QueueDepthScaler {
    fn default() -> Self {
        QueueDepthScaler {
            grow_at: 4,
            idle_below: 0.10,
            step: 8,
        }
    }
}

impl Autoscaler for QueueDepthScaler {
    fn name(&self) -> &'static str {
        "queue_depth"
    }
    fn label(&self) -> &'static str {
        "QD"
    }
    fn decide(&self, obs: &ClusterObservation) -> ScaleDecision {
        if obs.queue_depth >= self.grow_at && obs.down() > 0 {
            ScaleDecision::Grow(self.step.min(obs.down()))
        } else if obs.queue_depth == 0 && obs.utilization() < self.idle_below && obs.idle() > 0 {
            ScaleDecision::Shrink(self.step.min(obs.idle()))
        } else {
            ScaleDecision::Hold
        }
    }
}

/// Failure to resolve an autoscaler name against an
/// [`AutoscalerRegistry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutoscalerError {
    /// No autoscaler registered under this name.
    Unknown {
        /// The name that failed to resolve.
        name: String,
        /// The names that would have resolved.
        known: Vec<String>,
    },
}

impl std::fmt::Display for AutoscalerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AutoscalerError::Unknown { name, known } => {
                write!(
                    f,
                    "unknown autoscaler {name:?} (known: {})",
                    known.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for AutoscalerError {}

type AutoscalerCtor = Arc<dyn Fn() -> Box<dyn Autoscaler> + Send + Sync>;

/// Maps autoscaler names to constructors — the registry twin of
/// [`PolicyRegistry`](crate::policy::PolicyRegistry) and the workload
/// source registry. Registration replaces any previous entry under the
/// same name (latest wins); lookups construct a fresh boxed scaler per
/// call.
pub struct AutoscalerRegistry {
    scalers: RwLock<BTreeMap<String, AutoscalerCtor>>,
}

impl Default for AutoscalerRegistry {
    fn default() -> Self {
        Self::with_defaults()
    }
}

impl AutoscalerRegistry {
    /// An empty registry (no built-ins).
    pub fn new() -> Self {
        AutoscalerRegistry {
            scalers: RwLock::new(BTreeMap::new()),
        }
    }

    /// A registry pre-loaded with the built-ins (`none`, `threshold`,
    /// `queue_depth`).
    pub fn with_defaults() -> Self {
        let r = Self::new();
        r.register(|| Box::new(NoScaler));
        r.register(|| Box::<ThresholdScaler>::default());
        r.register(|| Box::<QueueDepthScaler>::default());
        r
    }

    /// The process-wide registry configurations resolve against.
    pub fn global() -> &'static AutoscalerRegistry {
        static GLOBAL: OnceLock<AutoscalerRegistry> = OnceLock::new();
        GLOBAL.get_or_init(AutoscalerRegistry::with_defaults)
    }

    /// Registers an autoscaler constructor under the name the constructed
    /// scaler reports.
    pub fn register<F>(&self, ctor: F)
    where
        F: Fn() -> Box<dyn Autoscaler> + Send + Sync + 'static,
    {
        let name = ctor().name().to_string();
        self.scalers
            .write()
            .expect("registry lock poisoned")
            .insert(name, Arc::new(ctor));
    }

    /// Constructs the autoscaler registered under `name`. The constructor
    /// runs after the registry lock is released.
    pub fn autoscaler(&self, name: &str) -> Result<Box<dyn Autoscaler>, AutoscalerError> {
        let ctor = {
            let map = self.scalers.read().expect("registry lock poisoned");
            map.get(name).cloned()
        };
        match ctor {
            Some(ctor) => Ok(ctor()),
            None => Err(AutoscalerError::Unknown {
                name: name.to_string(),
                known: self.names(),
            }),
        }
    }

    /// The registered autoscaler names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.scalers
            .read()
            .expect("registry lock poisoned")
            .keys()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(capacity: u32, spec_nodes: u32, used: u32, queue_depth: usize) -> ClusterObservation {
        ClusterObservation {
            cluster: ClusterId(0),
            capacity,
            spec_nodes,
            used,
            queue_depth,
        }
    }

    #[test]
    fn global_registry_knows_the_builtins() {
        let r = AutoscalerRegistry::global();
        assert_eq!(
            r.names(),
            vec!["none".to_string(), "queue_depth".into(), "threshold".into()]
        );
        for name in ["none", "threshold", "queue_depth"] {
            assert_eq!(r.autoscaler(name).unwrap().name(), name);
        }
    }

    #[test]
    fn unknown_name_lists_known_scalers() {
        let err = match AutoscalerRegistry::global().autoscaler("elastic9000") {
            Ok(s) => panic!("unexpectedly resolved {}", s.name()),
            Err(e) => e,
        };
        let AutoscalerError::Unknown { name, known } = err;
        assert_eq!(name, "elastic9000");
        assert!(known.contains(&"threshold".to_string()));
    }

    #[test]
    fn none_always_holds() {
        assert_eq!(NoScaler.decide(&obs(0, 64, 0, 100)), ScaleDecision::Hold);
        assert_eq!(NoScaler.decide(&obs(64, 64, 64, 0)), ScaleDecision::Hold);
    }

    #[test]
    fn threshold_grows_hot_and_shrinks_cold() {
        let s = ThresholdScaler::default();
        // Hot with headroom: grow, capped by down nodes.
        assert_eq!(s.decide(&obs(60, 64, 58, 0)), ScaleDecision::Grow(4));
        // Hot with no down nodes: nothing to repair.
        assert_eq!(s.decide(&obs(64, 64, 62, 0)), ScaleDecision::Hold);
        // Cold: shrink by the step.
        assert_eq!(s.decide(&obs(64, 64, 2, 0)), ScaleDecision::Shrink(8));
        // In band: hold.
        assert_eq!(s.decide(&obs(64, 64, 32, 0)), ScaleDecision::Hold);
        // Empty pool reads as 0 utilization but has nothing free.
        assert_eq!(s.decide(&obs(0, 64, 0, 0)), ScaleDecision::Hold);
    }

    #[test]
    fn queue_depth_reacts_to_waiting_jobs() {
        let s = QueueDepthScaler::default();
        // Saturated cluster, deep queue: grow even at 100% utilization.
        assert_eq!(s.decide(&obs(32, 64, 32, 5)), ScaleDecision::Grow(8));
        // Shallow queue: hold.
        assert_eq!(s.decide(&obs(32, 64, 32, 2)), ScaleDecision::Hold);
        // Empty queue and near-idle: shrink.
        assert_eq!(s.decide(&obs(64, 64, 1, 0)), ScaleDecision::Shrink(8));
        // Empty queue but busy: hold.
        assert_eq!(s.decide(&obs(64, 64, 40, 0)), ScaleDecision::Hold);
    }

    #[test]
    fn decisions_never_exceed_headroom() {
        let s = ThresholdScaler {
            high: 0.5,
            low: 0.1,
            step: 100,
        };
        assert_eq!(s.decide(&obs(10, 12, 9, 0)), ScaleDecision::Grow(2));
        assert_eq!(s.decide(&obs(10, 12, 0, 0)), ScaleDecision::Shrink(10));
    }
}
