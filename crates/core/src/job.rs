//! Runtime state of one KOALA-managed job inside the simulation world.

use appsim::speedup::AmdahlOverhead;
use appsim::{JobSpec, Progress};
use multicluster::{AllocId, ClusterId};
use simcore::{Generation, SimTime};

use crate::ids::JobId;
use crate::runner::MRunner;

/// Lifecycle phase of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Waiting in the placement queue.
    Queued,
    /// Placed with claiming postponed: input files are staging and the
    /// processors are not yet held (deferred claiming).
    Staging,
    /// Placed; initial GRAM submission in flight.
    Starting,
    /// Executing (for malleable jobs this includes the overlapped parts
    /// of grow/shrink protocols; see [`crate::runner::MRunner::busy`]).
    Running,
    /// Suspended for reconfiguration (data redistribution).
    Reconfiguring,
    /// Finished successfully.
    Completed,
    /// Submission failed (placement-retry threshold exceeded).
    Failed,
}

/// One job: specification plus all runtime state the world tracks.
#[derive(Debug, Clone)]
pub struct Job {
    /// Identifier (workload index).
    pub id: JobId,
    /// The immutable specification.
    pub spec: JobSpec,
    /// Submission instant.
    pub submitted: SimTime,
    /// Current phase.
    pub phase: JobPhase,
    /// Execution site (set at placement; malleable jobs never migrate).
    pub cluster: Option<ClusterId>,
    /// Live allocation handle (the first/primary component).
    pub alloc: Option<AllocId>,
    /// Further components of a co-allocated job (cluster + allocation),
    /// beyond the primary one.
    pub extra_allocs: Vec<(ClusterId, AllocId)>,
    /// The MRunner protocol state (malleable jobs only).
    pub runner: Option<MRunner>,
    /// Work-progress accounting (set when execution starts).
    pub progress: Option<Progress>,
    /// Invalidation stamp for this job's scheduled events.
    pub gen: Generation,
    /// Cached speedup model (avoids re-deriving from the spec in hot
    /// paths).
    pub model: AmdahlOverhead,
    /// When execution started.
    pub started: Option<SimTime>,
    /// Whether the job's application-initiated grow has already fired
    /// (it fires at most once).
    pub initiative_fired: bool,
    /// The decided-but-unclaimed placement of a deferred-claiming job.
    pub pending_claim: Option<Vec<(ClusterId, u32)>>,
    /// When the in-flight release batch was sent (the orphaned-allocation
    /// sweep reclaims releases stuck past the grace window after the
    /// release message exhausted its retries).
    pub release_since: Option<SimTime>,
    /// Handle of the currently scheduled `Completion` timer, tracked
    /// only under [`SchedulerConfig::coalesce_timers`] so a superseding
    /// reconfiguration can cancel the stale timer in place instead of
    /// delivering it for the generation check to discard. `None` when
    /// coalescing is off (the generation stamp alone invalidates).
    ///
    /// [`SchedulerConfig::coalesce_timers`]: crate::config::SchedulerConfig
    pub completion_handle: Option<simcore::EventHandle>,
}

impl Job {
    /// Creates a queued job from its spec.
    pub fn new(id: JobId, spec: JobSpec, submitted: SimTime) -> Self {
        let model = spec.kind.model();
        Job {
            id,
            spec,
            submitted,
            phase: JobPhase::Queued,
            cluster: None,
            alloc: None,
            extra_allocs: Vec::new(),
            runner: None,
            progress: None,
            gen: Generation::new(),
            model,
            started: None,
            initiative_fired: false,
            pending_claim: None,
            release_since: None,
            completion_handle: None,
        }
    }

    /// Current allocation size (0 before placement / after completion).
    pub fn current_size(&self) -> u32 {
        match &self.runner {
            Some(r) => r.held(),
            None => {
                if matches!(self.phase, JobPhase::Starting | JobPhase::Running) {
                    self.spec.class.min_size()
                } else {
                    0
                }
            }
        }
    }

    /// True when the malleability manager may send this job grow/shrink
    /// requests right now: it is a malleable job, executing, with no
    /// operation already in flight.
    pub fn eligible_for_malleability(&self) -> bool {
        self.phase == JobPhase::Running && self.runner.as_ref().is_some_and(|r| !r.busy())
    }

    /// True when the job has reached a terminal phase.
    pub fn is_terminal(&self) -> bool {
        matches!(self.phase, JobPhase::Completed | JobPhase::Failed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appsim::dynaco::Dynaco;
    use appsim::{AppKind, SizeConstraint};

    fn job(malleable: bool) -> Job {
        let spec = if malleable {
            JobSpec::paper_malleable(AppKind::Gadget2)
        } else {
            JobSpec::rigid(AppKind::Ft, 2)
        };
        Job::new(JobId(0), spec, SimTime::ZERO)
    }

    #[test]
    fn fresh_job_is_queued_and_ineligible() {
        let j = job(true);
        assert_eq!(j.phase, JobPhase::Queued);
        assert!(!j.eligible_for_malleability());
        assert!(!j.is_terminal());
        assert_eq!(j.current_size(), 0);
    }

    #[test]
    fn running_malleable_with_idle_runner_is_eligible() {
        let mut j = job(true);
        j.phase = JobPhase::Running;
        j.runner = Some(MRunner::new(Dynaco::new(2, 46, SizeConstraint::Any, 2), 2));
        assert!(j.eligible_for_malleability());
        assert_eq!(j.current_size(), 2);
        // A busy runner suspends eligibility.
        j.runner.as_mut().unwrap().offer_grow(4);
        assert!(!j.eligible_for_malleability());
    }

    #[test]
    fn rigid_jobs_are_never_eligible() {
        let mut j = job(false);
        j.phase = JobPhase::Running;
        assert!(!j.eligible_for_malleability());
        assert_eq!(
            j.current_size(),
            2,
            "rigid running job reports its fixed size"
        );
    }

    #[test]
    fn terminal_phases() {
        let mut j = job(true);
        j.phase = JobPhase::Completed;
        assert!(j.is_terminal());
        j.phase = JobPhase::Failed;
        assert!(j.is_terminal());
        assert_eq!(j.current_size(), 0);
    }
}
