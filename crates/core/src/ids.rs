//! Scheduler-level identifiers.

use std::fmt;

/// Identifier of a KOALA-managed job: its index in the submission order.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct JobId(pub u32);

impl JobId {
    /// The job's position as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J{}", self.0)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_and_order() {
        assert_eq!(JobId(5).to_string(), "J5");
        assert!(JobId(1) < JobId(2));
        assert_eq!(JobId(7).index(), 7);
    }
}
