//! Per-run and multi-seed experiment reports.
//!
//! A [`RunReport`] carries everything the paper's figures need for one
//! run; a [`MultiReport`] aggregates the 4-seed repetitions the paper
//! performs per configuration ("we have done 4 runs for each
//! combination").

use koala_metrics::{CumulativeCounter, Ecdf, JobTable, StepSeries};
use simcore::SimTime;

/// Everything measured in one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Configuration label (e.g. `"EGS/Wm"`).
    pub name: String,
    /// The seed that produced this run.
    pub seed: u64,
    /// Per-job records.
    pub jobs: JobTable,
    /// Total used processors over time (KOALA + background) —
    /// Figs. 7e/8e.
    pub utilization: StepSeries,
    /// Processors used by KOALA-managed jobs only.
    pub koala_used: StepSeries,
    /// Accepted grow operations over time — Fig. 7f.
    pub grow_ops: CumulativeCounter,
    /// Accepted shrink operations over time — with grows, Fig. 8f.
    pub shrink_ops: CumulativeCounter,
    /// Grow requests sent (including declined offers).
    pub grow_messages: u64,
    /// Shrink requests sent (including declined requests).
    pub shrink_messages: u64,
    /// Instant the last job left the system.
    pub makespan: SimTime,
    /// KIS polls performed.
    pub kis_polls: u64,
    /// Failed placement tries.
    pub placement_tries: u64,
    /// Submissions dropped by the retry threshold.
    pub failed_submissions: u64,
    /// Events the engine delivered.
    pub events: u64,
    /// Job-lifecycle trace (empty unless `World::with_trace` was used).
    pub trace: simcore::Trace,
    /// Used processors over time, per cluster (indexed by cluster id).
    pub per_cluster_used: Vec<StepSeries>,
}

impl RunReport {
    /// Mean platform utilization (processors) over `[from, to]`.
    pub fn mean_utilization(&self, from: SimTime, to: SimTime) -> f64 {
        self.utilization.time_weighted_mean(from, to, 0.0)
    }

    /// Total malleability operations (grows + shrinks).
    pub fn total_operations(&self) -> usize {
        self.grow_ops.total() + self.shrink_ops.total()
    }

    /// Mean utilization of one cluster over `[from, to]` (processors).
    pub fn mean_cluster_utilization(&self, cluster: usize, from: SimTime, to: SimTime) -> f64 {
        self.per_cluster_used
            .get(cluster)
            .map(|s| s.time_weighted_mean(from, to, 0.0))
            .unwrap_or(0.0)
    }
}

/// The runs of one configuration across seeds.
#[derive(Debug, Clone)]
pub struct MultiReport {
    /// Configuration label.
    pub name: String,
    /// One report per seed.
    pub runs: Vec<RunReport>,
}

impl MultiReport {
    /// Builds an aggregate; panics on an empty run list.
    pub fn new(name: impl Into<String>, runs: Vec<RunReport>) -> Self {
        assert!(!runs.is_empty(), "MultiReport needs at least one run");
        MultiReport {
            name: name.into(),
            runs,
        }
    }

    /// All job records across seeds, merged (the paper's CDFs pool the
    /// 4 runs).
    pub fn merged_jobs(&self) -> JobTable {
        let mut t = JobTable::new();
        for r in &self.runs {
            for rec in r.jobs.records() {
                t.push(rec.clone());
            }
        }
        t
    }

    /// Pooled ECDF of a per-job metric.
    pub fn ecdf_of(&self, f: impl Fn(&koala_metrics::JobRecord) -> Option<f64> + Copy) -> Ecdf {
        self.merged_jobs().ecdf_of(f)
    }

    /// Grow operations of all runs merged onto one timeline.
    pub fn merged_grow_ops(&self) -> CumulativeCounter {
        let mut c = CumulativeCounter::new();
        for r in &self.runs {
            c.merge(&r.grow_ops);
        }
        c
    }

    /// All malleability operations (grow + shrink) merged.
    pub fn merged_all_ops(&self) -> CumulativeCounter {
        let mut c = CumulativeCounter::new();
        for r in &self.runs {
            c.merge(&r.grow_ops);
            c.merge(&r.shrink_ops);
        }
        c
    }

    /// Mean across runs of the mean utilization over `[from, to]`.
    pub fn mean_utilization(&self, from: SimTime, to: SimTime) -> f64 {
        self.runs
            .iter()
            .map(|r| r.mean_utilization(from, to))
            .sum::<f64>()
            / self.runs.len() as f64
    }

    /// Mean completion ratio across runs.
    pub fn completion_ratio(&self) -> f64 {
        self.runs
            .iter()
            .map(|r| r.jobs.completion_ratio())
            .sum::<f64>()
            / self.runs.len() as f64
    }

    /// Longest makespan across runs.
    pub fn max_makespan(&self) -> SimTime {
        self.runs
            .iter()
            .map(|r| r.makespan)
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koala_metrics::{JobOutcome, JobRecord};

    fn tiny_run(seed: u64, exec_s: u64) -> RunReport {
        let mut jobs = JobTable::new();
        let mut rec = JobRecord::new(0, "FT", true, SimTime::ZERO);
        rec.placed = Some(SimTime::ZERO);
        rec.started = Some(SimTime::ZERO);
        rec.completed = Some(SimTime::from_secs(exec_s));
        rec.outcome = JobOutcome::Completed;
        rec.size_history.set(SimTime::ZERO, 2.0);
        jobs.push(rec);
        let mut util = StepSeries::new();
        util.set(SimTime::ZERO, 2.0);
        util.set(SimTime::from_secs(exec_s), 0.0);
        let mut grow_ops = CumulativeCounter::new();
        grow_ops.record(SimTime::from_secs(1));
        RunReport {
            name: "T".into(),
            seed,
            jobs,
            utilization: util,
            koala_used: StepSeries::new(),
            grow_ops,
            shrink_ops: CumulativeCounter::new(),
            grow_messages: 1,
            shrink_messages: 0,
            makespan: SimTime::from_secs(exec_s),
            kis_polls: 10,
            placement_tries: 0,
            failed_submissions: 0,
            events: 42,
            trace: simcore::Trace::disabled(),
            per_cluster_used: Vec::new(),
        }
    }

    #[test]
    fn multi_report_merges_jobs_and_ops() {
        let m = MultiReport::new("T", vec![tiny_run(1, 100), tiny_run(2, 200)]);
        assert_eq!(m.merged_jobs().len(), 2);
        assert_eq!(m.merged_grow_ops().total(), 2);
        assert_eq!(m.merged_all_ops().total(), 2);
        assert_eq!(m.max_makespan(), SimTime::from_secs(200));
        assert!((m.completion_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_utilization_integrates_the_step() {
        let r = tiny_run(1, 100);
        let m = r.mean_utilization(SimTime::ZERO, SimTime::from_secs(200));
        assert!((m - 1.0).abs() < 1e-9, "2 procs for half the window: {m}");
    }

    #[test]
    fn pooled_ecdf_spans_runs() {
        let m = MultiReport::new("T", vec![tiny_run(1, 100), tiny_run(2, 300)]);
        let e = m.ecdf_of(koala_metrics::JobRecord::execution_time);
        assert_eq!(e.len(), 2);
        assert_eq!(e.min(), Some(100.0));
        assert_eq!(e.max(), Some(300.0));
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn empty_multi_report_panics() {
        MultiReport::new("x", vec![]);
    }
}
