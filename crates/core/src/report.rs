//! Per-run and multi-seed experiment reports — full and memory-bounded.
//!
//! A [`RunReport`] carries everything the paper's figures need for one
//! run; a [`MultiReport`] aggregates the 4-seed repetitions the paper
//! performs per configuration ("we have done 4 runs for each
//! combination").
//!
//! A [`SummaryReport`] is the **memory-bounded** alternative: instead of
//! a full job table and step series, it carries streaming accumulators
//! (see [`koala_metrics::stream`]) whose size is independent of job
//! count and run length — what makes matrices of thousands of
//! `(scenario × seed)` cells feasible. A [`MultiSummary`] aggregates
//! replication cells into mean ± 95 % confidence intervals (Student-t)
//! per metric. Summarized runs are requested through
//! [`crate::scenario::ScenarioBuilder::summarized`] or the
//! `run_*_summary` entry points; warmup-window trimming and the quantile
//! reservoir capacity come from
//! [`crate::config::ExperimentConfig::report`].

use koala_metrics::{
    mean_ci95, CumulativeCounter, Ecdf, JobOutcome, JobRecord, JobTable, MeanCi, MetricStream,
    StepSeries,
};
use multicluster::Multicluster;
use simcore::{SimDuration, SimTime};

use crate::config::ReportConfig;

/// Control-plane health counters: what the retry/timeout machinery of
/// the lossy KOALA↔GRAM messaging layer observed during a run. All
/// fields stay zero when [`ControlPlaneFaults`] is disabled (the
/// default) — the fault layer is strictly passive then.
///
/// [`ControlPlaneFaults`]: multicluster::ControlPlaneFaults
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CtrlStats {
    /// Control messages dropped by the fault model (loss draws).
    pub messages_lost: u64,
    /// Deadlines that expired while their operation was still pending.
    pub timeouts: u64,
    /// Re-sends issued after a timeout (bounded by the retry cap).
    pub retries: u64,
    /// Duplicate deliveries injected by the fault model and dropped by
    /// the idempotent effect handlers.
    pub duplicates_dropped: u64,
    /// Information-service polls lost in transit (the scheduler kept
    /// its stale view for that cycle).
    pub polls_lost: u64,
    /// Processors reclaimed by the orphaned-allocation sweep after a
    /// release message exhausted its retries.
    pub reclaimed_allocations: u64,
    /// Placement attempts that skipped a cluster because its control
    /// channel was inside a flaky episode (refuse to place blind).
    pub flaky_deferrals: u64,
    /// KOALA-held processors still allocated when the run finished —
    /// the leak witness; zero whenever every job terminated.
    pub leaked_allocations: u64,
}

impl CtrlStats {
    /// Merges another run's counters into this one (all fields add;
    /// `leaked_allocations` adds too, so a pooled report leaks iff any
    /// run leaked).
    pub fn merge(&mut self, other: &CtrlStats) {
        self.messages_lost += other.messages_lost;
        self.timeouts += other.timeouts;
        self.retries += other.retries;
        self.duplicates_dropped += other.duplicates_dropped;
        self.polls_lost += other.polls_lost;
        self.reclaimed_allocations += other.reclaimed_allocations;
        self.flaky_deferrals += other.flaky_deferrals;
        self.leaked_allocations += other.leaked_allocations;
    }
}

/// Network-layer counters: what the contended-transfer machinery
/// observed during a run. All fields stay zero when
/// [`ExperimentConfig::network`](crate::config::ExperimentConfig::network)
/// is `None` — the network layer is strictly passive then.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetStats {
    /// Staging transfers opened (one per file that had to move).
    pub transfers_opened: u64,
    /// Staging transfers that ran to completion.
    pub transfers_completed: u64,
    /// Redistribution transfers opened by reconfigurations.
    pub reconfig_transfers: u64,
    /// Gigabytes of input data staged (redistribution traffic is
    /// counted in [`Self::reconfig_transfers`], not here).
    pub bytes_staged_gb: f64,
    /// Accumulated link-busy time: seconds during which a link carried
    /// at least one flow, summed over all links.
    pub link_busy_s: f64,
    /// Observation window: run span in seconds times the number of
    /// links (the denominator of [`Self::link_busy_fraction`]).
    pub link_span_s: f64,
}

impl NetStats {
    /// Merges another run's counters into this one (everything adds, so
    /// the pooled busy fraction stays a proper time-weighted mean).
    pub fn merge(&mut self, other: &NetStats) {
        self.transfers_opened += other.transfers_opened;
        self.transfers_completed += other.transfers_completed;
        self.reconfig_transfers += other.reconfig_transfers;
        self.bytes_staged_gb += other.bytes_staged_gb;
        self.link_busy_s += other.link_busy_s;
        self.link_span_s += other.link_span_s;
    }

    /// Fraction of link-seconds that carried at least one flow.
    pub fn link_busy_fraction(&self) -> f64 {
        if self.link_span_s <= 0.0 {
            return 0.0;
        }
        self.link_busy_s / self.link_span_s
    }
}

/// Everything measured in one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Configuration label (e.g. `"EGS/Wm"`).
    pub name: String,
    /// The seed that produced this run.
    pub seed: u64,
    /// Per-job records.
    pub jobs: JobTable,
    /// Total used processors over time (KOALA + background) —
    /// Figs. 7e/8e.
    pub utilization: StepSeries,
    /// Processors used by KOALA-managed jobs only.
    pub koala_used: StepSeries,
    /// Accepted grow operations over time — Fig. 7f.
    pub grow_ops: CumulativeCounter,
    /// Accepted shrink operations over time — with grows, Fig. 8f.
    pub shrink_ops: CumulativeCounter,
    /// Grow requests sent (including declined offers).
    pub grow_messages: u64,
    /// Shrink requests sent (including declined requests).
    pub shrink_messages: u64,
    /// Instant the last job left the system.
    pub makespan: SimTime,
    /// KIS polls performed.
    pub kis_polls: u64,
    /// Failed placement tries.
    pub placement_tries: u64,
    /// Submissions dropped by the retry threshold.
    pub failed_submissions: u64,
    /// Events the engine delivered.
    pub events: u64,
    /// Job-lifecycle trace (empty unless `World::with_trace` was used).
    pub trace: simcore::Trace,
    /// Used processors over time, per cluster (indexed by cluster id).
    pub per_cluster_used: Vec<StepSeries>,
    /// KOALA placement-queue depth over time, sampled by the monitoring
    /// subsystem (empty unless `elasticity.monitor_period` is set).
    pub queue_depth: StepSeries,
    /// Autoscaler grow decisions applied (nodes repaired into the pool).
    pub scale_ups: u64,
    /// Autoscaler shrink decisions applied (free nodes withdrawn).
    pub scale_downs: u64,
    /// KOALA jobs killed by node crashes (`FailurePolicy::Kill`).
    pub jobs_killed: u64,
    /// KOALA jobs re-queued after node crashes (`FailurePolicy::Requeue`).
    pub jobs_requeued: u64,
    /// Control-plane fault counters (all zero when faults are off).
    pub ctrl: CtrlStats,
    /// Network-layer counters (all zero when networking is off).
    pub net: NetStats,
}

impl RunReport {
    /// Mean platform utilization (processors) over `[from, to]`.
    pub fn mean_utilization(&self, from: SimTime, to: SimTime) -> f64 {
        self.utilization.time_weighted_mean(from, to, 0.0)
    }

    /// Total malleability operations (grows + shrinks).
    pub fn total_operations(&self) -> usize {
        self.grow_ops.total() + self.shrink_ops.total()
    }

    /// Mean utilization of one cluster over `[from, to]` (processors).
    pub fn mean_cluster_utilization(&self, cluster: usize, from: SimTime, to: SimTime) -> f64 {
        self.per_cluster_used
            .get(cluster)
            .map(|s| s.time_weighted_mean(from, to, 0.0))
            .unwrap_or(0.0)
    }
}

/// The runs of one configuration across seeds.
#[derive(Debug, Clone)]
pub struct MultiReport {
    /// Configuration label.
    pub name: String,
    /// One report per seed.
    pub runs: Vec<RunReport>,
}

impl MultiReport {
    /// Builds an aggregate; panics on an empty run list.
    pub fn new(name: impl Into<String>, runs: Vec<RunReport>) -> Self {
        assert!(!runs.is_empty(), "MultiReport needs at least one run");
        MultiReport {
            name: name.into(),
            runs,
        }
    }

    /// All job records across seeds, merged (the paper's CDFs pool the
    /// 4 runs).
    pub fn merged_jobs(&self) -> JobTable {
        let mut t = JobTable::new();
        for r in &self.runs {
            for rec in r.jobs.records() {
                t.push(rec.clone());
            }
        }
        t
    }

    /// Pooled ECDF of a per-job metric.
    pub fn ecdf_of(&self, f: impl Fn(&koala_metrics::JobRecord) -> Option<f64> + Copy) -> Ecdf {
        self.merged_jobs().ecdf_of(f)
    }

    /// Grow operations of all runs merged onto one timeline.
    pub fn merged_grow_ops(&self) -> CumulativeCounter {
        let mut c = CumulativeCounter::new();
        for r in &self.runs {
            c.merge(&r.grow_ops);
        }
        c
    }

    /// All malleability operations (grow + shrink) merged.
    pub fn merged_all_ops(&self) -> CumulativeCounter {
        let mut c = CumulativeCounter::new();
        for r in &self.runs {
            c.merge(&r.grow_ops);
            c.merge(&r.shrink_ops);
        }
        c
    }

    /// Mean across runs of the mean utilization over `[from, to]`.
    pub fn mean_utilization(&self, from: SimTime, to: SimTime) -> f64 {
        self.runs
            .iter()
            .map(|r| r.mean_utilization(from, to))
            .sum::<f64>()
            / self.runs.len() as f64
    }

    /// Mean completion ratio across runs.
    pub fn completion_ratio(&self) -> f64 {
        self.runs
            .iter()
            .map(|r| r.jobs.completion_ratio())
            .sum::<f64>()
            / self.runs.len() as f64
    }

    /// Longest makespan across runs.
    pub fn max_makespan(&self) -> SimTime {
        self.runs
            .iter()
            .map(|r| r.makespan)
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

/// How a run reports its results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportMode {
    /// Full [`RunReport`]: complete job table, utilization step series,
    /// operation timelines, optional lifecycle trace.
    #[default]
    Full,
    /// Memory-bounded [`SummaryReport`]: streaming accumulators only —
    /// no per-job vectors, no step series, no trace.
    Summarized,
}

/// The memory-bounded counterpart of [`RunReport`]: everything is a
/// scalar or a fixed-size streaming accumulator, so a report's footprint
/// does not grow with job count or run length.
///
/// Per-job metrics (execution/response/wait time, time-averaged and
/// maximum size, bounded slowdown) stream through
/// [`MetricStream`]s as jobs complete; jobs submitted inside the warmup
/// window are excluded, as are utilization and operation counts before
/// it. Reports [`merge`](SummaryReport::merge) across seeds — count and
/// mean bit-identically in any order, variance/quantiles within
/// floating-point tolerance (see [`koala_metrics::stream`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryReport {
    /// Configuration label (e.g. `"EGS/Wm"`).
    pub name: String,
    /// The seed that produced this run (the first seed after merging).
    pub seed: u64,
    /// Warmup window: everything before this duration is trimmed.
    pub warmup: SimDuration,
    /// Jobs submitted (including inside the warmup window).
    pub jobs_submitted: u64,
    /// Jobs that ran to completion.
    pub jobs_completed: u64,
    /// Jobs dropped by the placement-retry threshold.
    pub jobs_failed: u64,
    /// Execution time (s) of completed post-warmup jobs — Figs. 7c/8c.
    pub execution_time: MetricStream,
    /// Response time (s) — Figs. 7d/8d.
    pub response_time: MetricStream,
    /// Wait time (s).
    pub wait_time: MetricStream,
    /// Time-averaged processors per job — Figs. 7a/8a.
    pub avg_size: MetricStream,
    /// Maximum processors per job — Figs. 7b/8b.
    pub max_size: MetricStream,
    /// Bounded slowdown (10 s floor).
    pub slowdown: MetricStream,
    /// Accepted grow operations (post-warmup).
    pub grow_ops: u64,
    /// Accepted shrink operations (post-warmup).
    pub shrink_ops: u64,
    /// Grow requests sent (including declined offers).
    pub grow_messages: u64,
    /// Shrink requests sent (including declined requests).
    pub shrink_messages: u64,
    /// Instant the last job left the system.
    pub makespan: SimTime,
    /// KIS polls performed.
    pub kis_polls: u64,
    /// Failed placement tries.
    pub placement_tries: u64,
    /// Submissions dropped by the retry threshold.
    pub failed_submissions: u64,
    /// Events the engine delivered.
    pub events: u64,
    /// High-water mark of concurrently live jobs — the streaming
    /// intake's bounded-memory witness. Eager runs materialize the whole
    /// workload, so this equals `jobs_submitted` there; a streamed
    /// million-job run reports the in-flight peak instead (merges take
    /// the maximum across runs).
    pub peak_live_jobs: u64,
    /// Per-cluster utilization fractions sampled by the monitoring
    /// subsystem (one sample per cluster per monitor tick; empty unless
    /// `elasticity.monitor_period` is set).
    pub monitor_utilization: MetricStream,
    /// KOALA placement-queue depth sampled by the monitoring subsystem
    /// (one sample per monitor tick).
    pub monitor_queue_depth: MetricStream,
    /// Autoscaler grow decisions applied (post-warmup).
    pub scale_ups: u64,
    /// Autoscaler shrink decisions applied (post-warmup).
    pub scale_downs: u64,
    /// KOALA jobs killed by node crashes.
    pub jobs_killed: u64,
    /// KOALA jobs re-queued after node crashes.
    pub jobs_requeued: u64,
    /// Control-plane fault counters (all zero when faults are off).
    pub ctrl: CtrlStats,
    /// Network-layer counters (all zero when networking is off).
    pub net: NetStats,
    /// Per-transfer completion times in seconds (post-warmup), streamed
    /// as staging/redistribution transfers finish — the "transfer time
    /// mean ± CI" axis of the network benchmarks.
    pub transfer_time: MetricStream,
    /// Per-job staging delay in seconds (post-warmup): how long a
    /// placed job waited for its input files to arrive before it could
    /// start. Jobs whose files were already local stream a zero, so the
    /// mean reflects the placement policy's file-affinity.
    pub staging_delay: MetricStream,
    /// Post-warmup integral of total used processors (processor-seconds).
    util_integral: f64,
    /// Post-warmup integral of KOALA-used processors (processor-seconds).
    util_koala_integral: f64,
    /// Length of the measured window in seconds (makespan − warmup,
    /// summed across merged runs).
    util_span_s: f64,
}

impl SummaryReport {
    /// Fraction of submitted jobs that completed.
    pub fn completion_ratio(&self) -> f64 {
        if self.jobs_submitted == 0 {
            return 0.0;
        }
        self.jobs_completed as f64 / self.jobs_submitted as f64
    }

    /// Time-weighted mean of total used processors over the measured
    /// window (warmup → makespan).
    pub fn mean_utilization(&self) -> f64 {
        if self.util_span_s <= 0.0 {
            return 0.0;
        }
        self.util_integral / self.util_span_s
    }

    /// Time-weighted mean of KOALA-used processors over the measured
    /// window.
    pub fn mean_koala_utilization(&self) -> f64 {
        if self.util_span_s <= 0.0 {
            return 0.0;
        }
        self.util_koala_integral / self.util_span_s
    }

    /// Total malleability operations (grows + shrinks).
    pub fn total_operations(&self) -> u64 {
        self.grow_ops + self.shrink_ops
    }

    /// Merges another run of the same configuration into this one
    /// (counts add, streams merge, the utilization means pool
    /// time-weighted, the makespan takes the maximum).
    pub fn merge(&mut self, other: &SummaryReport) {
        self.jobs_submitted += other.jobs_submitted;
        self.jobs_completed += other.jobs_completed;
        self.jobs_failed += other.jobs_failed;
        self.execution_time.merge(&other.execution_time);
        self.response_time.merge(&other.response_time);
        self.wait_time.merge(&other.wait_time);
        self.avg_size.merge(&other.avg_size);
        self.max_size.merge(&other.max_size);
        self.slowdown.merge(&other.slowdown);
        self.grow_ops += other.grow_ops;
        self.shrink_ops += other.shrink_ops;
        self.grow_messages += other.grow_messages;
        self.shrink_messages += other.shrink_messages;
        self.monitor_utilization.merge(&other.monitor_utilization);
        self.monitor_queue_depth.merge(&other.monitor_queue_depth);
        self.scale_ups += other.scale_ups;
        self.scale_downs += other.scale_downs;
        self.jobs_killed += other.jobs_killed;
        self.jobs_requeued += other.jobs_requeued;
        self.makespan = self.makespan.max(other.makespan);
        self.kis_polls += other.kis_polls;
        self.placement_tries += other.placement_tries;
        self.failed_submissions += other.failed_submissions;
        self.events += other.events;
        self.peak_live_jobs = self.peak_live_jobs.max(other.peak_live_jobs);
        self.ctrl.merge(&other.ctrl);
        self.net.merge(&other.net);
        self.transfer_time.merge(&other.transfer_time);
        self.staging_delay.merge(&other.staging_delay);
        self.util_integral += other.util_integral;
        self.util_koala_integral += other.util_koala_integral;
        self.util_span_s += other.util_span_s;
    }
}

/// The summarized runs of one configuration across seeds — the
/// replication aggregate of a matrix cell.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSummary {
    /// Configuration label.
    pub name: String,
    /// One summary per seed, in seed order.
    pub runs: Vec<SummaryReport>,
}

impl MultiSummary {
    /// Builds an aggregate; panics on an empty run list.
    pub fn new(name: impl Into<String>, runs: Vec<SummaryReport>) -> Self {
        assert!(!runs.is_empty(), "MultiSummary needs at least one run");
        MultiSummary {
            name: name.into(),
            runs,
        }
    }

    /// All runs merged into one pooled summary (streams merged in seed
    /// order, like the paper pools its 4 runs per CDF).
    pub fn pooled(&self) -> SummaryReport {
        let mut pooled = self.runs[0].clone();
        for r in &self.runs[1..] {
            pooled.merge(r);
        }
        pooled
    }

    /// Mean ± 95 % CI (Student-t across replications) of a per-run
    /// scalar; `None` when no run yields a value.
    pub fn mean_ci(&self, f: impl Fn(&SummaryReport) -> Option<f64>) -> Option<MeanCi> {
        let values: Vec<f64> = self.runs.iter().filter_map(&f).collect();
        mean_ci95(&values)
    }

    /// Mean completion ratio across runs.
    pub fn completion_ratio(&self) -> f64 {
        self.runs
            .iter()
            .map(SummaryReport::completion_ratio)
            .sum::<f64>()
            / self.runs.len() as f64
    }

    /// Longest makespan across runs.
    pub fn max_makespan(&self) -> SimTime {
        self.runs
            .iter()
            .map(|r| r.makespan)
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

// ---------------------------------------------------------------------
// Collectors: how a running World records its measurements
// ---------------------------------------------------------------------

/// Reservoir-seed salts so each metric draws an independent priority
/// stream from the same cell seed.
const STREAM_SALTS: [u64; 10] = [
    0x9e37_79b9_7f4a_7c15,
    0x2545_f491_4f6c_dd1d,
    0x9e6d_6295_b6fc_9a7b,
    0x589d_6a5b_41cf_7f4d,
    0xab1e_c59f_1c3d_27af,
    0x6c62_272e_07bb_0142,
    0x1000_0000_01b3_c0de,
    0xcbf2_9ce4_8422_2325,
    0x5851_f42d_4c95_7f2d,
    0x1405_7b7e_f767_814f,
];

/// Per-live-job metering state of the summarized collector: a handful of
/// scalars, no per-job heap allocations.
#[derive(Debug, Clone, Copy)]
struct JobMeter {
    submitted: SimTime,
    started: Option<SimTime>,
    size: f64,
    last_change: SimTime,
    size_integral: f64,
    size_max: f64,
}

/// The full collector: exactly the measurement state a [`RunReport`]
/// renders (job table, step series, operation timelines).
#[derive(Debug)]
pub(crate) struct FullCollector {
    records: Vec<JobRecord>,
    util_total: StepSeries,
    util_koala: StepSeries,
    util_per_cluster: Vec<StepSeries>,
    grow_ops: CumulativeCounter,
    shrink_ops: CumulativeCounter,
    queue_depth: StepSeries,
    scale_ups: u64,
    scale_downs: u64,
    jobs_killed: u64,
    jobs_requeued: u64,
}

/// The memory-bounded collector: streaming accumulators plus one
/// fixed-size meter per **live** job (streamed runs reuse meter slots
/// as jobs retire, so the meter table tracks in-flight jobs, not the
/// stream length).
#[derive(Debug)]
pub(crate) struct SummaryCollector {
    /// Absolute warmup instant (runs start at time zero).
    warmup: SimTime,
    meters: Vec<JobMeter>,
    jobs_submitted: u64,
    execution_time: MetricStream,
    response_time: MetricStream,
    wait_time: MetricStream,
    avg_size: MetricStream,
    max_size: MetricStream,
    slowdown: MetricStream,
    jobs_completed: u64,
    jobs_failed: u64,
    grow_ops: u64,
    shrink_ops: u64,
    monitor_utilization: MetricStream,
    monitor_queue_depth: MetricStream,
    transfer_time: MetricStream,
    staging_delay: MetricStream,
    scale_ups: u64,
    scale_downs: u64,
    jobs_killed: u64,
    jobs_requeued: u64,
    last_t: SimTime,
    last_total: f64,
    last_koala: f64,
    util_integral: f64,
    util_koala_integral: f64,
}

impl SummaryCollector {
    /// Advances the utilization integrals to `t` (clipping the warmup
    /// window), leaving the last-value registers untouched.
    fn integrate_to(&mut self, t: SimTime) {
        let from = self.last_t.max(self.warmup);
        if t > from {
            let dt = (t - from).as_secs_f64();
            self.util_integral += self.last_total * dt;
            self.util_koala_integral += self.last_koala * dt;
        }
    }

    /// Captures the complete collector state — meters, counters, the
    /// utilization registers, and every streaming accumulator's raw
    /// internals (exact-sum partials, Welford registers, reservoir
    /// priorities *and* the priority-stream position) — so a restored
    /// collector streams bit-identical samples from here on.
    pub(crate) fn capture_state(&self) -> SummaryCollectorState {
        let cap = |s: &MetricStream| (s.stats.state(), s.quantiles.state());
        SummaryCollectorState {
            warmup: self.warmup,
            meters: self
                .meters
                .iter()
                .map(|m| JobMeterState {
                    submitted: m.submitted,
                    started: m.started,
                    size: m.size,
                    last_change: m.last_change,
                    size_integral: m.size_integral,
                    size_max: m.size_max,
                })
                .collect(),
            jobs_submitted: self.jobs_submitted,
            jobs_completed: self.jobs_completed,
            jobs_failed: self.jobs_failed,
            grow_ops: self.grow_ops,
            shrink_ops: self.shrink_ops,
            scale_ups: self.scale_ups,
            scale_downs: self.scale_downs,
            jobs_killed: self.jobs_killed,
            jobs_requeued: self.jobs_requeued,
            streams: vec![
                cap(&self.execution_time),
                cap(&self.response_time),
                cap(&self.wait_time),
                cap(&self.avg_size),
                cap(&self.max_size),
                cap(&self.slowdown),
                cap(&self.monitor_utilization),
                cap(&self.monitor_queue_depth),
                cap(&self.transfer_time),
                cap(&self.staging_delay),
            ],
            last_t: self.last_t,
            last_total: self.last_total,
            last_koala: self.last_koala,
            util_integral: self.util_integral,
            util_koala_integral: self.util_koala_integral,
        }
    }

    /// Reconstructs a collector from a captured
    /// [`SummaryCollector::capture_state`].
    ///
    /// # Panics
    /// Panics when the state does not carry exactly the ten metric
    /// streams [`SummaryCollector::capture_state`] produces (the byte
    /// codec validates counts before calling this).
    pub(crate) fn from_state(s: SummaryCollectorState) -> Self {
        assert_eq!(s.streams.len(), 10, "summary collector has ten streams");
        let mut streams = s.streams.into_iter().map(|(st, q)| MetricStream {
            stats: koala_metrics::StreamStats::from_state(st),
            quantiles: koala_metrics::StreamQuantiles::from_state(q),
        });
        let mut next = || streams.next().expect("length checked above");
        SummaryCollector {
            warmup: s.warmup,
            meters: s
                .meters
                .into_iter()
                .map(|m| JobMeter {
                    submitted: m.submitted,
                    started: m.started,
                    size: m.size,
                    last_change: m.last_change,
                    size_integral: m.size_integral,
                    size_max: m.size_max,
                })
                .collect(),
            jobs_submitted: s.jobs_submitted,
            execution_time: next(),
            response_time: next(),
            wait_time: next(),
            avg_size: next(),
            max_size: next(),
            slowdown: next(),
            jobs_completed: s.jobs_completed,
            jobs_failed: s.jobs_failed,
            grow_ops: s.grow_ops,
            shrink_ops: s.shrink_ops,
            monitor_utilization: next(),
            monitor_queue_depth: next(),
            transfer_time: next(),
            staging_delay: next(),
            scale_ups: s.scale_ups,
            scale_downs: s.scale_downs,
            jobs_killed: s.jobs_killed,
            jobs_requeued: s.jobs_requeued,
            last_t: s.last_t,
            last_total: s.last_total,
            last_koala: s.last_koala,
            util_integral: s.util_integral,
            util_koala_integral: s.util_koala_integral,
        }
    }
}

/// Captured per-live-job metering state (see [`JobMeter`]).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct JobMeterState {
    pub(crate) submitted: SimTime,
    pub(crate) started: Option<SimTime>,
    pub(crate) size: f64,
    pub(crate) last_change: SimTime,
    pub(crate) size_integral: f64,
    pub(crate) size_max: f64,
}

/// The raw internals of a [`SummaryCollector`], exposed for
/// checkpointing. The ten stream states are ordered exactly as
/// [`SummaryCollector::capture_state`] lists them (execution, response,
/// wait, avg size, max size, slowdown, monitor utilization, monitor
/// queue depth, transfer time, staging delay).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SummaryCollectorState {
    pub(crate) warmup: SimTime,
    pub(crate) meters: Vec<JobMeterState>,
    pub(crate) jobs_submitted: u64,
    pub(crate) jobs_completed: u64,
    pub(crate) jobs_failed: u64,
    pub(crate) grow_ops: u64,
    pub(crate) shrink_ops: u64,
    pub(crate) scale_ups: u64,
    pub(crate) scale_downs: u64,
    pub(crate) jobs_killed: u64,
    pub(crate) jobs_requeued: u64,
    pub(crate) streams: Vec<(
        koala_metrics::StreamStatsState,
        koala_metrics::StreamQuantilesState,
    )>,
    pub(crate) last_t: SimTime,
    pub(crate) last_total: f64,
    pub(crate) last_koala: f64,
    pub(crate) util_integral: f64,
    pub(crate) util_koala_integral: f64,
}

/// The measurement sink a [`crate::World`] feeds while it runs. The
/// variant is chosen at construction ([`ReportMode`]); the simulation
/// trajectory is identical either way — collectors are strictly passive.
// One collector exists per world (never in collections), so the size
// difference between the variants costs nothing; boxing would add a
// pointer chase to every measurement call on the hot path instead.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub(crate) enum Collector {
    Full(FullCollector),
    Summary(SummaryCollector),
}

impl Collector {
    /// A full collector with one [`JobRecord`] per workload entry.
    pub(crate) fn full(
        submissions: impl Iterator<Item = (String, bool, SimTime)>,
        n_clusters: usize,
    ) -> Collector {
        let records = submissions
            .enumerate()
            .map(|(i, (app, malleable, at))| JobRecord::new(i as u64, app, malleable, at))
            .collect();
        Collector::Full(FullCollector {
            records,
            util_total: StepSeries::with_initial(0.0),
            util_koala: StepSeries::with_initial(0.0),
            util_per_cluster: vec![StepSeries::with_initial(0.0); n_clusters],
            grow_ops: CumulativeCounter::new(),
            shrink_ops: CumulativeCounter::new(),
            queue_depth: StepSeries::with_initial(0.0),
            scale_ups: 0,
            scale_downs: 0,
            jobs_killed: 0,
            jobs_requeued: 0,
        })
    }

    /// An empty summarized collector; jobs are registered through
    /// [`Collector::arrived`] (upfront for eager runs, at arrival for
    /// streamed ones). Reservoirs are keyed off the cell `seed`.
    pub(crate) fn summarized(seed: u64, report: &ReportConfig) -> Collector {
        let stream = |i: usize| MetricStream::new(seed ^ STREAM_SALTS[i], report.quantile_capacity);
        Collector::Summary(SummaryCollector {
            warmup: SimTime::ZERO + report.warmup,
            meters: Vec::new(),
            jobs_submitted: 0,
            execution_time: stream(0),
            response_time: stream(1),
            wait_time: stream(2),
            avg_size: stream(3),
            max_size: stream(4),
            slowdown: stream(5),
            jobs_completed: 0,
            jobs_failed: 0,
            grow_ops: 0,
            shrink_ops: 0,
            monitor_utilization: stream(6),
            monitor_queue_depth: stream(7),
            transfer_time: stream(8),
            staging_delay: stream(9),
            scale_ups: 0,
            scale_downs: 0,
            jobs_killed: 0,
            jobs_requeued: 0,
            last_t: SimTime::ZERO,
            last_total: 0.0,
            last_koala: 0.0,
            util_integral: 0.0,
            util_koala_integral: 0.0,
        })
    }

    /// True for the memory-bounded variant.
    pub(crate) fn is_summarized(&self) -> bool {
        matches!(self, Collector::Summary(_))
    }

    /// A job was submitted: registers its meter at `slot`. Streamed
    /// worlds reuse slots as jobs retire (the previous occupant's
    /// metrics were streamed at completion); the full collector builds
    /// its records upfront, so this is a no-op there.
    pub(crate) fn arrived(&mut self, slot: usize, at: SimTime) {
        let Collector::Summary(c) = self else {
            return;
        };
        c.jobs_submitted += 1;
        let meter = JobMeter {
            submitted: at,
            started: None,
            size: 0.0,
            last_change: at,
            size_integral: 0.0,
            size_max: 0.0,
        };
        if slot < c.meters.len() {
            c.meters[slot] = meter;
        } else {
            debug_assert_eq!(slot, c.meters.len(), "meter slots grow densely");
            c.meters.push(meter);
        }
    }

    /// The job was successfully placed (allocation decided).
    pub(crate) fn placed(&mut self, index: usize, t: SimTime) {
        if let Collector::Full(c) = self {
            c.records[index].placed = Some(t);
        }
        // Summarized metrics derive from submission/start/completion;
        // the placement instant itself is not streamed.
    }

    /// The job started executing at `size` processors.
    pub(crate) fn started(&mut self, index: usize, t: SimTime, size: u32) {
        match self {
            Collector::Full(c) => {
                c.records[index].started = Some(t);
                c.records[index].size_history.set(t, size as f64);
            }
            Collector::Summary(c) => {
                let m = &mut c.meters[index];
                m.started = Some(t);
                m.size = size as f64;
                m.last_change = t;
                m.size_integral = 0.0;
                m.size_max = size as f64;
            }
        }
    }

    /// The job resumed at a new size after a grow (`grow = true`) or
    /// shrink reconfiguration.
    pub(crate) fn resized(&mut self, index: usize, t: SimTime, size: u32, grow: bool) {
        match self {
            Collector::Full(c) => {
                let rec = &mut c.records[index];
                rec.size_history.set(t, size as f64);
                if grow {
                    rec.grows += 1;
                } else {
                    rec.shrinks += 1;
                }
            }
            Collector::Summary(c) => {
                let m = &mut c.meters[index];
                m.size_integral += m.size * (t - m.last_change).as_secs_f64();
                m.size = size as f64;
                m.last_change = t;
                m.size_max = m.size_max.max(size as f64);
            }
        }
    }

    /// The job completed; in summarized mode its metrics stream into the
    /// accumulators (post-warmup submissions only) and the meter is
    /// final.
    pub(crate) fn completed(&mut self, index: usize, t: SimTime) {
        match self {
            Collector::Full(c) => {
                c.records[index].completed = Some(t);
                c.records[index].outcome = JobOutcome::Completed;
            }
            Collector::Summary(c) => {
                c.jobs_completed += 1;
                let m = &mut c.meters[index];
                m.size_integral += m.size * (t - m.last_change).as_secs_f64();
                m.last_change = t;
                if m.submitted < c.warmup {
                    return;
                }
                let started = m.started.expect("completed job has started");
                // The exact formulas of `JobRecord`: same subtractions,
                // same float operations, so a summary of a run streams
                // bit-identical samples to the full report's ECDFs.
                let exec = (t - started).as_secs_f64();
                let resp = (t - m.submitted).as_secs_f64();
                let wait = (started - m.submitted).as_secs_f64();
                let avg = m.size_integral / exec; // NaN (skipped) when exec is 0
                c.execution_time.push(exec);
                c.response_time.push(resp);
                c.wait_time.push(wait);
                c.avg_size.push(avg);
                c.max_size.push(m.size_max);
                c.slowdown.push((resp / exec.max(10.0)).max(1.0));
            }
        }
    }

    /// The job was dropped by the placement-retry threshold.
    pub(crate) fn placement_failed(&mut self, index: usize) {
        match self {
            Collector::Full(c) => c.records[index].outcome = JobOutcome::PlacementFailed,
            Collector::Summary(c) => c.jobs_failed += 1,
        }
    }

    /// An accepted grow operation.
    pub(crate) fn grow_op(&mut self, t: SimTime) {
        match self {
            Collector::Full(c) => c.grow_ops.record(t),
            Collector::Summary(c) => {
                if t >= c.warmup {
                    c.grow_ops += 1;
                }
            }
        }
    }

    /// An accepted shrink operation.
    pub(crate) fn shrink_op(&mut self, t: SimTime) {
        match self {
            Collector::Full(c) => c.shrink_ops.record(t),
            Collector::Summary(c) => {
                if t >= c.warmup {
                    c.shrink_ops += 1;
                }
            }
        }
    }

    /// One monitoring tick: per-cluster utilization fractions plus the
    /// current KOALA placement-queue depth. Full mode records the queue
    /// depth as a step series (per-cluster utilization already has its
    /// own series); summarized mode streams both into the monitor
    /// accumulators (post-warmup only, like the operation counts).
    pub(crate) fn monitor_sample(
        &mut self,
        t: SimTime,
        cluster_utilization: impl Iterator<Item = f64>,
        queue_depth: usize,
    ) {
        match self {
            Collector::Full(c) => {
                // Exhaust the iterator either way so both modes drive
                // the caller identically.
                cluster_utilization.for_each(drop);
                c.queue_depth.set(t, queue_depth as f64);
            }
            Collector::Summary(c) => {
                if t < c.warmup {
                    cluster_utilization.for_each(drop);
                    return;
                }
                for u in cluster_utilization {
                    c.monitor_utilization.push(u);
                }
                c.monitor_queue_depth.push(queue_depth as f64);
            }
        }
    }

    /// A staging or redistribution transfer completed after `secs`
    /// seconds on the wire. Full mode keeps only the [`NetStats`]
    /// tallies (tracked by the world); summarized mode streams the
    /// duration (post-warmup, gated on the completion instant like the
    /// operation counts).
    pub(crate) fn transfer_done(&mut self, t: SimTime, secs: f64) {
        if let Collector::Summary(c) = self {
            if t >= c.warmup {
                c.transfer_time.push(secs);
            }
        }
    }

    /// A job finished staging `secs` seconds after its processors'
    /// placement was committed (zero when every input was already
    /// local). Summarized mode streams it post-warmup; the full report
    /// exposes staging through the job wait times instead.
    pub(crate) fn staging_delayed(&mut self, t: SimTime, secs: f64) {
        if let Collector::Summary(c) = self {
            if t >= c.warmup {
                c.staging_delay.push(secs);
            }
        }
    }

    /// An applied autoscale decision (`grow` repaired nodes into the
    /// pool, otherwise free nodes were withdrawn).
    pub(crate) fn scale_op(&mut self, t: SimTime, grow: bool) {
        let (ups, downs, warmup) = match self {
            Collector::Full(c) => (&mut c.scale_ups, &mut c.scale_downs, SimTime::ZERO),
            Collector::Summary(c) => (&mut c.scale_ups, &mut c.scale_downs, c.warmup),
        };
        if t >= warmup {
            if grow {
                *ups += 1;
            } else {
                *downs += 1;
            }
        }
    }

    /// A KOALA job was killed by a node crash.
    pub(crate) fn job_killed(&mut self, index: usize) {
        match self {
            Collector::Full(c) => {
                c.records[index].outcome = JobOutcome::Killed;
                c.jobs_killed += 1;
            }
            Collector::Summary(c) => c.jobs_killed += 1,
        }
    }

    /// A KOALA job lost its nodes to a crash and went back in the queue.
    pub(crate) fn job_requeued(&mut self) {
        match self {
            Collector::Full(c) => c.jobs_requeued += 1,
            Collector::Summary(c) => c.jobs_requeued += 1,
        }
    }

    /// Samples platform utilization after an allocation change.
    pub(crate) fn utilization(&mut self, t: SimTime, mc: &Multicluster) {
        match self {
            Collector::Full(c) => {
                c.util_total.set(t, mc.total_used() as f64);
                c.util_koala.set(t, mc.total_used_by_koala() as f64);
                for (i, series) in c.util_per_cluster.iter_mut().enumerate() {
                    series.set(
                        t,
                        mc.cluster(multicluster::ClusterId(i as u16)).used() as f64,
                    );
                }
            }
            Collector::Summary(c) => {
                c.integrate_to(t);
                c.last_t = t;
                c.last_total = mc.total_used() as f64;
                c.last_koala = mc.total_used_by_koala() as f64;
            }
        }
    }

    /// Unwraps the full variant (the `World::finish` path).
    pub(crate) fn into_full(self) -> FullCollector {
        match self {
            Collector::Full(c) => c,
            Collector::Summary(_) => {
                panic!("world runs summarized: use run_to_summary / finish_summary")
            }
        }
    }

    /// Unwraps the summarized variant (the `finish_summary` path).
    pub(crate) fn into_summary(self) -> SummaryCollector {
        match self {
            Collector::Summary(c) => c,
            Collector::Full(_) => {
                panic!("world runs with a full report: use run_to_completion / finish")
            }
        }
    }
}

impl FullCollector {
    /// Renders the full report (the caller supplies the scalar tallies
    /// the world tracked itself).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish(
        self,
        name: String,
        seed: u64,
        makespan: SimTime,
        grow_messages: u64,
        shrink_messages: u64,
        kis_polls: u64,
        placement_tries: u64,
        failed_submissions: u64,
        events: u64,
        ctrl: CtrlStats,
        net: NetStats,
        trace: simcore::Trace,
    ) -> RunReport {
        let mut jobs = JobTable::new();
        for rec in self.records {
            jobs.push(rec);
        }
        RunReport {
            name,
            seed,
            jobs,
            utilization: self.util_total,
            koala_used: self.util_koala,
            grow_ops: self.grow_ops,
            shrink_ops: self.shrink_ops,
            grow_messages,
            shrink_messages,
            makespan,
            kis_polls,
            placement_tries,
            failed_submissions,
            events,
            trace,
            per_cluster_used: self.util_per_cluster,
            queue_depth: self.queue_depth,
            scale_ups: self.scale_ups,
            scale_downs: self.scale_downs,
            jobs_killed: self.jobs_killed,
            jobs_requeued: self.jobs_requeued,
            ctrl,
            net,
        }
    }
}

impl SummaryCollector {
    /// Renders the memory-bounded report, closing the utilization
    /// integral at the makespan.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish(
        mut self,
        name: String,
        seed: u64,
        makespan: SimTime,
        grow_messages: u64,
        shrink_messages: u64,
        kis_polls: u64,
        placement_tries: u64,
        failed_submissions: u64,
        events: u64,
        peak_live_jobs: u64,
        ctrl: CtrlStats,
        net: NetStats,
    ) -> SummaryReport {
        self.integrate_to(makespan);
        let warmup = self.warmup.saturating_since(SimTime::ZERO);
        SummaryReport {
            name,
            seed,
            warmup,
            jobs_submitted: self.jobs_submitted,
            jobs_completed: self.jobs_completed,
            jobs_failed: self.jobs_failed,
            execution_time: self.execution_time,
            response_time: self.response_time,
            wait_time: self.wait_time,
            avg_size: self.avg_size,
            max_size: self.max_size,
            slowdown: self.slowdown,
            grow_ops: self.grow_ops,
            shrink_ops: self.shrink_ops,
            grow_messages,
            shrink_messages,
            makespan,
            kis_polls,
            placement_tries,
            failed_submissions,
            events,
            peak_live_jobs,
            monitor_utilization: self.monitor_utilization,
            monitor_queue_depth: self.monitor_queue_depth,
            scale_ups: self.scale_ups,
            scale_downs: self.scale_downs,
            jobs_killed: self.jobs_killed,
            jobs_requeued: self.jobs_requeued,
            ctrl,
            net,
            transfer_time: self.transfer_time,
            staging_delay: self.staging_delay,
            util_integral: self.util_integral,
            util_koala_integral: self.util_koala_integral,
            util_span_s: makespan.saturating_since(self.warmup).as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koala_metrics::{JobOutcome, JobRecord};

    /// The per-metric reservoir salts must stay pairwise distinct (and
    /// nonzero): two equal salts would give two metrics the *same*
    /// priority stream, silently correlating their reservoir samples.
    /// The full salt allocation table is documented in
    /// `docs/ARCHITECTURE.md`.
    #[test]
    fn stream_salts_are_pairwise_distinct() {
        for (i, a) in STREAM_SALTS.iter().enumerate() {
            assert_ne!(*a, 0, "salt {i} is zero: it would not perturb the seed");
            for (j, b) in STREAM_SALTS.iter().enumerate().skip(i + 1) {
                assert_ne!(a, b, "salts {i} and {j} collide");
            }
        }
    }

    fn tiny_run(seed: u64, exec_s: u64) -> RunReport {
        let mut jobs = JobTable::new();
        let mut rec = JobRecord::new(0, "FT", true, SimTime::ZERO);
        rec.placed = Some(SimTime::ZERO);
        rec.started = Some(SimTime::ZERO);
        rec.completed = Some(SimTime::from_secs(exec_s));
        rec.outcome = JobOutcome::Completed;
        rec.size_history.set(SimTime::ZERO, 2.0);
        jobs.push(rec);
        let mut util = StepSeries::new();
        util.set(SimTime::ZERO, 2.0);
        util.set(SimTime::from_secs(exec_s), 0.0);
        let mut grow_ops = CumulativeCounter::new();
        grow_ops.record(SimTime::from_secs(1));
        RunReport {
            name: "T".into(),
            seed,
            jobs,
            utilization: util,
            koala_used: StepSeries::new(),
            grow_ops,
            shrink_ops: CumulativeCounter::new(),
            grow_messages: 1,
            shrink_messages: 0,
            makespan: SimTime::from_secs(exec_s),
            kis_polls: 10,
            placement_tries: 0,
            failed_submissions: 0,
            events: 42,
            trace: simcore::Trace::disabled(),
            per_cluster_used: Vec::new(),
            queue_depth: StepSeries::new(),
            scale_ups: 0,
            scale_downs: 0,
            jobs_killed: 0,
            jobs_requeued: 0,
            ctrl: CtrlStats::default(),
            net: NetStats::default(),
        }
    }

    #[test]
    fn multi_report_merges_jobs_and_ops() {
        let m = MultiReport::new("T", vec![tiny_run(1, 100), tiny_run(2, 200)]);
        assert_eq!(m.merged_jobs().len(), 2);
        assert_eq!(m.merged_grow_ops().total(), 2);
        assert_eq!(m.merged_all_ops().total(), 2);
        assert_eq!(m.max_makespan(), SimTime::from_secs(200));
        assert!((m.completion_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_utilization_integrates_the_step() {
        let r = tiny_run(1, 100);
        let m = r.mean_utilization(SimTime::ZERO, SimTime::from_secs(200));
        assert!((m - 1.0).abs() < 1e-9, "2 procs for half the window: {m}");
    }

    #[test]
    fn pooled_ecdf_spans_runs() {
        let m = MultiReport::new("T", vec![tiny_run(1, 100), tiny_run(2, 300)]);
        let e = m.ecdf_of(koala_metrics::JobRecord::execution_time);
        assert_eq!(e.len(), 2);
        assert_eq!(e.min(), Some(100.0));
        assert_eq!(e.max(), Some(300.0));
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn empty_multi_report_panics() {
        MultiReport::new("x", vec![]);
    }

    /// A hand-driven summary collector: two jobs, one inside the warmup
    /// window, a grow, and utilization samples.
    fn tiny_summary(seed: u64) -> SummaryReport {
        let warmup = SimDuration::from_secs(50);
        let report = ReportConfig {
            warmup,
            quantile_capacity: 8,
        };
        let mut c = Collector::summarized(seed, &report);
        c.arrived(0, SimTime::ZERO);
        c.arrived(1, SimTime::from_secs(100));
        let mc = multicluster::das3();
        // Job 0 (pre-warmup, excluded): runs 0→40 s.
        c.started(0, SimTime::ZERO, 2);
        c.completed(0, SimTime::from_secs(40));
        // Job 1 (measured): starts at 120 s at size 2, grows to 6 at
        // 160 s, completes at 200 s → avg size 4, max 6, exec 80.
        c.started(1, SimTime::from_secs(120), 2);
        c.grow_op(SimTime::from_secs(150));
        c.resized(1, SimTime::from_secs(160), 6, true);
        c.completed(1, SimTime::from_secs(200));
        c.utilization(SimTime::from_secs(100), &mc);
        c.into_summary().finish(
            "T".into(),
            seed,
            SimTime::from_secs(200),
            3,
            0,
            10,
            0,
            0,
            42,
            2,
            CtrlStats::default(),
            NetStats::default(),
        )
    }

    #[test]
    fn summary_collector_streams_post_warmup_jobs_only() {
        let s = tiny_summary(1);
        assert_eq!(s.jobs_submitted, 2);
        assert_eq!(s.jobs_completed, 2);
        assert_eq!(s.execution_time.count(), 1, "pre-warmup job trimmed");
        assert_eq!(s.execution_time.mean(), Some(80.0));
        assert_eq!(s.response_time.mean(), Some(100.0));
        assert_eq!(s.wait_time.mean(), Some(20.0));
        assert_eq!(s.avg_size.mean(), Some(4.0));
        assert_eq!(s.max_size.mean(), Some(6.0));
        // Slowdown: resp 100 / max(exec 80, 10) = 1.25.
        assert_eq!(s.slowdown.mean(), Some(1.25));
        assert_eq!(s.grow_ops, 1);
        assert_eq!(s.warmup, SimDuration::from_secs(50));
        assert_eq!(s.makespan, SimTime::from_secs(200));
        // An idle DAS-3 contributes zero utilization.
        assert_eq!(s.mean_utilization(), 0.0);
        assert!((s.completion_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multi_summary_pools_and_reports_cis() {
        let m = MultiSummary::new("T", vec![tiny_summary(1), tiny_summary(2)]);
        let pooled = m.pooled();
        assert_eq!(pooled.jobs_submitted, 4);
        assert_eq!(pooled.execution_time.count(), 2);
        assert_eq!(pooled.execution_time.mean(), Some(80.0));
        assert_eq!(pooled.grow_ops, 2);
        assert_eq!(pooled.makespan, SimTime::from_secs(200));
        let ci = m.mean_ci(|r| r.execution_time.mean()).unwrap();
        assert_eq!(ci.n, 2);
        assert_eq!(ci.mean, 80.0);
        assert_eq!(ci.half_width, Some(0.0), "identical runs: zero width");
        assert_eq!(m.max_makespan(), SimTime::from_secs(200));
        assert!((m.completion_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(m.mean_ci(|_| None), None);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn empty_multi_summary_panics() {
        MultiSummary::new("x", vec![]);
    }

    #[test]
    #[should_panic(expected = "use run_to_summary")]
    fn full_unwrap_of_summary_collector_panics() {
        let report = ReportConfig::default();
        Collector::summarized(0, &report).into_full();
    }

    #[test]
    fn summary_collector_capture_restore_is_transparent() {
        // Drive two collectors identically, checkpointing one mid-run:
        // the rendered reports must be byte-identical (debug equality),
        // including reservoir contents and priority-stream positions.
        let report = ReportConfig {
            warmup: SimDuration::from_secs(10),
            quantile_capacity: 4,
        };
        let mc = multicluster::das3();
        let drive_prefix = |c: &mut Collector| {
            c.arrived(0, SimTime::ZERO);
            c.arrived(1, SimTime::from_secs(20));
            c.started(0, SimTime::from_secs(15), 2);
            c.utilization(SimTime::from_secs(15), &mc);
            c.grow_op(SimTime::from_secs(18));
            c.resized(0, SimTime::from_secs(25), 6, true);
            c.completed(0, SimTime::from_secs(40));
        };
        let drive_suffix = |c: &mut Collector| {
            c.started(1, SimTime::from_secs(45), 4);
            c.monitor_sample(SimTime::from_secs(50), [0.5, 0.25].into_iter(), 3);
            c.transfer_done(SimTime::from_secs(55), 12.5);
            c.staging_delayed(SimTime::from_secs(55), 1.5);
            c.utilization(SimTime::from_secs(60), &mc);
            c.completed(1, SimTime::from_secs(80));
        };
        let finish = |c: Collector| {
            c.into_summary().finish(
                "T".into(),
                7,
                SimTime::from_secs(80),
                1,
                0,
                5,
                0,
                0,
                99,
                2,
                CtrlStats::default(),
                NetStats::default(),
            )
        };
        let mut straight = Collector::summarized(7, &report);
        drive_prefix(&mut straight);
        drive_suffix(&mut straight);
        let mut original = Collector::summarized(7, &report);
        drive_prefix(&mut original);
        let state = match &original {
            Collector::Summary(c) => c.capture_state(),
            Collector::Full(_) => unreachable!(),
        };
        let mut restored = Collector::Summary(SummaryCollector::from_state(state.clone()));
        assert_eq!(
            state,
            match &restored {
                Collector::Summary(c) => c.capture_state(),
                Collector::Full(_) => unreachable!(),
            },
            "capture → restore → capture is a fixed point"
        );
        drive_suffix(&mut restored);
        let a = finish(straight);
        let b = finish(restored);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn meter_slots_are_reused_after_retirement() {
        // The streamed-intake contract: re-registering a slot replaces
        // its meter without disturbing already-streamed metrics.
        let report = ReportConfig::default();
        let mut c = Collector::summarized(1, &report);
        c.arrived(0, SimTime::ZERO);
        c.started(0, SimTime::ZERO, 2);
        c.completed(0, SimTime::from_secs(50));
        // Slot 0 reused by a later job.
        c.arrived(0, SimTime::from_secs(100));
        c.started(0, SimTime::from_secs(110), 4);
        c.completed(0, SimTime::from_secs(140));
        let s = c.into_summary().finish(
            "T".into(),
            1,
            SimTime::from_secs(140),
            0,
            0,
            0,
            0,
            0,
            0,
            1,
            CtrlStats::default(),
            NetStats::default(),
        );
        assert_eq!(s.jobs_submitted, 2);
        assert_eq!(s.jobs_completed, 2);
        assert_eq!(s.execution_time.count(), 2);
        assert_eq!(s.execution_time.mean(), Some(40.0), "(50 + 30) / 2");
        assert_eq!(s.wait_time.mean(), Some(5.0), "(0 + 10) / 2");
        assert_eq!(s.peak_live_jobs, 1);
    }

    #[test]
    #[should_panic(expected = "use run_to_completion")]
    fn summary_unwrap_of_full_collector_panics() {
        Collector::full(std::iter::empty(), 5).into_summary();
    }
}
